//! E1 integration test: the QoS selection algorithm reproduces the
//! paper's Table 1 row-for-row on the reconstructed Figure-6 scenario.

use qosc_core::{SelectOptions, SelectionTrace, TieBreak};
use qosc_workload::paper;

#[test]
fn table1_rows_match_exactly() {
    let scenario = paper::figure6_scenario(true);
    let composition = scenario.compose(&SelectOptions::default()).unwrap();
    if let Some(mismatch) = paper::verify_table1(&composition.selection.trace) {
        panic!(
            "Table 1 mismatch: {mismatch}\n\n{}",
            composition.selection.trace.to_table1_string()
        );
    }
}

#[test]
fn final_chain_matches_paper() {
    let scenario = paper::figure6_scenario(true);
    let composition = scenario.compose(&SelectOptions::default()).unwrap();
    let chain = composition.selection.chain.expect("receiver reached");
    assert_eq!(chain.names(), vec!["sender", "T7", "receiver"]);
    assert_eq!(SelectionTrace::truncate2(chain.satisfaction), 0.66);
    assert_eq!(
        chain
            .steps
            .last()
            .unwrap()
            .params
            .get(qosc_media::Axis::FrameRate),
        Some(20.0)
    );
    assert_eq!(
        composition.selection.rounds, 15,
        "fifteen rounds, like the paper"
    );
}

#[test]
fn considered_set_grows_in_selection_order() {
    let scenario = paper::figure6_scenario(true);
    let composition = scenario.compose(&SelectOptions::default()).unwrap();
    let rows = &composition.selection.trace.rows;
    // VT starts as {sender} and gains exactly the previously selected
    // service each round.
    assert_eq!(rows[0].considered, vec!["sender"]);
    for i in 1..rows.len() {
        let mut expected = rows[i - 1].considered.clone();
        expected.push(rows[i - 1].selected.clone());
        assert_eq!(rows[i].considered, expected, "round {}", i + 1);
    }
}

#[test]
fn t16_to_t18_never_enter_the_candidate_set() {
    let scenario = paper::figure6_scenario(true);
    let composition = scenario.compose(&SelectOptions::default()).unwrap();
    for row in &composition.selection.trace.rows {
        for name in ["T16", "T17", "T18"] {
            assert!(
                !row.candidates.contains(&name.to_string()),
                "{name} must stay unreachable (round {})",
                row.round
            );
        }
    }
}

#[test]
fn satisfaction_is_non_increasing_over_rounds() {
    // The label-setting invariant behind the Figure-5 argument.
    let scenario = paper::figure6_scenario(true);
    let composition = scenario.compose(&SelectOptions::default()).unwrap();
    let sats: Vec<f64> = composition
        .selection
        .trace
        .rows
        .iter()
        .map(|r| r.satisfaction)
        .collect();
    for pair in sats.windows(2) {
        assert!(
            pair[1] <= pair[0] + 1e-12,
            "satisfaction increased: {pair:?}"
        );
    }
}

#[test]
fn alternative_tie_breaks_still_find_the_same_final_chain() {
    // Tie-breaking changes the exploration order, not the result.
    for tie_break in [
        TieBreak::PaperOrder,
        TieBreak::Fifo,
        TieBreak::ByVertexIndex,
    ] {
        let scenario = paper::figure6_scenario(true);
        let options = SelectOptions {
            tie_break,
            ..SelectOptions::default()
        };
        let composition = scenario.compose(&options).unwrap();
        let chain = composition.selection.chain.expect("receiver reached");
        assert_eq!(
            chain.names(),
            vec!["sender", "T7", "receiver"],
            "{tie_break:?}"
        );
        assert_eq!(SelectionTrace::truncate2(chain.satisfaction), 0.66);
    }
}
