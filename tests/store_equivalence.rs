//! Property: the lazy-deletion `BinaryHeap` candidate store is an exact
//! drop-in for the reference `LinearScan` — same selection sequence,
//! same trace, same chain — for every tie-break policy, over generated
//! scenarios.

use proptest::prelude::*;
use qosc_core::select::CandidateStore;
use qosc_core::{SelectOptions, TieBreak};
use qosc_workload::generator::{random_scenario, GeneratorConfig};

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        2usize..=3, // layers
        2usize..=5, // services per layer
        2usize..=3, // formats per layer
        1usize..=3, // conversions per service
        10_000f64..=80_000f64,
        proptest::bool::ANY,
    )
        .prop_map(|(layers, spl, fpl, cps, bw, multi_axis)| GeneratorConfig {
            layers,
            services_per_layer: spl,
            formats_per_layer: fpl,
            conversions_per_service: cps,
            bandwidth_range: (bw * 0.5, bw),
            multi_axis,
            ..GeneratorConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// For all generated scenarios and all tie-break policies, both
    /// candidate stores settle the same states in the same order with
    /// the same labels.
    #[test]
    fn heap_and_scan_select_identically((config, seed) in (arb_config(), 0u64..1_000)) {
        let tie_breaks = [TieBreak::PaperOrder, TieBreak::Fifo, TieBreak::ByVertexIndex];
        for tie_break in tie_breaks {
            let scan = random_scenario(&config, seed)
                .compose(&SelectOptions {
                    tie_break,
                    candidate_store: CandidateStore::LinearScan,
                    ..SelectOptions::default()
                })
                .unwrap();
            let heap = random_scenario(&config, seed)
                .compose(&SelectOptions {
                    tie_break,
                    candidate_store: CandidateStore::BinaryHeap,
                    ..SelectOptions::default()
                })
                .unwrap();

            let s = &scan.selection;
            let h = &heap.selection;
            prop_assert_eq!(s.rounds, h.rounds, "rounds under {:?}", tie_break);
            prop_assert_eq!(s.failure.clone(), h.failure.clone(), "failure under {:?}", tie_break);
            // The selection *sequence* — which state settles in which
            // round — is the heart of the equivalence.
            let scan_sequence: Vec<&String> = s.trace.rows.iter().map(|r| &r.selected).collect();
            let heap_sequence: Vec<&String> = h.trace.rows.iter().map(|r| &r.selected).collect();
            prop_assert_eq!(scan_sequence, heap_sequence, "selection sequence under {:?}", tie_break);
            // And the full traces agree row-for-row (paths, params,
            // satisfaction, costs — exact float equality).
            prop_assert_eq!(&s.trace, &h.trace, "trace under {:?}", tie_break);
            match (&s.chain, &h.chain) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.names(), b.names(), "chain under {:?}", tie_break);
                    prop_assert_eq!(
                        a.satisfaction.to_bits(),
                        b.satisfaction.to_bits(),
                        "chain satisfaction under {:?}",
                        tie_break
                    );
                }
                (None, None) => {}
                _ => prop_assert!(false, "stores disagree on solvability under {:?}", tie_break),
            }
        }
    }
}
