//! Property-based invariants of the bandwidth broker's deterministic
//! water-filling (proptest), plus the end-to-end worker-count
//! determinism of a brokered session world.
//!
//! The algebraic properties run on randomized chain networks — flows
//! pinned to contiguous link spans with random capacities, weights and
//! demand windows:
//!
//! * **feasibility** — with zero floors, per-link grant sums never
//!   exceed capacity,
//! * **weighted max-min fairness** — every flow not pinned at its cap
//!   crosses a saturated bottleneck on which no other flow holds a
//!   larger weight-normalized grant (the classic max-min witness, with
//!   +1 slack per weight unit for integer rounding),
//! * **registration-order determinism** — the weighted max-min grants
//!   depend only on the flow *set*, never the order sessions arrived,
//! * **departure monotonicity** — deregistering a session never shrinks
//!   any survivor's grant (the preemption-free floors).

use proptest::prelude::*;
use qosc_broker::{BandwidthBroker, FlowSpec, SharingPolicy};
use qosc_netsim::{LinkId, Node, Topology};

/// A chain topology with `caps.len()` links — the only way to mint
/// `LinkId`s is through a real topology, which also keeps the tests
/// honest about the id space the broker sees in production.
fn chain_links(caps: &[u64]) -> Vec<LinkId> {
    let mut topo = Topology::new();
    let mut prev = topo.add_node(Node::unconstrained("n0"));
    let mut links = Vec::new();
    for (i, _) in caps.iter().enumerate() {
        let next = topo.add_node(Node::unconstrained(format!("n{}", i + 1)));
        links.push(topo.connect_simple(prev, next, 1e9).unwrap());
        prev = next;
    }
    links
}

/// One generated flow: a contiguous span of chain links plus its demand
/// window. Spans are expressed as fractions of the chain so they stay
/// valid for any generated chain length.
#[derive(Debug, Clone)]
struct GenFlow {
    start_pct: u8,
    len_pct: u8,
    min_bps: u64,
    extra_bps: u64,
    weight: u32,
}

fn arb_flows() -> impl Strategy<Value = (Vec<u64>, Vec<GenFlow>)> {
    let caps = proptest::collection::vec(1_000u64..=1_000_000, 1..=6);
    let flows = proptest::collection::vec(
        (0u8..100, 1u8..100, 0u64..200_000, 1u64..2_000_000, 1u32..=5).prop_map(
            |(start_pct, len_pct, min_bps, extra_bps, weight)| GenFlow {
                start_pct,
                len_pct,
                min_bps,
                extra_bps,
                weight,
            },
        ),
        1..=8,
    );
    (caps, flows)
}

fn specs(links: &[LinkId], flows: &[GenFlow], zero_floors: bool) -> Vec<FlowSpec> {
    flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let start = (f.start_pct as usize * links.len()) / 100;
            let len = 1 + (f.len_pct as usize * (links.len() - start)) / 100;
            let min_bps = if zero_floors { 0 } else { f.min_bps };
            FlowSpec {
                session: i as u64,
                min_bps,
                max_bps: min_bps + f.extra_bps,
                weight: f.weight,
                hops: links[start..(start + len).min(links.len())]
                    .iter()
                    .map(|&l| (l, true))
                    .collect(),
            }
        })
        .collect()
}

fn broker_with(caps: &[u64], links: &[LinkId], specs: &[FlowSpec]) -> BandwidthBroker {
    let mut broker = BandwidthBroker::new(SharingPolicy::WeightedMaxMin);
    for (&link, &cap) in links.iter().zip(caps) {
        broker.set_capacity(link, true, cap);
    }
    for spec in specs {
        broker.register(spec.clone());
    }
    broker
}

/// Per-link grant sums, keyed by link position in the chain.
fn link_usage(caps: &[u64], links: &[LinkId], broker: &BandwidthBroker) -> Vec<u64> {
    let mut used = vec![0u64; caps.len()];
    for (&session, &grant) in broker.grants() {
        let spec = broker.flow(session).unwrap();
        for (i, &link) in links.iter().enumerate() {
            if spec.hops.contains(&(link, true)) {
                used[i] += grant;
            }
        }
    }
    used
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// (a) With zero floors, no directed link is ever oversubscribed.
    #[test]
    fn grants_are_per_link_feasible((caps, flows) in arb_flows()) {
        let links = chain_links(&caps);
        let specs = specs(&links, &flows, true);
        let broker = broker_with(&caps, &links, &specs);
        for (i, used) in link_usage(&caps, &links, &broker).iter().enumerate() {
            prop_assert!(
                *used <= caps[i],
                "link {i}: granted {used} over capacity {}", caps[i]
            );
        }
    }

    /// (b) Weighted max-min witness: every flow not pinned at its cap
    /// crosses a saturated link on which every flow's weight-normalized
    /// grant is at most its own (+1 per weight unit of integer slack).
    #[test]
    fn uncapped_flows_sit_on_a_fair_bottleneck((caps, flows) in arb_flows()) {
        let links = chain_links(&caps);
        let specs = specs(&links, &flows, true);
        let broker = broker_with(&caps, &links, &specs);
        let used = link_usage(&caps, &links, &broker);
        for spec in &specs {
            let grant = broker.grant(spec.session).unwrap();
            if grant >= spec.max_bps {
                continue; // cap-pinned: fairness says nothing about it
            }
            let witness = links.iter().enumerate().any(|(i, &link)| {
                if !spec.hops.contains(&(link, true)) {
                    return false;
                }
                let crossing: Vec<&FlowSpec> = specs
                    .iter()
                    .filter(|s| s.hops.contains(&(link, true)))
                    .collect();
                let weight_sum: u64 = crossing.iter().map(|s| s.weight as u64).sum();
                // Saturated: not even one more unit per weight fits.
                if caps[i] - used[i] >= weight_sum {
                    return false;
                }
                // No one on this link beats our normalized share.
                crossing.iter().all(|other| {
                    let og = broker.grant(other.session).unwrap();
                    og * spec.weight as u64
                        <= (grant + spec.weight as u64) * other.weight as u64
                })
            });
            prop_assert!(
                witness,
                "session {} granted {grant} < cap {} without a bottleneck witness",
                spec.session, spec.max_bps
            );
        }
    }

    /// (c) The weighted max-min allocation depends only on the flow set:
    /// any registration order yields identical grants.
    #[test]
    fn grants_ignore_registration_order(
        ((caps, flows), seed) in (arb_flows(), 0u64..1_000)
    ) {
        let links = chain_links(&caps);
        let specs = specs(&links, &flows, false);
        let ordered = broker_with(&caps, &links, &specs);
        // A cheap deterministic shuffle: rotate + stride permutation.
        let mut shuffled = specs.clone();
        let n = shuffled.len();
        shuffled.rotate_left((seed as usize) % n);
        if n > 1 && seed % 3 == 0 {
            shuffled.reverse();
        }
        let reordered = broker_with(&caps, &links, &shuffled);
        prop_assert_eq!(ordered.grants(), reordered.grants());
    }

    /// (d) Departures are preemption-free: a session leaving never
    /// shrinks any survivor's grant.
    #[test]
    fn departure_never_shrinks_survivors(
        ((caps, flows), victim) in (arb_flows(), 0usize..8)
    ) {
        let links = chain_links(&caps);
        let specs = specs(&links, &flows, false);
        let mut broker = broker_with(&caps, &links, &specs);
        let before = broker.grants().clone();
        let victim = (victim % specs.len()) as u64;
        prop_assert!(broker.deregister(victim));
        for (&session, &grant) in broker.grants() {
            prop_assert!(
                grant >= before[&session],
                "session {session} shrank from {} to {grant} on a departure",
                before[&session]
            );
        }
    }
}

mod worker_determinism {
    use qosc_core::{
        run_sessions, AbrConfig, AbrMode, ArrivalMeta, CompositionRequest, PriorityClass,
        ResilientEngineConfig, SessionEngineConfig, SessionRequest,
    };
    use qosc_media::FormatRegistry;
    use qosc_netsim::{Network, Node, Topology};
    use qosc_pipeline::{ChaosWorld, SharingPolicy};
    use qosc_profiles::{
        ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, ProfileSet, UserProfile,
    };
    use qosc_services::{catalog, DiscoveryConfig, TranscoderDescriptor};

    /// A brokered world's session outcomes are bit-identical at every
    /// worker count — grant recomputation and reaction happen in the
    /// serialized phase of each instant, never on worker threads.
    #[test]
    fn brokered_runs_are_worker_invariant() {
        let formats = FormatRegistry::with_builtins();
        let render = |workers: usize| {
            let mut topo = Topology::new();
            let server = topo.add_node(Node::unconstrained("server"));
            let proxy = topo.add_node(Node::unconstrained("proxy"));
            let client = topo.add_node(Node::unconstrained("client"));
            topo.connect_simple(server, proxy, 100e6).unwrap();
            topo.connect_simple(proxy, client, 2e6).unwrap();
            let mut world =
                ChaosWorld::new(&formats, Network::new(topo), DiscoveryConfig::default());
            for spec in catalog::full_catalog() {
                world.join(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
            }
            world.set_sharing(Some(SharingPolicy::WeightedMaxMin));
            let requests: Vec<SessionRequest> = (0..6)
                .map(|i| SessionRequest {
                    request: CompositionRequest {
                        profiles: ProfileSet {
                            user: UserProfile::demo("user-0"),
                            content: ContentProfile::demo_video("clip"),
                            device: DeviceProfile::demo_pda(),
                            context: ContextProfile::default(),
                            network: NetworkProfile::broadband(),
                        },
                        sender_host: server,
                        receiver_host: client,
                    },
                    arrival: ArrivalMeta {
                        arrival_us: i * 300_000,
                        priority: match i % 3 {
                            0 => PriorityClass::Interactive,
                            1 => PriorityClass::Standard,
                            _ => PriorityClass::Background,
                        },
                        service_cost_us: 1_000,
                        deadline_budget_us: None,
                    },
                    hold_us: 4_000_000,
                    demand_bps: 0,
                })
                .collect();
            let config = SessionEngineConfig {
                resilient: ResilientEngineConfig {
                    workers,
                    ..ResilientEngineConfig::default()
                },
                admission: None,
                tick_us: 250_000,
                abr: Some(AbrConfig::with_mode(AbrMode::Bola)),
                ..SessionEngineConfig::default()
            };
            let report = run_sessions(&mut world, &requests, &config, &qosc_telemetry::NoopSink);
            assert!(
                report.outcomes.iter().any(|o| o.grant_updates > 0),
                "contention on the 2 Mbps edge must reach sessions as grant updates"
            );
            format!("{:?} {:?}", report.outcomes, report.counters)
        };
        let reference = render(1);
        for workers in [2, 4, 8] {
            assert_eq!(render(workers), reference, "workers={workers} diverged");
        }
    }
}
