//! Golden equivalence of the session engine's batch adapters: every
//! pre-session batch entry point, re-expressed as degenerate
//! zero-duration sessions, must produce **bitwise identical** plans,
//! outcomes, counters, admission decisions and telemetry logs. The
//! committed scorecards depend on this — the adapters are how the
//! session engine proves it did not change what the batch paths
//! compute.

use qosc_core::{
    serve_batch, serve_batch_resilient_sessions_traced, serve_batch_resilient_traced,
    serve_batch_sessions, serve_batch_sessions_traced, serve_batch_traced,
    serve_batch_with_admission_sessions_traced, serve_batch_with_admission_traced, AdmissionConfig,
    CompositionRequest, EngineConfig, ResilientEngineConfig, ShardedCompositionCache,
};
use qosc_telemetry::FlightRecorder;
use qosc_workload::arrivals::{poisson_burst_arrivals, ArrivalPattern};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::Scenario;

const TOPOLOGY_SEED: u64 = 5;
const ARRIVAL_SEED: u64 = 42;

fn scenario() -> Scenario {
    random_scenario(
        &GeneratorConfig {
            services_per_layer: 5,
            multi_axis: true,
            ..GeneratorConfig::default()
        },
        TOPOLOGY_SEED,
    )
}

/// `n` distinct requests (distinct users defeat the composition cache
/// only where we want cold compositions; the cached test reuses keys).
fn requests_for(scenario: &Scenario, n: usize, distinct: bool) -> Vec<CompositionRequest> {
    (0..n)
        .map(|i| {
            let mut profiles = scenario.profiles.clone();
            if distinct {
                profiles.user.name = format!("viewer-{i}");
            }
            CompositionRequest {
                profiles,
                sender_host: scenario.sender_host,
                receiver_host: scenario.receiver_host,
            }
        })
        .collect()
}

/// ~2× a 4-core virtual capacity for 300ms: admitted and shed requests.
fn admission_pattern() -> ArrivalPattern {
    ArrivalPattern {
        horizon_us: 300_000,
        rate_per_sec: 330,
        ..ArrivalPattern::default()
    }
}

fn resilient_config(workers: usize) -> ResilientEngineConfig {
    ResilientEngineConfig {
        workers,
        admission: AdmissionConfig {
            virtual_cores: 4,
            initial_limit: 4,
            max_limit: 8,
            ..AdmissionConfig::protected()
        },
        ..ResilientEngineConfig::default()
    }
}

#[test]
fn serve_batch_plans_identical_through_the_session_adapter() {
    let scenario = scenario();
    let composer = scenario.composer();
    let requests = requests_for(&scenario, 16, true);
    for workers in [1usize, 4] {
        let config = EngineConfig {
            workers,
            ..EngineConfig::default()
        };
        let direct_cache = ShardedCompositionCache::new(8);
        let direct = serve_batch(&composer, &direct_cache, &requests, &config);
        let adapter_cache = ShardedCompositionCache::new(8);
        let adapted = serve_batch_sessions(&composer, &adapter_cache, &requests, &config);
        assert_eq!(
            format!("{direct:?}"),
            format!("{adapted:?}"),
            "serve_batch diverged at {workers} workers"
        );
        assert_eq!(
            format!("{:?}", direct_cache.stats()),
            format!("{:?}", adapter_cache.stats()),
            "cache stats diverged at {workers} workers"
        );
    }
}

#[test]
fn serve_batch_telemetry_identical_at_one_worker() {
    // Cache probes race benignly across workers (which shard answers
    // first), so the byte-for-byte log comparison pins workers=1; the
    // multi-worker *plan* equivalence is covered above.
    let scenario = scenario();
    let composer = scenario.composer();
    let requests = requests_for(&scenario, 12, true);
    let config = EngineConfig::default();

    let direct_recorder = FlightRecorder::new(16);
    let direct_cache = ShardedCompositionCache::new(8);
    serve_batch_traced(
        &composer,
        &direct_cache,
        &requests,
        &config,
        &direct_recorder,
    );

    let adapter_recorder = FlightRecorder::new(16);
    let adapter_cache = ShardedCompositionCache::new(8);
    serve_batch_sessions_traced(
        &composer,
        &adapter_cache,
        &requests,
        &config,
        &adapter_recorder,
    );

    assert_eq!(direct_recorder.render_log(), adapter_recorder.render_log());
}

#[test]
fn serve_batch_resilient_identical_through_the_session_adapter() {
    let scenario = scenario();
    let composer = scenario.composer();
    let requests = requests_for(&scenario, 16, true);
    for workers in [1usize, 4] {
        let config = ResilientEngineConfig {
            workers,
            ..ResilientEngineConfig::default()
        };
        let direct_recorder = FlightRecorder::new(16);
        let direct = serve_batch_resilient_traced(&composer, &requests, &config, &direct_recorder);
        let adapter_recorder = FlightRecorder::new(16);
        let adapted =
            serve_batch_resilient_sessions_traced(&composer, &requests, &config, &adapter_recorder);
        assert_eq!(
            format!("{:?}", direct.outcomes),
            format!("{:?}", adapted.outcomes),
            "resilient outcomes diverged at {workers} workers"
        );
        assert_eq!(
            format!("{:?}", direct.counters()),
            format!("{:?}", adapted.counters()),
            "resilient counters diverged at {workers} workers"
        );
        assert_eq!(
            direct_recorder.render_log(),
            adapter_recorder.render_log(),
            "resilient telemetry diverged at {workers} workers"
        );
    }
}

#[test]
fn serve_batch_with_admission_identical_through_the_session_adapter() {
    let scenario = scenario();
    let composer = scenario.composer();
    let arrivals = poisson_burst_arrivals(&admission_pattern(), ARRIVAL_SEED);
    let requests = requests_for(&scenario, arrivals.len(), false);
    for workers in [1usize, 4] {
        let config = resilient_config(workers);
        let direct_recorder = FlightRecorder::new(16);
        let direct = serve_batch_with_admission_traced(
            &composer,
            &requests,
            &arrivals,
            &config,
            &direct_recorder,
        );
        let adapter_recorder = FlightRecorder::new(16);
        let adapted = serve_batch_with_admission_sessions_traced(
            &composer,
            &requests,
            &arrivals,
            &config,
            &adapter_recorder,
        );
        assert_eq!(
            format!("{:?}", direct.batch.outcomes),
            format!("{:?}", adapted.batch.outcomes),
            "admitted outcomes diverged at {workers} workers"
        );
        assert_eq!(
            format!("{:?}", direct.admission.decisions),
            format!("{:?}", adapted.admission.decisions),
            "admission decisions diverged at {workers} workers"
        );
        assert_eq!(
            format!("{:?}", direct.admission.stats),
            format!("{:?}", adapted.admission.stats),
            "admission stats diverged at {workers} workers"
        );
        assert_eq!(
            format!("{:?}", direct.batch.counters()),
            format!("{:?}", adapted.batch.counters()),
            "admitted counters diverged at {workers} workers"
        );
        assert_eq!(
            direct_recorder.render_log(),
            adapter_recorder.render_log(),
            "admission telemetry diverged at {workers} workers"
        );
    }
}
