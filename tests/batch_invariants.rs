//! Batch accounting invariants: every request lands in exactly one
//! [`BatchCounters`] bucket, each outcome is internally consistent
//! (shed ⇒ untouched, served ⇒ no error, degraded ⇒ below Full), and
//! none of it depends on the worker count.

use qosc_core::{
    serve_batch_resilient, serve_batch_with_admission, AdmissionConfig, CompositionRequest,
    DegradationRung, RequestOutcome, ResilientEngineConfig,
};
use qosc_media::{AxisDomain, DomainVector, VariantSpec};
use qosc_profiles::ContentProfile;
use qosc_workload::arrivals::{poisson_burst_arrivals, ArrivalPattern};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::Scenario;

fn scenario() -> Scenario {
    random_scenario(
        &GeneratorConfig {
            services_per_layer: 5,
            multi_axis: true,
            ..GeneratorConfig::default()
        },
        5,
    )
}

fn healthy_requests(scenario: &Scenario, n: usize) -> Vec<CompositionRequest> {
    (0..n)
        .map(|_| CompositionRequest {
            profiles: scenario.profiles.clone(),
            sender_host: scenario.sender_host,
            receiver_host: scenario.receiver_host,
        })
        .collect()
}

/// A content profile violating the non-empty-domain invariant: the
/// optimizer panics on it, so the engine's catch_unwind path records a
/// failed outcome.
fn poison(request: &mut CompositionRequest) {
    request.profiles.content = ContentProfile::new(
        "poison",
        vec![VariantSpec {
            format: "video/mpeg2".to_string(),
            offered: DomainVector::new()
                .with(qosc_media::Axis::FrameRate, AxisDomain::Discrete(vec![])),
        }],
    );
}

fn assert_outcome_consistent(index: usize, outcome: &RequestOutcome) {
    let buckets = [
        outcome.shed,
        outcome.is_served_full(),
        outcome.is_degraded(),
        !outcome.shed && outcome.plan.is_none(),
    ];
    assert_eq!(
        buckets.iter().filter(|&&b| b).count(),
        1,
        "request {index} lands in exactly one bucket: {outcome:?}"
    );
    if outcome.shed {
        assert_eq!(outcome.attempts, 0, "request {index}: shed means untouched");
        assert!(outcome.plan.is_none());
        assert_eq!(outcome.backoff_us, 0);
        assert!(!outcome.deadline_exceeded);
    }
    if outcome.plan.is_some() {
        assert!(
            outcome.error.is_none(),
            "request {index}: a served request carries no error"
        );
        assert!(outcome.attempts >= 1);
        let rung = outcome.rung.expect("served request records its rung");
        if outcome.is_degraded() {
            assert!(rung > DegradationRung::Full);
        }
    } else if !outcome.shed {
        assert!(
            outcome.error.is_some() || outcome.deadline_exceeded,
            "request {index}: an unserved request says why"
        );
    }
    if outcome.deadline_exceeded {
        assert!(outcome.plan.is_none());
    }
}

#[test]
fn counters_partition_the_batch_without_admission() {
    let scenario = scenario();
    let composer = scenario.composer();
    let mut batch = healthy_requests(&scenario, 12);
    poison(&mut batch[3]);
    poison(&mut batch[9]);

    let mut reference: Option<Vec<RequestOutcome>> = None;
    for workers in [1usize, 2, 4, 8] {
        let config = ResilientEngineConfig {
            workers,
            seed: 77,
            ..ResilientEngineConfig::default()
        };
        let result = serve_batch_resilient(&composer, &batch, &config);
        assert_eq!(result.outcomes.len(), batch.len());
        let counters = result.counters();
        assert_eq!(
            counters.total(),
            batch.len(),
            "every request counted exactly once (workers={workers})"
        );
        assert_eq!(counters.shed, 0, "serve_batch_resilient never sheds");
        assert_eq!(counters.failed, 2, "both poisoned requests fail");
        for (index, outcome) in result.outcomes.iter().enumerate() {
            assert_outcome_consistent(index, outcome);
            assert!(
                outcome.brownout_rung.is_none(),
                "no admission, no brown-out"
            );
        }
        match &reference {
            None => reference = Some(result.outcomes),
            Some(want) => {
                for (index, (got, want)) in result.outcomes.iter().zip(want).enumerate() {
                    assert_eq!(got.rung, want.rung, "request {index} (workers={workers})");
                    assert_eq!(got.attempts, want.attempts);
                    assert_eq!(got.satisfaction, want.satisfaction);
                    assert_eq!(got.backoff_us, want.backoff_us);
                    assert_eq!(got.error, want.error);
                }
            }
        }
    }
}

#[test]
fn counters_partition_the_batch_under_admission_overload() {
    let scenario = scenario();
    let composer = scenario.composer();
    let pattern = ArrivalPattern {
        horizon_us: 300_000,
        rate_per_sec: 660,
        ..ArrivalPattern::default()
    };
    let arrivals = poisson_burst_arrivals(&pattern, 42);
    let mut batch = healthy_requests(&scenario, arrivals.len());
    poison(&mut batch[arrivals.len() / 2]);

    let mut reference = None;
    for workers in [1usize, 2, 4, 8] {
        let config = ResilientEngineConfig {
            workers,
            seed: 77,
            admission: AdmissionConfig::protected(),
            ..ResilientEngineConfig::default()
        };
        let result = serve_batch_with_admission(&composer, &batch, &arrivals, &config);
        assert_eq!(result.batch.outcomes.len(), batch.len());
        let counters = result.batch.counters();
        assert_eq!(counters.total(), batch.len(), "workers={workers}");
        assert!(counters.shed > 0, "4× overload sheds");
        assert_eq!(counters.shed, result.admission.stats.shed_total());
        for (index, outcome) in result.batch.outcomes.iter().enumerate() {
            assert_outcome_consistent(index, outcome);
            if !outcome.shed {
                assert!(
                    outcome.brownout_rung.is_some(),
                    "admitted outcomes report their starting rung"
                );
            }
        }
        match &reference {
            None => reference = Some(counters),
            Some(want) => assert_eq!(&counters, want, "workers={workers}"),
        }
    }
}
