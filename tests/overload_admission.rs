//! Admission-control integration: the overload front-end end to end —
//! worker-count invariance, the front-end (not scoring) guarantee at
//! sub-saturation, priority protection under overload, brown-out rung
//! reporting, and shedding invariants.

use qosc_core::{
    serve_batch_resilient, serve_batch_with_admission, AdmissionConfig, CompositionRequest,
    DegradationRung, PriorityClass, ResilientEngineConfig,
};
use qosc_workload::arrivals::{poisson_burst_arrivals, ArrivalPattern};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::Scenario;

const TOPOLOGY_SEED: u64 = 5;

fn scenario() -> Scenario {
    random_scenario(
        &GeneratorConfig {
            services_per_layer: 5,
            multi_axis: true,
            ..GeneratorConfig::default()
        },
        TOPOLOGY_SEED,
    )
}

fn requests_for(scenario: &Scenario, n: usize) -> Vec<CompositionRequest> {
    (0..n)
        .map(|_| CompositionRequest {
            profiles: scenario.profiles.clone(),
            sender_host: scenario.sender_host,
            receiver_host: scenario.receiver_host,
        })
        .collect()
}

/// An overloaded schedule: ~4× a 4-core virtual capacity for 300ms.
fn overload_pattern() -> ArrivalPattern {
    ArrivalPattern {
        horizon_us: 300_000,
        rate_per_sec: 660,
        ..ArrivalPattern::default()
    }
}

/// A calm schedule: ~0.3× capacity, no queueing to speak of.
fn calm_pattern() -> ArrivalPattern {
    ArrivalPattern {
        horizon_us: 300_000,
        rate_per_sec: 50,
        ..ArrivalPattern::default()
    }
}

#[test]
fn outcomes_identical_across_worker_counts() {
    let scenario = scenario();
    let composer = scenario.composer();
    let arrivals = poisson_burst_arrivals(&overload_pattern(), 42);
    let requests = requests_for(&scenario, arrivals.len());

    let reference = serve_batch_with_admission(
        &composer,
        &requests,
        &arrivals,
        &ResilientEngineConfig {
            workers: 1,
            seed: 9,
            ..ResilientEngineConfig::default()
        },
    );
    for workers in [2usize, 4, 8] {
        let got = serve_batch_with_admission(
            &composer,
            &requests,
            &arrivals,
            &ResilientEngineConfig {
                workers,
                seed: 9,
                ..ResilientEngineConfig::default()
            },
        );
        assert_eq!(
            got.admission.decisions, reference.admission.decisions,
            "admission is a virtual-clock plan, independent of workers"
        );
        assert_eq!(got.admission.stats, reference.admission.stats);
        for (index, (a, b)) in got
            .batch
            .outcomes
            .iter()
            .zip(&reference.batch.outcomes)
            .enumerate()
        {
            assert_eq!(a.rung, b.rung, "request {index} (workers={workers})");
            assert_eq!(a.shed, b.shed);
            assert_eq!(a.brownout_rung, b.brownout_rung);
            assert_eq!(a.attempts, b.attempts);
            assert_eq!(a.satisfaction, b.satisfaction);
            assert_eq!(
                a.plan.as_ref().map(|p| &p.steps),
                b.plan.as_ref().map(|p| &p.steps)
            );
        }
        assert_eq!(got.batch.counters(), reference.batch.counters());
    }
}

#[test]
fn sub_saturation_plans_are_bitwise_identical_to_no_admission() {
    let scenario = scenario();
    let composer = scenario.composer();
    let arrivals = poisson_burst_arrivals(&calm_pattern(), 7);
    let requests = requests_for(&scenario, arrivals.len());
    let config = ResilientEngineConfig {
        workers: 4,
        ..ResilientEngineConfig::default()
    };

    let admitted = serve_batch_with_admission(&composer, &requests, &arrivals, &config);
    let unguarded = serve_batch_resilient(&composer, &requests, &config);

    assert_eq!(
        admitted.admission.stats.admitted,
        requests.len(),
        "sub-saturation load sheds nothing"
    );
    assert_eq!(admitted.admission.stats.brownout_steps, 0);
    for (index, (a, b)) in admitted
        .batch
        .outcomes
        .iter()
        .zip(&unguarded.outcomes)
        .enumerate()
    {
        assert_eq!(
            a.brownout_rung,
            Some(DegradationRung::Full),
            "request {index} starts at Full"
        );
        // Admission is a front-end, not a scoring change: the plan is
        // the plan the unprotected engine would have produced, bitwise.
        let plan_a = a.plan.as_ref().expect("admitted request served");
        let plan_b = b.plan.as_ref().expect("unguarded request served");
        assert_eq!(plan_a.steps, plan_b.steps, "request {index}");
        assert!(plan_a.predicted_satisfaction == plan_b.predicted_satisfaction);
        assert_eq!(a.rung, b.rung);
    }
}

#[test]
fn priority_protects_interactive_goodput_under_overload() {
    let scenario = scenario();
    let composer = scenario.composer();
    let arrivals = poisson_burst_arrivals(&overload_pattern(), 41);
    let requests = requests_for(&scenario, arrivals.len());

    let goodput_of = |admission: AdmissionConfig, class: PriorityClass| {
        let config = ResilientEngineConfig {
            workers: 4,
            admission,
            ..ResilientEngineConfig::default()
        };
        let result = serve_batch_with_admission(&composer, &requests, &arrivals, &config);
        let of_class: Vec<usize> = (0..arrivals.len())
            .filter(|&i| arrivals[i].priority == class)
            .collect();
        let good = of_class
            .iter()
            .filter(|&&i| {
                result.admission.decisions[i].deadline_met
                    && result.batch.outcomes[i].plan.is_some()
            })
            .count();
        good as f64 / of_class.len().max(1) as f64
    };

    let unprotected = goodput_of(AdmissionConfig::unprotected(), PriorityClass::Interactive);
    let prioritized = goodput_of(AdmissionConfig::shed_priority(), PriorityClass::Interactive);
    assert!(
        prioritized > 0.85,
        "strict priority holds interactive goodput under 4× overload, got {prioritized}"
    );
    assert!(
        unprotected < 0.5,
        "the unprotected queue collapses interactive goodput, got {unprotected}"
    );
    // …and the protection is not free for the background class.
    let background = goodput_of(AdmissionConfig::shed_priority(), PriorityClass::Background);
    assert!(
        background <= prioritized,
        "background never beats interactive under strict priority"
    );
}

#[test]
fn brownout_serves_admitted_overload_degraded_and_reports_the_rung() {
    let scenario = scenario();
    let composer = scenario.composer();
    let arrivals = poisson_burst_arrivals(&overload_pattern(), 43);
    let requests = requests_for(&scenario, arrivals.len());
    let config = ResilientEngineConfig {
        workers: 4,
        admission: AdmissionConfig::protected(),
        ..ResilientEngineConfig::default()
    };
    let result = serve_batch_with_admission(&composer, &requests, &arrivals, &config);

    assert!(
        result.admission.stats.brownout_steps > 0,
        "4× overload arms brown-out"
    );
    assert!(result.admission.stats.peak_rung > DegradationRung::Full);
    let browned: Vec<&qosc_core::RequestOutcome> = result
        .batch
        .outcomes
        .iter()
        .filter(|o| o.brownout_rung.map(|r| r > DegradationRung::Full) == Some(true))
        .collect();
    assert!(!browned.is_empty(), "some requests start below Full");
    for outcome in &browned {
        if let Some(rung) = outcome.rung {
            assert!(
                rung >= outcome.brownout_rung.unwrap(),
                "a browned-out request never serves above its starting rung"
            );
        }
    }
    // Brown-out turns would-be losses into degraded service: the batch
    // counts them as degraded, not failed.
    let counters = result.batch.counters();
    assert!(counters.degraded > 0);

    // The same schedule without brown-out sheds more than the
    // brown-out run (degraded capacity is capacity).
    let without = serve_batch_with_admission(
        &composer,
        &requests,
        &arrivals,
        &ResilientEngineConfig {
            workers: 4,
            admission: AdmissionConfig::shed_priority(),
            ..ResilientEngineConfig::default()
        },
    );
    assert!(
        result.admission.stats.shed_total() < without.admission.stats.shed_total(),
        "brown-out admits more: {} sheds vs {}",
        result.admission.stats.shed_total(),
        without.admission.stats.shed_total()
    );
}

#[test]
fn shed_outcomes_never_touch_a_worker() {
    let scenario = scenario();
    let composer = scenario.composer();
    let arrivals = poisson_burst_arrivals(&overload_pattern(), 42);
    let requests = requests_for(&scenario, arrivals.len());
    let config = ResilientEngineConfig {
        workers: 4,
        admission: AdmissionConfig::protected(),
        ..ResilientEngineConfig::default()
    };
    let result = serve_batch_with_admission(&composer, &requests, &arrivals, &config);
    let counters = result.batch.counters();
    assert!(counters.shed > 0, "4× overload sheds");
    assert_eq!(counters.shed, result.admission.stats.shed_total());
    for (outcome, decision) in result
        .batch
        .outcomes
        .iter()
        .zip(&result.admission.decisions)
    {
        assert_eq!(outcome.shed, !decision.admitted);
        if outcome.shed {
            assert_eq!(outcome.attempts, 0, "shed before any composition attempt");
            assert!(outcome.plan.is_none());
            assert!(outcome.error.as_deref().unwrap_or("").starts_with("shed:"));
        }
    }
}
