//! E5 integration test: the implementation conforms to Figure 4's
//! pseudo-code, step by step.

use qosc_core::select::SelectFailure;
use qosc_core::{SelectOptions, TieBreak};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::paper;

/// Step 1: VT starts as {sender}; CS starts as neighbor(sender).
#[test]
fn step1_initial_sets() {
    let scenario = paper::figure6_scenario(true);
    let composition = scenario.compose(&SelectOptions::default()).unwrap();
    let first = &composition.selection.trace.rows[0];
    assert_eq!(first.considered, vec!["sender"]);
    // Figure-6 sender neighbors are exactly T1..T10.
    assert_eq!(
        first.candidates,
        (1..=10).map(|k| format!("T{k}")).collect::<Vec<_>>()
    );
}

/// Step 3: empty CS terminates with FAILURE.
#[test]
fn step3_terminate_failure() {
    // A scenario whose receiver decodes a format nobody produces.
    let mut scenario = paper::figure6_scenario(true);
    scenario.profiles.device.decoders = vec!["X16".to_string()];
    let composition = scenario.compose(&SelectOptions::default()).unwrap();
    assert!(composition.selection.chain.is_none());
    assert_eq!(
        composition.selection.failure,
        Some(SelectFailure::CandidatesExhausted)
    );
    // The algorithm still explored the graph before giving up.
    assert!(composition.selection.rounds > 0);
}

/// Step 4: every round selects the highest-satisfaction candidate —
/// no later round may select something that had strictly higher
/// satisfaction available earlier (non-increasing selection sequence).
#[test]
fn step4_greedy_selection_order() {
    for seed in 0..10u64 {
        let scenario = random_scenario(&GeneratorConfig::default(), seed);
        let composition = scenario.compose(&SelectOptions::default()).unwrap();
        let sats: Vec<f64> = composition
            .selection
            .trace
            .rows
            .iter()
            .map(|r| r.satisfaction)
            .collect();
        for pair in sats.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-9,
                "seed {seed}: selection satisfaction increased {pair:?}"
            );
        }
    }
}

/// Step 6: accumulated cost along the final chain is non-decreasing and
/// the receiver's accumulated cost equals the chain total.
#[test]
fn step6_cost_accumulation() {
    let scenario = paper::figure6_scenario(true);
    let composition = scenario.compose(&SelectOptions::default()).unwrap();
    let chain = composition.selection.chain.unwrap();
    let costs: Vec<f64> = chain.steps.iter().map(|s| s.accumulated_cost).collect();
    for pair in costs.windows(2) {
        assert!(pair[1] >= pair[0] - 1e-12);
    }
    assert_eq!(*costs.last().unwrap(), chain.total_cost);
    // Figure-6 costs are hop counts: sender 0, T7 1, receiver 2.
    assert_eq!(costs, vec![0.0, 1.0, 2.0]);
}

/// Step 7: the algorithm stops the moment the receiver is selected —
/// the receiver appears exactly once, as the last selection.
#[test]
fn step7_stops_at_receiver() {
    for seed in 0..10u64 {
        let scenario = random_scenario(&GeneratorConfig::default(), seed);
        let composition = scenario.compose(&SelectOptions::default()).unwrap();
        if composition.selection.chain.is_none() {
            continue;
        }
        let rows = &composition.selection.trace.rows;
        let receiver_rounds: Vec<usize> = rows
            .iter()
            .filter(|r| r.selected == "receiver")
            .map(|r| r.round)
            .collect();
        assert_eq!(receiver_rounds, vec![rows.len()], "seed {seed}");
    }
}

/// Step 8: after selecting Ti, newly discovered candidates are exactly
/// Ti's format-compatible neighbors (checked on the paper scenario where
/// the wiring is known).
#[test]
fn step8_neighbor_discovery() {
    let scenario = paper::figure6_scenario(true);
    let composition = scenario.compose(&SelectOptions::default()).unwrap();
    let rows = &composition.selection.trace.rows;
    let discovered_after = |round: usize| -> Vec<String> {
        let before: &Vec<String> = &rows[round - 1].candidates;
        let after: &Vec<String> = &rows[round].candidates;
        after
            .iter()
            .filter(|n| !before.contains(n))
            .cloned()
            .collect()
    };
    // Round 1 selects T10 → discovers T19, T20 and the receiver.
    assert_eq!(discovered_after(1), vec!["T19", "T20", "receiver"]);
    // Round 6 selects T2 → discovers T12 and T13.
    assert_eq!(discovered_after(6), vec!["T12", "T13"]);
    // Round 3 selects T5 → discovers T15.
    assert_eq!(discovered_after(3), vec!["T15"]);
}

/// Step 10: the reported path follows the `previous` links back from the
/// receiver, and every consecutive pair is connected in the graph.
#[test]
fn step10_path_reconstruction() {
    let scenario = paper::figure6_scenario(true);
    let composition = scenario.compose(&SelectOptions::default()).unwrap();
    let chain = composition.selection.chain.unwrap();
    let graph = &composition.graph;
    for pair in chain.steps.windows(2) {
        let from = pair[0].vertex;
        let to = pair[1].vertex;
        assert!(
            graph
                .out_edges(from)
                .iter()
                .any(|&e| graph.edge(e).unwrap().to == to),
            "no edge between consecutive chain steps"
        );
    }
}

/// The round safety valve reports RoundLimit, not an infinite loop.
#[test]
fn round_limit_is_detected() {
    let scenario = paper::figure6_scenario(true);
    let options = SelectOptions {
        max_rounds: 3,
        ..SelectOptions::default()
    };
    let composition = scenario.compose(&options).unwrap();
    assert_eq!(
        composition.selection.failure,
        Some(SelectFailure::RoundLimit)
    );
    assert_eq!(composition.selection.rounds, 3);
}

/// Tie-break policies are all deterministic.
#[test]
fn tie_breaks_are_deterministic() {
    for tie_break in [
        TieBreak::PaperOrder,
        TieBreak::Fifo,
        TieBreak::ByVertexIndex,
    ] {
        let options = SelectOptions {
            tie_break,
            ..SelectOptions::default()
        };
        let a = paper::figure6_scenario(true).compose(&options).unwrap();
        let b = paper::figure6_scenario(true).compose(&options).unwrap();
        let rows_a: Vec<String> = a
            .selection
            .trace
            .rows
            .iter()
            .map(|r| r.selected.clone())
            .collect();
        let rows_b: Vec<String> = b
            .selection
            .trace
            .rows
            .iter()
            .map(|r| r.selected.clone())
            .collect();
        assert_eq!(rows_a, rows_b, "{tie_break:?}");
    }
}

/// The heap-backed candidate store reproduces the linear scan's
/// selection order exactly, for every tie-break policy.
#[test]
fn heap_store_equals_linear_scan() {
    use qosc_core::select::greedy::CandidateStore;
    let selected_sequence =
        |options: &SelectOptions, scenario: &qosc_workload::Scenario| -> Vec<String> {
            scenario
                .compose(options)
                .unwrap()
                .selection
                .trace
                .rows
                .iter()
                .map(|r| r.selected.clone())
                .collect()
        };
    for tie_break in [
        TieBreak::PaperOrder,
        TieBreak::Fifo,
        TieBreak::ByVertexIndex,
    ] {
        // Paper scenario.
        let scenario = paper::figure6_scenario(true);
        let linear = SelectOptions {
            tie_break,
            candidate_store: CandidateStore::LinearScan,
            ..SelectOptions::default()
        };
        let heap = SelectOptions {
            tie_break,
            candidate_store: CandidateStore::BinaryHeap,
            ..SelectOptions::default()
        };
        assert_eq!(
            selected_sequence(&linear, &scenario),
            selected_sequence(&heap, &scenario),
            "{tie_break:?} on the paper scenario"
        );
        // Random scenarios.
        for seed in 0..12u64 {
            let scenario = random_scenario(&GeneratorConfig::default(), seed);
            assert_eq!(
                selected_sequence(&linear, &scenario),
                selected_sequence(&heap, &scenario),
                "{tie_break:?} seed {seed}"
            );
        }
    }
}

/// In-format reducers (JPEG→JPEG, MPEG-2→MPEG-2) on multiple proxies
/// create genuine cycles in the adaptation graph; the paper handles this
/// with the formats-distinct rule, and the state-based search must
/// terminate and return a format-distinct chain regardless.
#[test]
fn cyclic_graphs_terminate_with_distinct_formats() {
    use qosc_core::graph::acyclic;
    use qosc_media::FormatRegistry;
    use qosc_netsim::{Network, Node, Topology};
    use qosc_profiles::{
        ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, ProfileSet, UserProfile,
    };
    use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};

    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxy_a = topo.add_node(Node::unconstrained("proxy-a"));
    let proxy_b = topo.add_node(Node::unconstrained("proxy-b"));
    let client = topo.add_node(Node::unconstrained("client"));
    topo.connect_simple(server, proxy_a, 100e6).unwrap();
    topo.connect_simple(proxy_a, proxy_b, 100e6).unwrap();
    topo.connect_simple(proxy_b, client, 1e6).unwrap();
    let network = Network::new(topo);
    // Two copies of the full catalog → the two video-reducer instances
    // (mpeg2→mpeg2) form a 2-cycle, plus reducer↔re-coder cycles.
    let mut services = ServiceRegistry::new();
    for &p in &[proxy_a, proxy_b] {
        for spec in catalog::full_catalog() {
            services.register_static(TranscoderDescriptor::resolve(&spec, &formats, p).unwrap());
        }
    }
    let profiles = ProfileSet {
        user: UserProfile::demo("cyclist"),
        content: ContentProfile::demo_video("clip"),
        device: DeviceProfile::demo_pda(),
        context: ContextProfile::default(),
        network: NetworkProfile::broadband(),
    };
    let composer = qosc_core::Composer {
        formats: &formats,
        services: &services,
        network: &network,
    };
    let composition = composer
        .compose(&profiles, server, client, &SelectOptions::default())
        .unwrap();
    assert!(
        acyclic::has_cycle(&composition.graph),
        "the duplicated catalog must create cycles for this test to bite"
    );
    let chain = composition.selection.chain.expect("still solvable");
    // The chain's carried formats are pairwise distinct (Section 4.2).
    let mut carried: Vec<_> = chain.steps[..chain.steps.len() - 1]
        .iter()
        .map(|s| s.output_format)
        .collect();
    let before = carried.len();
    carried.sort();
    carried.dedup();
    assert_eq!(carried.len(), before, "repeated format along the chain");
}
