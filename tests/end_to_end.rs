//! End-to-end integration: profiles → graph → selection → plan →
//! simulated streaming → measured satisfaction, on realistic catalog
//! scenarios.

use qosc_core::{Composer, SelectOptions};
use qosc_media::{Axis, FormatRegistry};
use qosc_netsim::{Network, Node, Topology};
use qosc_pipeline::{run_session, SessionConfig};
use qosc_profiles::{
    ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, ProfileSet, UserProfile,
};
use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};

/// Content server → two proxies → PDA, with the full realistic catalog
/// spread over the proxies.
fn pda_setup() -> (
    FormatRegistry,
    ServiceRegistry,
    Network,
    qosc_netsim::NodeId,
    qosc_netsim::NodeId,
) {
    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxy_a = topo.add_node(Node::new("proxy-a", 4_000.0, 8e9));
    let proxy_b = topo.add_node(Node::new("proxy-b", 4_000.0, 8e9));
    let pda = topo.add_node(Node::unconstrained("pda"));
    topo.connect_simple(server, proxy_a, 100e6).unwrap();
    topo.connect_simple(proxy_a, proxy_b, 50e6).unwrap();
    topo.connect_simple(proxy_b, pda, 400e3).unwrap();
    let network = Network::new(topo);

    let mut services = ServiceRegistry::new();
    for (i, spec) in catalog::full_catalog().into_iter().enumerate() {
        let host = if i % 2 == 0 { proxy_a } else { proxy_b };
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, host).unwrap());
    }
    (formats, services, network, server, pda)
}

fn pda_profiles() -> ProfileSet {
    ProfileSet {
        user: UserProfile::demo("erin"),
        content: ContentProfile::demo_video("evening-news"),
        device: DeviceProfile::demo_pda(),
        context: ContextProfile::default(),
        network: NetworkProfile::cellular(),
    }
}

#[test]
fn compose_stream_measure() {
    let (formats, services, mut network, server, pda) = pda_setup();
    let profiles = pda_profiles();
    let composer = Composer {
        formats: &formats,
        services: &services,
        network: &network,
    };
    let composition = composer
        .compose(&profiles, server, pda, &SelectOptions::default())
        .unwrap();
    let plan = composition.plan.expect("the catalog can reach the PDA");

    // The plan respects the PDA's hardware: pixel count under the screen
    // size, configured rate under the 400 kbit/s last hop.
    let last = plan.steps.last().unwrap();
    if let Some(px) = last.params.get(Axis::PixelCount) {
        assert!(px <= 320.0 * 240.0 + 1e-6);
    }
    assert!(last.input_bps <= 400e3 * (1.0 + 1e-9));

    let profile = profiles.effective_satisfaction();
    let report = run_session(
        &mut network,
        &services,
        &plan,
        &profile,
        &SessionConfig::default(),
    )
    .unwrap();
    assert!(report.frames_delivered > 0);
    assert!(
        (report.measured_satisfaction - plan.predicted_satisfaction).abs() < 0.05,
        "measured {} vs predicted {}",
        report.measured_satisfaction,
        plan.predicted_satisfaction
    );
}

#[test]
fn registry_churn_changes_composition() {
    let (formats, mut services, network, server, pda) = pda_setup();
    let profiles = pda_profiles();

    // Baseline chain uses the H.263 down-coder.
    let composer = Composer {
        formats: &formats,
        services: &services,
        network: &network,
    };
    let baseline = composer
        .compose(&profiles, server, pda, &SelectOptions::default())
        .unwrap()
        .plan
        .expect("solvable");
    let uses_h263 = baseline.steps.iter().any(|s| s.name == "mpeg2-to-h263");
    assert!(uses_h263);

    // Kill the down-coder's lease; composition must adapt or fail —
    // never return a plan through a dead service.
    let dead: Vec<_> = services
        .live_services()
        .filter(|(_, d)| d.name == "mpeg2-to-h263")
        .map(|(id, _)| id)
        .collect();
    for id in dead {
        services.deregister(id).unwrap();
    }
    let composer = Composer {
        formats: &formats,
        services: &services,
        network: &network,
    };
    let after = composer
        .compose(&profiles, server, pda, &SelectOptions::default())
        .unwrap();
    if let Some(plan) = after.plan {
        assert!(plan.steps.iter().all(|s| s.name != "mpeg2-to-h263"));
    }
}

#[test]
fn budget_constrains_realistic_chains() {
    let (formats, services, network, server, pda) = pda_setup();
    let mut profiles = pda_profiles();

    let composer = Composer {
        formats: &formats,
        services: &services,
        network: &network,
    };
    let free = composer
        .compose(&profiles, server, pda, &SelectOptions::default())
        .unwrap()
        .plan
        .expect("solvable without budget");
    assert!(free.total_cost > 0.0, "catalog services are priced");

    // A budget below the cheapest chain kills the composition.
    profiles.user.budget = Some(free.total_cost / 100.0);
    let broke = composer
        .compose(&profiles, server, pda, &SelectOptions::default())
        .unwrap();
    if let Some(plan) = &broke.plan {
        assert!(plan.total_cost <= free.total_cost / 100.0 + 1e-9);
    }

    // A budget exactly at the unconstrained cost keeps it feasible.
    profiles.user.budget = Some(free.total_cost * (1.0 + 1e-6));
    let exact = composer
        .compose(&profiles, server, pda, &SelectOptions::default())
        .unwrap();
    assert!(exact.plan.is_some());
}

#[test]
fn profile_json_round_trip_preserves_composition() {
    let (formats, services, network, server, pda) = pda_setup();
    let profiles = pda_profiles();
    let json = profiles.to_json().unwrap();
    let restored = ProfileSet::from_json(&json).unwrap();

    let composer = Composer {
        formats: &formats,
        services: &services,
        network: &network,
    };
    let a = composer
        .compose(&profiles, server, pda, &SelectOptions::default())
        .unwrap()
        .plan
        .unwrap();
    let b = composer
        .compose(&restored, server, pda, &SelectOptions::default())
        .unwrap()
        .plan
        .unwrap();
    assert_eq!(a.predicted_satisfaction, b.predicted_satisfaction);
    assert_eq!(
        a.steps.iter().map(|s| &s.name).collect::<Vec<_>>(),
        b.steps.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
}

/// Cross-kind fallback: a text-only terminal can still receive a video —
/// through the video-to-text transcript service ("video to text
/// conversion", Section 1). Exercises kind-changing conversions and the
/// cross-kind satisfaction clamp.
#[test]
fn text_only_terminal_gets_a_transcript() {
    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxy = topo.add_node(Node::unconstrained("proxy"));
    let terminal = topo.add_node(Node::unconstrained("tty"));
    topo.connect_simple(server, proxy, 100e6).unwrap();
    topo.connect_simple(proxy, terminal, 64e3).unwrap();
    let network = Network::new(topo);
    let mut services = ServiceRegistry::new();
    for spec in catalog::full_catalog() {
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
    }
    let mut user = UserProfile::demo("reader");
    user.satisfaction =
        qosc_satisfaction::SatisfactionProfile::new().with(qosc_satisfaction::AxisPreference::new(
            qosc_media::Axis::Fidelity,
            qosc_satisfaction::SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 40.0,
            },
        ));
    let device = qosc_profiles::DeviceProfile::new(
        "text-terminal",
        vec!["text/html".to_string()],
        qosc_profiles::HardwareCaps::pda(),
    );
    let profiles = ProfileSet {
        user,
        content: ContentProfile::demo_video("lecture"),
        device,
        context: ContextProfile::default(),
        network: NetworkProfile::cellular(),
    };
    let composer = Composer {
        formats: &formats,
        services: &services,
        network: &network,
    };
    let composition = composer
        .compose(&profiles, server, terminal, &SelectOptions::default())
        .unwrap();
    let plan = composition
        .plan
        .expect("video-to-text reaches the terminal");
    assert!(
        plan.steps.iter().any(|s| s.name == "video-to-text"),
        "expected the transcript service, got {:?}",
        plan.steps.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    assert!(plan.predicted_satisfaction > 0.5);
    // The transcript's fidelity axis is what the user scores.
    let delivered = plan.steps.last().unwrap().params;
    assert!(delivered.get(qosc_media::Axis::Fidelity).is_some());
    assert!(delivered.get(qosc_media::Axis::FrameRate).is_none());
}
