//! `FailureSchedule` ordering semantics the chaos generator leans on.
//!
//! Correlated faults (a node crash plus the link failures on its host)
//! are emitted at the *same* `SimTime`, so the schedule must apply
//! simultaneous events in stable insertion order — `FailureSchedule::at`
//! sorts with the stable `sort_by_key`. Pin that, and pin that any
//! insertion order of a fault set yields the same time-major applied
//! sequence.

use proptest::prelude::*;
use qosc_netsim::{Network, Node, SimTime, Topology};
use qosc_pipeline::{FailureEvent, FailureSchedule};

#[test]
fn simultaneous_events_apply_in_insertion_order() {
    let mut topo = Topology::new();
    let a = topo.add_node(Node::unconstrained("a"));
    let b = topo.add_node(Node::unconstrained("b"));
    let t = SimTime::from_secs(3);
    // A correlated crash: node down first, then its links — all at `t`,
    // interleaved with an earlier and a later event to exercise the sort.
    let schedule = FailureSchedule::new()
        .at(SimTime::from_secs(9), FailureEvent::NodeUp(a))
        .at(t, FailureEvent::NodeDown(a))
        .at(t, FailureEvent::NodeDown(b))
        .at(SimTime::from_secs(1), FailureEvent::NodeUp(b))
        .at(t, FailureEvent::NodeUp(a));
    let got: Vec<(SimTime, FailureEvent)> = schedule.events().to_vec();
    assert_eq!(
        got,
        vec![
            (SimTime::from_secs(1), FailureEvent::NodeUp(b)),
            (t, FailureEvent::NodeDown(a)),
            (t, FailureEvent::NodeDown(b)),
            (t, FailureEvent::NodeUp(a)),
            (SimTime::from_secs(9), FailureEvent::NodeUp(a)),
        ],
        "equal-time events keep insertion order (stable sort)"
    );
}

#[test]
fn down_then_up_at_the_same_instant_nets_to_up() {
    let mut topo = Topology::new();
    let n = topo.add_node(Node::unconstrained("n"));
    let mut network = Network::new(topo);
    let schedule = FailureSchedule::new()
        .at(SimTime::from_secs(1), FailureEvent::NodeDown(n))
        .at(SimTime::from_secs(1), FailureEvent::NodeUp(n));
    for &(_, event) in schedule.events() {
        FailureSchedule::apply(event, &mut network);
    }
    assert!(
        !network.node_failed(n),
        "insertion order decides the net effect of simultaneous events"
    );
}

/// The canonical applied sequence: time-major, insertion-order within a
/// time, reproduced by replaying `fault set` in its given order.
fn applied_sequence(faults: &[(u64, FailureEvent)]) -> Vec<(SimTime, FailureEvent)> {
    let mut schedule = FailureSchedule::new();
    for &(t, event) in faults {
        schedule = schedule.at(SimTime::from_secs(t), event);
    }
    schedule.events().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any insertion order that preserves the relative order of
    /// equal-time events yields the same applied sequence. We model the
    /// chaos generator's real freedom: it emits *time groups* in
    /// arbitrary interleavings but keeps each group internally ordered —
    /// so we shuffle by rotating whole groups, then compare.
    #[test]
    fn group_interleavings_yield_the_same_sequence(
        times in proptest::collection::vec(0u64..5, 1..12),
        rotation in 0usize..12,
    ) {
        let mut topo = Topology::new();
        let n = topo.add_node(Node::unconstrained("n"));
        // Within a time group: Down then Up (insertion order matters and
        // is preserved by construction below).
        let mut groups: Vec<Vec<(u64, FailureEvent)>> = Vec::new();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        sorted.dedup();
        for &t in &sorted {
            groups.push(vec![
                (t, FailureEvent::NodeDown(n)),
                (t, FailureEvent::NodeUp(n)),
            ]);
        }
        let canonical: Vec<(u64, FailureEvent)> =
            groups.iter().flatten().copied().collect();

        // Interleave: rotate the group list, then round-robin drain the
        // groups — equal-time pairs stay in relative order, everything
        // else is thoroughly shuffled.
        let k = rotation % groups.len();
        groups.rotate_left(k);
        let mut shuffled: Vec<(u64, FailureEvent)> = Vec::new();
        let mut cursors = vec![0usize; groups.len()];
        loop {
            let mut advanced = false;
            for (gi, group) in groups.iter().enumerate() {
                if cursors[gi] < group.len() {
                    shuffled.push(group[cursors[gi]]);
                    cursors[gi] += 1;
                    advanced = true;
                }
            }
            if !advanced {
                break;
            }
        }

        prop_assert_eq!(
            applied_sequence(&canonical),
            applied_sequence(&shuffled),
            "schedule is a function of the fault set, not insertion interleaving"
        );
    }
}
