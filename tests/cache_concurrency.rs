//! Concurrency stress for [`ShardedCompositionCache`]: many threads
//! hammering one shared cache must (1) return exactly the plans a
//! single-threaded reference computes and (2) keep the aggregated
//! hit/miss/stale counters exact — their sum equals the number of
//! requests served, regardless of interleaving.

use qosc_core::{
    serve_batch, Composer, CompositionRequest, EngineConfig, SelectOptions, ShardedCompositionCache,
};
use qosc_media::FormatRegistry;
use qosc_netsim::{Network, Node, NodeId, Topology};
use qosc_profiles::{
    ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, ProfileSet, UserProfile,
};
use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};
use std::sync::atomic::{AtomicUsize, Ordering};

const THREADS: usize = 8;

struct Fixture {
    formats: FormatRegistry,
    services: ServiceRegistry,
    network: Network,
    server: NodeId,
    client: NodeId,
}

fn fixture() -> Fixture {
    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxy = topo.add_node(Node::unconstrained("proxy"));
    let client = topo.add_node(Node::unconstrained("client"));
    topo.connect_simple(server, proxy, 100e6).unwrap();
    topo.connect_simple(proxy, client, 1e6).unwrap();
    let network = Network::new(topo);
    let mut services = ServiceRegistry::new();
    for spec in catalog::full_catalog() {
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
    }
    Fixture {
        formats,
        services,
        network,
        server,
        client,
    }
}

/// `distinct` different profile sets (distinct cache keys), repeated
/// round-robin up to `total` requests.
fn request_mix(f: &Fixture, distinct: usize, total: usize) -> Vec<CompositionRequest> {
    (0..total)
        .map(|i| CompositionRequest {
            profiles: ProfileSet {
                user: UserProfile::demo(&format!("stress-user-{}", i % distinct)),
                content: ContentProfile::demo_video("clip"),
                device: DeviceProfile::demo_pda(),
                context: ContextProfile::default(),
                network: NetworkProfile::broadband(),
            },
            sender_host: f.server,
            receiver_host: f.client,
        })
        .collect()
}

#[test]
fn eight_threads_agree_with_sequential_reference() {
    let f = fixture();
    let composer = Composer {
        formats: &f.formats,
        services: &f.services,
        network: &f.network,
    };
    let options = SelectOptions::default();
    let requests = request_mix(&f, 6, 240);

    // Single-threaded, uncached reference.
    let reference: Vec<_> = requests
        .iter()
        .map(|r| {
            composer
                .compose(&r.profiles, r.sender_host, r.receiver_host, &options)
                .unwrap()
                .plan
        })
        .collect();

    // Hand-rolled worker pool pulling off a shared atomic index, all
    // through one `&self` cache.
    let cache = ShardedCompositionCache::new(8);
    let next = AtomicUsize::new(0);
    let mut results: Vec<(usize, Option<qosc_core::AdaptationPlan>)> =
        Vec::with_capacity(requests.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let next = &next;
                let cache = &cache;
                let composer = &composer;
                let requests = &requests;
                let options = &options;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(r) = requests.get(i) else {
                            return local;
                        };
                        let plan = cache
                            .compose(
                                composer,
                                &r.profiles,
                                r.sender_host,
                                r.receiver_host,
                                options,
                            )
                            .unwrap();
                        local.push((i, plan));
                    }
                })
            })
            .collect();
        for handle in handles {
            results.extend(handle.join().unwrap());
        }
    });

    assert_eq!(results.len(), requests.len());
    for (i, plan) in &results {
        assert_eq!(
            plan, &reference[*i],
            "request {i} diverged from the reference"
        );
    }

    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses + stats.stale,
        requests.len(),
        "counters must aggregate exactly: {stats:?}"
    );
    assert_eq!(stats.stale, 0, "nothing was invalidated in this run");
    // Each of the 6 distinct keys misses at least once; racing cold
    // requests may turn a would-be hit into an extra miss, never the
    // other way around.
    assert!(
        stats.misses >= 6,
        "at least one miss per distinct key: {stats:?}"
    );
    assert_eq!(cache.len(), 6, "one entry per distinct key");
}

#[test]
fn engine_batch_under_contention_matches_reference() {
    let f = fixture();
    let composer = Composer {
        formats: &f.formats,
        services: &f.services,
        network: &f.network,
    };
    let requests = request_mix(&f, 3, 96);
    let reference: Vec<_> = requests
        .iter()
        .map(|r| {
            composer
                .compose(
                    &r.profiles,
                    r.sender_host,
                    r.receiver_host,
                    &SelectOptions::default(),
                )
                .unwrap()
                .plan
        })
        .collect();
    let cache = ShardedCompositionCache::default();
    let config = EngineConfig {
        workers: THREADS,
        ..EngineConfig::default()
    };
    let served = serve_batch(&composer, &cache, &requests, &config);
    for (i, (got, want)) in served.iter().zip(&reference).enumerate() {
        assert_eq!(got.as_ref().unwrap(), want, "request {i}");
    }
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses + stats.stale, requests.len());
}

#[test]
fn stale_entries_recompose_under_concurrency() {
    let mut f = fixture();
    let options = SelectOptions::default();
    let cache = ShardedCompositionCache::new(8);
    let warm = request_mix(&f, 4, 32);

    // Wave 1 warms the cache.
    {
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let config = EngineConfig {
            workers: THREADS,
            ..EngineConfig::default()
        };
        for outcome in serve_batch(&composer, &cache, &warm, &config) {
            outcome.unwrap().expect("solvable");
        }
    }
    let after_warm = cache.stats();
    assert_eq!(
        after_warm.hits + after_warm.misses + after_warm.stale,
        warm.len()
    );

    // Kill every service used by one cached plan, then replay the mix.
    let victim = {
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        cache
            .compose(
                &composer,
                &warm[0].profiles,
                warm[0].sender_host,
                warm[0].receiver_host,
                &options,
            )
            .unwrap()
            .expect("solvable")
    };
    for step in &victim.steps {
        if let Some(id) = step.service {
            f.services.deregister(id).unwrap();
        }
    }

    let composer = Composer {
        formats: &f.formats,
        services: &f.services,
        network: &f.network,
    };
    let reference: Vec<_> = warm
        .iter()
        .map(|r| {
            composer
                .compose(&r.profiles, r.sender_host, r.receiver_host, &options)
                .unwrap()
                .plan
        })
        .collect();
    let config = EngineConfig {
        workers: THREADS,
        ..EngineConfig::default()
    };
    let served = serve_batch(&composer, &cache, &warm, &config);
    for (i, (got, want)) in served.iter().zip(&reference).enumerate() {
        assert_eq!(got.as_ref().unwrap(), want, "post-churn request {i}");
    }
    let total = cache.stats();
    assert_eq!(
        total.hits + total.misses + total.stale,
        warm.len() * 2 + 1,
        "exact counters across both waves and the probe: {total:?}"
    );
    assert!(
        total.stale >= 1,
        "the killed chain must have been detected stale: {total:?}"
    );
}
