//! Session-lifecycle invariants, property-tested over randomized
//! offered loads, holding times, tick periods, admission settings and
//! horizons:
//!
//! * every opened session is closed, shed, or active-at-end — exactly
//!   one of the three,
//! * per-session event times are monotone in virtual time
//!   (`opened ≤ started ≤ rung history ≤ closed`),
//! * the lifecycle counters partition exactly
//!   (`opened == closed + shed + active_at_end`),
//! * time accounting is exact (`lit + dark == active`, rung buckets sum
//!   to the lit time),
//! * the whole report — and the merged telemetry log — is bitwise
//!   deterministic across repeated runs and across worker counts.

use proptest::prelude::*;
use qosc_core::{
    run_sessions, ArrivalMeta, CompositionRequest, PriorityClass, SessionEngineConfig,
    SessionRequest, SessionsReport, StaticWorld,
};
use qosc_media::FormatRegistry;
use qosc_netsim::{Network, Node, NodeId, Topology};
use qosc_profiles::{
    ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, ProfileSet, UserProfile,
};
use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};
use qosc_telemetry::FlightRecorder;

struct Fixture {
    formats: FormatRegistry,
    services: ServiceRegistry,
    network: Network,
    server: NodeId,
    client: NodeId,
}

/// server —100M— proxy —1M— client with the full transcoder catalog on
/// the proxy: small enough that a proptest case composes in
/// microseconds, rich enough that every session serves a real chain.
fn fixture() -> Fixture {
    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxy = topo.add_node(Node::unconstrained("proxy"));
    let client = topo.add_node(Node::unconstrained("client"));
    topo.connect_simple(server, proxy, 100e6).unwrap();
    topo.connect_simple(proxy, client, 1e6).unwrap();
    let network = Network::new(topo);
    let mut services = ServiceRegistry::new();
    for spec in catalog::full_catalog() {
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
    }
    Fixture {
        formats,
        services,
        network,
        server,
        client,
    }
}

#[derive(Debug, Clone)]
struct Offered {
    arrival_us: u64,
    hold_us: u64,
    priority: PriorityClass,
    cost_us: u64,
    deadline_us: Option<u64>,
}

#[derive(Debug, Clone)]
struct Case {
    offered: Vec<Offered>,
    tick_us: u64,
    with_admission: bool,
    horizon_us: Option<u64>,
}

fn offered_strategy() -> impl Strategy<Value = Offered> {
    (
        0u64..2_000_000,
        prop_oneof![Just(0u64), 1u64..4_000_000],
        prop_oneof![
            Just(PriorityClass::Interactive),
            Just(PriorityClass::Standard),
            Just(PriorityClass::Background),
        ],
        1u64..50_000,
        prop_oneof![Just(None), (1u64..500_000).prop_map(Some)],
    )
        .prop_map(
            |(arrival_us, hold_us, priority, cost_us, deadline_us)| Offered {
                arrival_us,
                hold_us,
                priority,
                cost_us,
                deadline_us,
            },
        )
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        proptest::collection::vec(offered_strategy(), 1..12),
        prop_oneof![Just(0u64), Just(100_000u64), Just(250_000u64)],
        proptest::bool::ANY,
        prop_oneof![Just(None), (500_000u64..3_000_000).prop_map(Some)],
    )
        .prop_map(|(offered, tick_us, with_admission, horizon_us)| Case {
            offered,
            tick_us,
            with_admission,
            horizon_us,
        })
}

fn requests_for(f: &Fixture, case: &Case) -> Vec<SessionRequest> {
    // The admission queue expects offers in arrival order; the engine
    // opens sessions in offer order, so sort like plan_admission does.
    let mut offered = case.offered.clone();
    offered.sort_by_key(|o| o.arrival_us);
    offered
        .iter()
        .map(|o| SessionRequest {
            request: CompositionRequest {
                profiles: ProfileSet {
                    user: UserProfile::demo("user"),
                    content: ContentProfile::demo_video("clip"),
                    device: DeviceProfile::demo_pda(),
                    context: ContextProfile::default(),
                    network: NetworkProfile::broadband(),
                },
                sender_host: f.server,
                receiver_host: f.client,
            },
            arrival: ArrivalMeta {
                arrival_us: o.arrival_us,
                priority: o.priority,
                service_cost_us: o.cost_us,
                deadline_budget_us: o.deadline_us,
            },
            hold_us: o.hold_us,
            demand_bps: 0,
        })
        .collect()
}

fn config_for(case: &Case, workers: usize) -> SessionEngineConfig {
    let mut config = SessionEngineConfig {
        tick_us: case.tick_us,
        horizon_us: case.horizon_us,
        ..SessionEngineConfig::default()
    };
    config.resilient.workers = workers;
    if !case.with_admission {
        config.admission = None;
    }
    config
}

fn run_case(f: &Fixture, case: &Case, workers: usize) -> (SessionsReport, String) {
    let mut world = StaticWorld {
        formats: &f.formats,
        services: &f.services,
        network: &f.network,
    };
    let requests = requests_for(f, case);
    let recorder = FlightRecorder::new(8);
    let report = run_sessions(&mut world, &requests, &config_for(case, workers), &recorder);
    (report, recorder.render_log())
}

fn assert_lifecycle_invariants(case: &Case, report: &SessionsReport) {
    let c = &report.counters;
    assert_eq!(c.offered, case.offered.len(), "one outcome slot per offer");
    assert_eq!(report.outcomes.len(), c.offered);
    assert!(
        c.partitions_exactly(),
        "opened {} != closed {} + shed {} + active {}",
        c.opened,
        c.closed(),
        c.shed,
        c.active_at_end
    );

    let mut opened = 0usize;
    let mut closed = 0usize;
    let mut shed = 0usize;
    for (i, o) in report.outcomes.iter().enumerate() {
        if !o.opened {
            // Arrival past the horizon: nothing may have happened.
            assert!(o.close.is_none() && o.shed.is_none() && o.started_us.is_none());
            continue;
        }
        opened += 1;
        // Closed or shed — never both, at most once each.
        assert!(
            !(o.close.is_some() && o.shed.is_some()),
            "session {i} both closed and shed"
        );
        if o.shed.is_some() {
            shed += 1;
            assert!(o.started_us.is_none(), "shed session {i} streamed");
            assert_eq!(o.active_us(), 0);
        }
        if let Some(reason) = o.close {
            closed += 1;
            let closed_us = o
                .closed_us
                .unwrap_or_else(|| panic!("session {i} closed as {reason} without a close time"));
            assert!(closed_us >= o.opened_us, "session {i} closed before open");
        }

        // Virtual-time monotonicity through the session's events.
        if let Some(started) = o.started_us {
            assert!(started >= o.opened_us, "session {i} started before open");
            if let Some(closed_us) = o.closed_us {
                assert!(closed_us >= started, "session {i} closed before start");
            }
            assert_eq!(
                o.rung_history.first().map(|&(t, _)| t),
                Some(started),
                "session {i}: first rung adoption is the start"
            );
        } else {
            assert_eq!(o.active_us(), 0, "session {i} accrued without starting");
        }
        let mut last = o.opened_us;
        for &(t, _) in &o.rung_history {
            assert!(t >= last, "session {i} rung history out of order");
            last = t;
        }

        // Exact time accounting.
        assert_eq!(o.lit_us + o.dark_us, o.active_us());
        assert_eq!(
            o.rung_us.iter().sum::<u64>(),
            o.lit_us,
            "session {i}: rung buckets must partition lit time"
        );
        if let Some(horizon) = case.horizon_us {
            assert!(o.closed_us.unwrap_or(horizon) <= horizon);
        }
    }
    assert_eq!(opened, c.opened);
    assert_eq!(closed, c.closed());
    assert_eq!(shed, c.shed);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn lifecycle_partition_and_monotonicity(case in case_strategy()) {
        let f = fixture();
        let (report, _) = run_case(&f, &case, 1);
        assert_lifecycle_invariants(&case, &report);
    }

    #[test]
    fn bitwise_deterministic_across_runs_and_workers(case in case_strategy()) {
        let f = fixture();
        let (first, log_first) = run_case(&f, &case, 1);
        let rendered_first = format!("{first:?}");
        // Repeat at the same worker count, then across worker counts.
        for workers in [1usize, 2, 4] {
            let (report, log) = run_case(&f, &case, workers);
            prop_assert_eq!(
                &rendered_first,
                &format!("{report:?}"),
                "report diverged at {} workers",
                workers
            );
            prop_assert_eq!(
                &log_first,
                &log,
                "telemetry log diverged at {} workers",
                workers
            );
        }
    }
}
