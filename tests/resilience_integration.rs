//! X4 integration: the self-organizing recovery loop on the paper
//! scenario and on random scenarios.

use qosc_netsim::SimTime;
use qosc_pipeline::{run_resilient, FailureEvent, FailureSchedule, ResilienceConfig};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::paper;

#[test]
fn recovery_beats_no_recovery_on_the_paper_scenario() {
    let run = |recompose: bool| {
        let mut scenario = paper::figure6_scenario(true);
        let t7 = scenario.network.topology().node_by_name("host-T7").unwrap();
        let schedule =
            FailureSchedule::new().at(SimTime::from_secs(10), FailureEvent::NodeDown(t7));
        run_resilient(
            &scenario.formats,
            &scenario.services,
            &mut scenario.network,
            &scenario.profiles,
            scenario.sender_host,
            scenario.receiver_host,
            &schedule,
            &ResilienceConfig {
                total_duration: SimTime::from_secs(30),
                recompose,
                ..ResilienceConfig::default()
            },
        )
        .unwrap()
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with.mean_satisfaction > without.mean_satisfaction + 0.2,
        "recovery should be worth a lot: {} vs {}",
        with.mean_satisfaction,
        without.mean_satisfaction
    );
    assert_eq!(with.recompositions, 1);
    assert!(with.recovery_gap.unwrap() <= SimTime::from_secs(2));
}

#[test]
fn node_restoration_allows_recomposition_back() {
    // Fail T7 at 5 s, restore it at 15 s: the second fault event is a
    // restore, which does not kill the active (fallback) chain, so one
    // recomposition happens in total and streaming never stops after the
    // detection gap.
    let mut scenario = paper::figure6_scenario(true);
    let t7 = scenario.network.topology().node_by_name("host-T7").unwrap();
    let schedule = FailureSchedule::new()
        .at(SimTime::from_secs(5), FailureEvent::NodeDown(t7))
        .at(SimTime::from_secs(15), FailureEvent::NodeUp(t7));
    let run = run_resilient(
        &scenario.formats,
        &scenario.services,
        &mut scenario.network,
        &scenario.profiles,
        scenario.sender_host,
        scenario.receiver_host,
        &schedule,
        &ResilienceConfig {
            total_duration: SimTime::from_secs(25),
            ..ResilienceConfig::default()
        },
    )
    .unwrap();
    assert_eq!(run.recompositions, 1);
    let delivered_segments = run
        .segments
        .iter()
        .filter(|s| s.report.frames_delivered > 0)
        .count();
    assert!(delivered_segments >= 2);
}

#[test]
fn random_scenarios_recover_when_possible() {
    let config = GeneratorConfig {
        layers: 2,
        services_per_layer: 4,
        formats_per_layer: 2,
        bandwidth_range: (40_000.0, 80_000.0),
        ..GeneratorConfig::default()
    };
    let mut recovered = 0usize;
    let mut attempted = 0usize;
    for seed in 0..10u64 {
        let mut scenario = random_scenario(&config, seed);
        let composition = scenario
            .compose(&qosc_core::SelectOptions::default())
            .unwrap();
        let plan = match composition.plan {
            Some(p) => p,
            None => continue,
        };
        // Kill the first trans-coding host on the chain.
        let victim = match plan.steps.iter().find(|s| s.service.is_some()) {
            Some(step) => step.host,
            None => continue,
        };
        attempted += 1;
        let schedule =
            FailureSchedule::new().at(SimTime::from_secs(5), FailureEvent::NodeDown(victim));
        let run = run_resilient(
            &scenario.formats,
            &scenario.services,
            &mut scenario.network,
            &scenario.profiles,
            scenario.sender_host,
            scenario.receiver_host,
            &schedule,
            &ResilienceConfig {
                total_duration: SimTime::from_secs(15),
                ..ResilienceConfig::default()
            },
        )
        .unwrap();
        let post_fault_delivery = run
            .segments
            .iter()
            .filter(|s| s.start >= SimTime::from_secs(6))
            .any(|s| s.report.frames_delivered > 0);
        if post_fault_delivery {
            recovered += 1;
        }
    }
    assert!(attempted >= 5, "want a meaningful sample");
    assert!(
        recovered * 2 >= attempted,
        "at least half the scenarios should have an alternate chain: {recovered}/{attempted}"
    );
}

/// Pre-planned backups cut the recovery gap from the detection timeout
/// (1 s) to the switch-over delay (100 ms).
#[test]
fn preplanned_backup_fails_over_instantly() {
    let run = |preplan: bool| {
        let mut scenario = paper::figure6_scenario(true);
        let t7 = scenario.network.topology().node_by_name("host-T7").unwrap();
        let schedule =
            FailureSchedule::new().at(SimTime::from_secs(10), FailureEvent::NodeDown(t7));
        run_resilient(
            &scenario.formats,
            &scenario.services,
            &mut scenario.network,
            &scenario.profiles,
            scenario.sender_host,
            scenario.receiver_host,
            &schedule,
            &ResilienceConfig {
                total_duration: SimTime::from_secs(30),
                preplan_backups: preplan,
                ..ResilienceConfig::default()
            },
        )
        .unwrap()
    };
    let preplanned = run(true);
    let reactive = run(false);

    assert_eq!(preplanned.failovers, 1);
    assert_eq!(preplanned.recompositions, 0, "no re-composition needed");
    assert_eq!(preplanned.recovery_gap, Some(SimTime::from_millis(100)));
    assert_eq!(reactive.recovery_gap, Some(SimTime::from_secs(1)));
    assert!(
        preplanned.mean_satisfaction > reactive.mean_satisfaction,
        "the shorter gap must show up in time-weighted satisfaction: {} vs {}",
        preplanned.mean_satisfaction,
        reactive.mean_satisfaction
    );
    // Both recover onto the T10 fallback chain.
    for run in [&preplanned, &reactive] {
        let last = &run.segments.last().unwrap().chain;
        assert!(last.contains(&"T10".to_string()), "{last:?}");
    }
}
