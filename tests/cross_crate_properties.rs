//! Property-based cross-crate invariants (proptest): the structural
//! guarantees the paper states hold over randomized scenarios.

use proptest::prelude::*;
use qosc_core::graph::acyclic;
use qosc_core::SelectOptions;
use qosc_media::Axis;
use qosc_workload::generator::{random_scenario, GeneratorConfig};

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        2usize..=3, // layers
        2usize..=5, // services per layer
        2usize..=3, // formats per layer
        1usize..=3, // conversions per service
        10_000f64..=80_000f64,
        proptest::bool::ANY,
    )
        .prop_map(|(layers, spl, fpl, cps, bw, multi_axis)| GeneratorConfig {
            layers,
            services_per_layer: spl,
            formats_per_layer: fpl,
            conversions_per_service: cps,
            bandwidth_range: (bw * 0.5, bw),
            multi_axis,
            ..GeneratorConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every edge of a constructed graph is format-matched: the producing
    /// vertex can output the edge format and the consuming vertex accepts
    /// it (Section 4.2's construction rule).
    #[test]
    fn edges_are_format_matched((config, seed) in (arb_config(), 0u64..1000)) {
        let scenario = random_scenario(&config, seed);
        let composition = scenario.compose(&SelectOptions { record_trace: false, ..Default::default() }).unwrap();
        let graph = &composition.graph;
        for edge_id in graph.edge_ids() {
            let edge = graph.edge(edge_id).unwrap();
            let from = graph.vertex(edge.from).unwrap();
            let to = graph.vertex(edge.to).unwrap();
            prop_assert!(from.conversions.iter().any(|c| c.output == edge.format));
            prop_assert!(to.accepts(edge.format));
        }
    }

    /// Layered generation yields DAGs, and the selected chain's edge
    /// formats are pairwise distinct (the paper's acyclicity rule).
    #[test]
    fn selected_chains_have_distinct_formats((config, seed) in (arb_config(), 0u64..1000)) {
        let scenario = random_scenario(&config, seed);
        let composition = scenario.compose(&SelectOptions { record_trace: false, ..Default::default() }).unwrap();
        prop_assert!(!acyclic::has_cycle(&composition.graph));
        if let Some(chain) = &composition.selection.chain {
            let mut formats: Vec<_> = chain.steps[..chain.steps.len() - 1]
                .iter()
                .map(|s| s.output_format)
                .collect();
            let before = formats.len();
            formats.sort();
            formats.dedup();
            prop_assert_eq!(formats.len(), before, "repeated format along the chain");
        }
    }

    /// Selection invariants: satisfaction in [0, 1] and non-increasing
    /// along the chain; accumulated cost non-decreasing and within any
    /// configured budget.
    #[test]
    fn chain_labels_are_monotone((config, seed, budget) in (arb_config(), 0u64..1000, proptest::option::of(1.0f64..20.0))) {
        let mut config = config;
        config.budget = budget;
        let scenario = random_scenario(&config, seed);
        let composition = scenario.compose(&SelectOptions { record_trace: false, ..Default::default() }).unwrap();
        if let Some(chain) = &composition.selection.chain {
            for step in &chain.steps {
                prop_assert!((0.0..=1.0).contains(&step.satisfaction));
            }
            for pair in chain.steps.windows(2) {
                prop_assert!(pair[1].satisfaction <= pair[0].satisfaction + 1e-9);
                prop_assert!(pair[1].accumulated_cost >= pair[0].accumulated_cost - 1e-9);
            }
            if let Some(b) = budget {
                prop_assert!(chain.total_cost <= b * (1.0 + 1e-6) + 1e-6);
            }
        }
    }

    /// The delivered parameters never exceed what the sender offered
    /// (quality monotonicity end to end).
    #[test]
    fn delivered_quality_never_exceeds_offer((config, seed) in (arb_config(), 0u64..1000)) {
        let scenario = random_scenario(&config, seed);
        let composition = scenario.compose(&SelectOptions { record_trace: false, ..Default::default() }).unwrap();
        if let Some(chain) = &composition.selection.chain {
            let delivered = chain.steps.last().unwrap().params;
            if let Some(fps) = delivered.get(Axis::FrameRate) {
                prop_assert!(fps <= 30.0 + 1e-9, "offer caps at 30 fps");
            }
            if let Some(px) = delivered.get(Axis::PixelCount) {
                prop_assert!(px <= 307_200.0 + 1e-6);
            }
        }
    }

    /// The plan's hop rates satisfy Equa. 2 against the graph edges the
    /// chain used (no plan ever promises more than the network snapshot
    /// allowed).
    #[test]
    fn plan_rates_respect_edge_bandwidth((config, seed) in (arb_config(), 0u64..1000)) {
        let scenario = random_scenario(&config, seed);
        let composition = scenario.compose(&SelectOptions { record_trace: false, ..Default::default() }).unwrap();
        if let Some(plan) = &composition.plan {
            for pair in plan.steps.windows(2) {
                let available = scenario
                    .network
                    .available_between(pair[0].host, pair[1].host)
                    .unwrap();
                prop_assert!(
                    pair[1].input_bps <= available * (1.0 + 1e-6) + 1e-6,
                    "hop rate {} exceeds available {}",
                    pair[1].input_bps,
                    available
                );
            }
        }
    }
}
