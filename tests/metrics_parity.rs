//! Metrics parity: the unified registry is a *view* over the engine's
//! legacy counters, not a second source of truth — registry totals
//! equal `CacheStats` / `BatchCounters` exactly, the batch counters
//! partition the batch, and the per-shard occupancy gauges stay
//! consistent under concurrent churn.

use qosc_core::{
    serve_batch, serve_batch_with_admission, AdmissionConfig, CompositionRequest, EngineConfig,
    ResilientEngineConfig, ShardedCompositionCache,
};
use qosc_telemetry::MetricsRegistry;
use qosc_workload::arrivals::{poisson_burst_arrivals, ArrivalPattern};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::Scenario;

const TOPOLOGY_SEED: u64 = 5;

fn scenario() -> Scenario {
    random_scenario(
        &GeneratorConfig {
            services_per_layer: 5,
            multi_axis: true,
            ..GeneratorConfig::default()
        },
        TOPOLOGY_SEED,
    )
}

fn keyed_requests(scenario: &Scenario, n: usize) -> Vec<CompositionRequest> {
    (0..n)
        .map(|i| {
            let mut profiles = scenario.profiles.clone();
            profiles.user.name = format!("viewer-{i}");
            CompositionRequest {
                profiles,
                sender_host: scenario.sender_host,
                receiver_host: scenario.receiver_host,
            }
        })
        .collect()
}

/// `qosc_batch_*_total` counters mirror `BatchCounters` field for
/// field, and the fields partition the batch.
#[test]
fn batch_counter_registry_totals_equal_legacy_counters() {
    let scenario = scenario();
    let composer = scenario.composer();
    let arrivals = poisson_burst_arrivals(
        &ArrivalPattern {
            horizon_us: 300_000,
            rate_per_sec: 660,
            ..ArrivalPattern::default()
        },
        42,
    );
    let requests: Vec<CompositionRequest> = arrivals
        .iter()
        .map(|_| CompositionRequest {
            profiles: scenario.profiles.clone(),
            sender_host: scenario.sender_host,
            receiver_host: scenario.receiver_host,
        })
        .collect();
    let result = serve_batch_with_admission(
        &composer,
        &requests,
        &arrivals,
        &ResilientEngineConfig {
            workers: 4,
            admission: AdmissionConfig {
                virtual_cores: 4,
                initial_limit: 4,
                max_limit: 8,
                ..AdmissionConfig::protected()
            },
            ..ResilientEngineConfig::default()
        },
    );
    let counters = result.batch.counters();

    let registry = MetricsRegistry::new();
    counters.record_metrics(&registry);
    for (name, legacy) in [
        ("qosc_batch_served_total", counters.served),
        ("qosc_batch_degraded_total", counters.degraded),
        ("qosc_batch_failed_total", counters.failed),
        (
            "qosc_batch_deadline_exceeded_total",
            counters.deadline_exceeded,
        ),
        ("qosc_batch_shed_total", counters.shed),
    ] {
        assert_eq!(
            registry.counter_value(name),
            Some(legacy as u64),
            "{name} diverged from the legacy counter"
        );
    }
    assert_eq!(
        counters.served
            + counters.degraded
            + counters.failed
            + counters.deadline_exceeded
            + counters.shed,
        requests.len(),
        "the five counters partition the batch"
    );
}

/// `qosc_cache_*_total` counters mirror `CacheStats`, and
/// `hits + misses + stale` accounts for every probe.
#[test]
fn cache_stats_registry_totals_equal_legacy_counters() {
    let scenario = scenario();
    let composer = scenario.composer();
    let cache = ShardedCompositionCache::new(8);
    let requests = keyed_requests(&scenario, 12);
    let config = EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    };
    serve_batch(&composer, &cache, &requests, &config);
    serve_batch(&composer, &cache, &requests, &config);
    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses + stats.stale,
        2 * requests.len(),
        "every probe lands in exactly one bucket"
    );

    let registry = MetricsRegistry::new();
    stats.record_metrics(&registry);
    assert_eq!(
        registry.counter_value("qosc_cache_hits_total"),
        Some(stats.hits as u64)
    );
    assert_eq!(
        registry.counter_value("qosc_cache_misses_total"),
        Some(stats.misses as u64)
    );
    assert_eq!(
        registry.counter_value("qosc_cache_stale_total"),
        Some(stats.stale as u64)
    );
}

/// Per-shard occupancy: `shard_len` sums to the entry count, the gauge
/// export mirrors it, and reading occupancy mid-churn (8 composing
/// threads) never deadlocks or tears below zero.
#[test]
fn shard_occupancy_gauges_stay_consistent_under_churn() {
    let scenario = scenario();
    let composer = scenario.composer();
    let cache = ShardedCompositionCache::new(8);
    let options = qosc_core::SelectOptions::default();

    std::thread::scope(|scope| {
        for thread in 0..8usize {
            let cache = &cache;
            let composer = &composer;
            let scenario = &scenario;
            let options = &options;
            scope.spawn(move || {
                for i in 0..6 {
                    let mut profiles = scenario.profiles.clone();
                    profiles.user.name = format!("churn-{thread}-{i}");
                    cache
                        .compose(
                            composer,
                            &profiles,
                            scenario.sender_host,
                            scenario.receiver_host,
                            options,
                        )
                        .expect("compose succeeds");
                }
            });
        }
        // Reader thread: export gauges while writers churn. Each
        // export locks one shard at a time, so this must make
        // progress, and every observed occupancy is a valid
        // intermediate state (bounded by the final total).
        let cache = &cache;
        scope.spawn(move || {
            for _ in 0..50 {
                let registry = MetricsRegistry::new();
                cache.export_gauges(&registry);
                let total = registry.gauge_value("qosc_cache_entries").unwrap_or(0);
                assert!((0..=48).contains(&total), "torn total {total}");
                let per_shard: i64 = (0..8)
                    .map(|i| {
                        registry
                            .gauge_value(&format!("qosc_cache_shard_entries{{shard=\"{i}\"}}"))
                            .unwrap_or(0)
                    })
                    .sum();
                assert!(
                    (0..=48).contains(&per_shard),
                    "torn per-shard sum {per_shard}"
                );
                std::thread::yield_now();
            }
        });
    });

    // Settled state: accessors, gauge export and stats all agree.
    let lens = cache.shard_lens();
    assert_eq!(lens.len(), 8);
    assert_eq!(lens.iter().sum::<usize>(), cache.len());
    for (index, &len) in lens.iter().enumerate() {
        assert_eq!(cache.shard_len(index), len);
    }
    let registry = MetricsRegistry::new();
    cache.export_gauges(&registry);
    assert_eq!(
        registry.gauge_value("qosc_cache_entries"),
        Some(cache.len() as i64)
    );
    let per_shard: i64 = (0..8)
        .map(|i| {
            registry
                .gauge_value(&format!("qosc_cache_shard_entries{{shard=\"{i}\"}}"))
                .unwrap()
        })
        .sum();
    assert_eq!(per_shard, cache.len() as i64);
    // 48 distinct keys (solvable or not, a solvable mesh stores all).
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses + stats.stale, 48);
}

/// Per-kind event counters exported from the recorder equal the
/// recorder's own counts, and their sum equals the log length.
#[test]
fn event_counters_partition_the_log() {
    use qosc_core::serve_batch_traced;
    use qosc_telemetry::FlightRecorder;

    let scenario = scenario();
    let composer = scenario.composer();
    let cache = ShardedCompositionCache::new(8);
    let requests = keyed_requests(&scenario, 12);
    let recorder = FlightRecorder::new(16);
    let config = EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    };
    serve_batch_traced(&composer, &cache, &requests, &config, &recorder);

    let registry = MetricsRegistry::new();
    recorder.export_metrics(&registry);
    let counts = recorder.event_counts();
    let mut total = 0;
    for (label, count) in &counts {
        assert_eq!(
            registry.counter_value(&format!("qosc_events_total{{kind=\"{label}\"}}")),
            Some(*count),
            "exported counter for {label} diverged"
        );
        total += count;
    }
    assert_eq!(total as usize, recorder.len(), "counters partition the log");
}

/// The buffer-era events join the same accounting: a BOLA run under a
/// squeeze emits `rebuffered` and `rung_switch` events into the
/// flight-recorder log, and the per-kind counters still partition it
/// exactly.
#[test]
fn session_event_counters_partition_the_log_with_abr_events() {
    use qosc_core::{
        run_sessions, AbrConfig, AbrMode, ArrivalMeta, PriorityClass, SessionEngineConfig,
        SessionRequest,
    };
    use qosc_media::FormatRegistry;
    use qosc_netsim::{Network, Node, Topology};
    use qosc_pipeline::{ChaosWorld, FailureEvent};
    use qosc_profiles::{
        ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, ProfileSet, UserProfile,
    };
    use qosc_services::{catalog, DiscoveryConfig, TranscoderDescriptor};
    use qosc_telemetry::FlightRecorder;

    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxy = topo.add_node(Node::unconstrained("proxy"));
    let client = topo.add_node(Node::unconstrained("client"));
    topo.connect_simple(server, proxy, 100e6).unwrap();
    let last_hop = topo.connect_simple(proxy, client, 1e6).unwrap();
    let mut world = ChaosWorld::new(&formats, Network::new(topo), DiscoveryConfig::default());
    for spec in catalog::full_catalog() {
        world.join(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
    }
    // A long hard squeeze: BOLA down-switches (rung_switch) and, while
    // the dwell window delays it, stalls at least once (rebuffered).
    world.schedule_fault(
        1_000_000,
        FailureEvent::Squeeze {
            link: last_hop,
            permille: 990,
        },
    );
    world.schedule_fault(11_000_000, FailureEvent::Unsqueeze(last_hop));

    let profiles = ProfileSet {
        user: UserProfile::demo("user"),
        content: ContentProfile::demo_video("clip"),
        device: DeviceProfile::demo_pda(),
        context: ContextProfile::default(),
        network: NetworkProfile::broadband(),
    };
    let requests: Vec<SessionRequest> = (0..3)
        .map(|_| SessionRequest {
            request: qosc_core::CompositionRequest {
                profiles: profiles.clone(),
                sender_host: server,
                receiver_host: client,
            },
            arrival: ArrivalMeta {
                arrival_us: 0,
                priority: PriorityClass::Standard,
                service_cost_us: 1_000,
                deadline_budget_us: None,
            },
            hold_us: 13_000_000,
            demand_bps: 0,
        })
        .collect();
    let config = SessionEngineConfig {
        admission: None,
        tick_us: 250_000,
        max_recompositions: 8,
        session_spans: true,
        abr: Some(AbrConfig::with_mode(AbrMode::Bola)),
        ..SessionEngineConfig::default()
    };
    let recorder = FlightRecorder::new(16);
    let report = run_sessions(&mut world, &requests, &config, &recorder);
    assert!(report.switches() > 0, "the squeeze must force switches");

    let counts = recorder.event_counts();
    let by_kind = |label: &str| counts.get(label).copied().unwrap_or(0);
    assert_eq!(
        by_kind("rung_switch"),
        report.switches(),
        "one rung_switch event per committed switch"
    );
    assert_eq!(
        by_kind("rebuffered"),
        report
            .outcomes
            .iter()
            .map(|o| o.rebuffer_events as u64)
            .sum::<u64>(),
        "one rebuffered event per stall entry"
    );

    let registry = MetricsRegistry::new();
    recorder.export_metrics(&registry);
    let mut total = 0;
    for (label, count) in &counts {
        assert_eq!(
            registry.counter_value(&format!("qosc_events_total{{kind=\"{label}\"}}")),
            Some(*count),
            "exported counter for {label} diverged"
        );
        total += count;
    }
    assert_eq!(total as usize, recorder.len(), "counters partition the log");
}
