//! E6 integration test: the Figure-5 optimality argument — the greedy
//! selection equals the exhaustive optimum on every solvable scenario —
//! plus pruning-preserves-the-optimum.

use qosc_core::baseline::exhaustive::{exhaustive_optimum, ExhaustiveOptions};
use qosc_core::graph::prune::prune;
use qosc_core::select::label::ExtendContext;
use qosc_core::{select_chain, SelectOptions};
use qosc_satisfaction::OptimizeOptions;
use qosc_workload::generator::{random_scenario, GeneratorConfig};

fn compare_on(config: &GeneratorConfig, seeds: std::ops::Range<u64>) -> (usize, usize) {
    let options = SelectOptions {
        record_trace: false,
        ..SelectOptions::default()
    };
    let mut solvable = 0usize;
    let mut equal = 0usize;
    for seed in seeds {
        let scenario = random_scenario(config, seed);
        let composition = scenario.compose(&options).unwrap();
        let profile = scenario.profiles.effective_satisfaction();
        let ctx = ExtendContext {
            graph: &composition.graph,
            formats: &scenario.formats,
            profile: &profile,
            budget: scenario.profiles.user.budget_or_infinite(),
            optimizer: OptimizeOptions::default(),
            penalties: &[],
        };
        let exact = exhaustive_optimum(&ctx, ExhaustiveOptions::default()).unwrap();
        match (&composition.selection.chain, &exact) {
            (Some(greedy), Some(exact)) => {
                solvable += 1;
                if (greedy.satisfaction - exact.chain.satisfaction).abs() < 1e-9 {
                    equal += 1;
                } else {
                    panic!(
                        "seed {seed}: greedy {} < exact {}",
                        greedy.satisfaction, exact.chain.satisfaction
                    );
                }
            }
            (None, None) => {}
            (g, e) => panic!(
                "seed {seed}: reachability mismatch greedy={} exact={}",
                g.is_some(),
                e.is_some()
            ),
        }
    }
    (solvable, equal)
}

#[test]
fn greedy_equals_exhaustive_tiny() {
    let (solvable, equal) = compare_on(&GeneratorConfig::tiny(), 0..40);
    assert!(solvable >= 20, "want a meaningful sample, got {solvable}");
    assert_eq!(solvable, equal);
}

#[test]
fn greedy_equals_exhaustive_default() {
    let (solvable, equal) = compare_on(&GeneratorConfig::default(), 0..25);
    assert!(solvable >= 15, "want a meaningful sample, got {solvable}");
    assert_eq!(solvable, equal);
}

#[test]
fn greedy_equals_exhaustive_with_budget() {
    let config = GeneratorConfig {
        budget: Some(3.0),
        ..GeneratorConfig::tiny()
    };
    let (solvable, equal) = compare_on(&config, 0..30);
    assert_eq!(solvable, equal);
}

#[test]
fn greedy_equals_exhaustive_multi_axis() {
    let config = GeneratorConfig {
        multi_axis: true,
        bandwidth_range: (50_000.0, 200_000.0),
        ..GeneratorConfig::tiny()
    };
    let (solvable, equal) = compare_on(&config, 0..15);
    assert_eq!(solvable, equal);
}

#[test]
fn pruning_preserves_the_optimum() {
    let options = SelectOptions {
        record_trace: false,
        ..SelectOptions::default()
    };
    for seed in 0..20u64 {
        let scenario = random_scenario(&GeneratorConfig::default(), seed);
        let composition = scenario.compose(&options).unwrap();
        let (pruned, stats) = prune(&composition.graph).unwrap();
        assert!(pruned.vertex_count() <= composition.graph.vertex_count());
        let profile = scenario.profiles.effective_satisfaction();
        let after = select_chain(
            &pruned,
            &scenario.formats,
            &profile,
            scenario.profiles.user.budget_or_infinite(),
            &options,
        )
        .unwrap();
        match (&composition.selection.chain, &after.chain) {
            (Some(a), Some(b)) => assert!(
                (a.satisfaction - b.satisfaction).abs() < 1e-9,
                "seed {seed}: pruning changed the optimum ({} removed vertices)",
                stats.vertices_removed
            ),
            (None, None) => {}
            _ => panic!("seed {seed}: pruning changed solvability"),
        }
    }
}

#[test]
fn pruning_shrinks_the_paper_graph() {
    // T4, T9, T11..T20's dead branches disappear; the outcome does not
    // change.
    let scenario = qosc_workload::paper::figure6_scenario(true);
    let composition = scenario.compose(&SelectOptions::default()).unwrap();
    let (pruned, stats) = prune(&composition.graph).unwrap();
    assert!(
        stats.vertices_removed >= 10,
        "the Figure-6 graph is mostly dead ends, removed {}",
        stats.vertices_removed
    );
    let profile = scenario.profiles.effective_satisfaction();
    let after = select_chain(
        &pruned,
        &scenario.formats,
        &profile,
        f64::INFINITY,
        &SelectOptions::default(),
    )
    .unwrap();
    let chain = after.chain.unwrap();
    assert_eq!(chain.names(), vec!["sender", "T7", "receiver"]);
}
