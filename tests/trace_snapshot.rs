//! Snapshot regression for the Table-1 selection trace: pins the full
//! round-by-round `SelectionTrace` of the Figure-6 scenario — rendered
//! table, selection sequence, selected paths, and the exact (bitwise)
//! satisfaction and cost labels — so any drift in graph construction,
//! optimization or tie-breaking fails loudly with a diff.

use qosc_core::SelectOptions;
use qosc_media::Axis;
use qosc_workload::paper;

/// The rendered Table 1, exactly as `to_table1_string` prints it today.
const TABLE1_RENDERED: &str = "\
Round | Considered Set (VT) | Candidate set (CS) | Selected | Selected Path | Delivered Frame Rate | User satisfaction
1 | { sender } | { T1, T2, T3, T4, T5, T6, T7, T8, T9, T10 } | T10 | sender,T10 | 30 | 1.00
2 | { sender, T10 } | { T1, T2, T3, T4, T5, T6, T7, T8, T9, T19, T20, receiver } | T20 | sender,T10,T20 | 30 | 1.00
3 | { sender, T10, T20 } | { T1, T2, T3, T4, T5, T6, T7, T8, T9, T19, receiver } | T5 | sender,T5 | 27 | 0.90
4 | { sender, T10, T20, T5 } | { T1, T2, T3, T4, T6, T7, T8, T9, T19, T15, receiver } | T4 | sender,T4 | 27 | 0.90
5 | { sender, T10, T20, T5, T4 } | { T1, T2, T3, T6, T7, T8, T9, T19, T15, receiver } | T3 | sender,T3 | 23 | 0.76
6 | { sender, T10, T20, T5, T4, T3 } | { T1, T2, T6, T7, T8, T9, T19, T15, T14, receiver } | T2 | sender,T2 | 23 | 0.76
7 | { sender, T10, T20, T5, T4, T3, T2 } | { T1, T6, T7, T8, T9, T19, T15, T14, T12, T13, receiver } | T1 | sender,T1 | 23 | 0.76
8 | { sender, T10, T20, T5, T4, T3, T2, T1 } | { T6, T7, T8, T9, T19, T15, T14, T12, T13, T11, receiver } | T11 | sender,T1,T11 | 23 | 0.76
9 | { sender, T10, T20, T5, T4, T3, T2, T1, T11 } | { T6, T7, T8, T9, T19, T15, T14, T12, T13, receiver } | T13 | sender,T2,T13 | 23 | 0.76
10 | { sender, T10, T20, T5, T4, T3, T2, T1, T11, T13 } | { T6, T7, T8, T9, T19, T15, T14, T12, receiver } | T12 | sender,T2,T12 | 23 | 0.76
11 | { sender, T10, T20, T5, T4, T3, T2, T1, T11, T13, T12 } | { T6, T7, T8, T9, T19, T15, T14, receiver } | T14 | sender,T3,T14 | 23 | 0.76
12 | { sender, T10, T20, T5, T4, T3, T2, T1, T11, T13, T12, T14 } | { T6, T7, T8, T9, T19, T15, receiver } | T8 | sender,T8 | 20 | 0.66
13 | { sender, T10, T20, T5, T4, T3, T2, T1, T11, T13, T12, T14, T8 } | { T6, T7, T9, T19, T15, receiver } | T7 | sender,T7 | 20 | 0.66
14 | { sender, T10, T20, T5, T4, T3, T2, T1, T11, T13, T12, T14, T8, T7 } | { T6, T9, T19, T15, receiver } | T6 | sender,T6 | 20 | 0.66
15 | { sender, T10, T20, T5, T4, T3, T2, T1, T11, T13, T12, T14, T8, T7, T6 } | { T9, T19, T15, receiver } | receiver | sender,T7,receiver | 20 | 0.66
";

/// Per-round (selected, path, frame rate, satisfaction, accumulated
/// cost) with floats pinned to the exact values the algorithm produces.
#[rustfmt::skip]
const ROWS: &[(&str, &str, f64, f64, f64)] = &[
    ("T10",      "sender,T10",          30.0, 1.0,                 1.0),
    ("T20",      "sender,T10,T20",      30.0, 1.0,                 2.0),
    ("T5",       "sender,T5",           27.0, 0.9,                 1.0),
    ("T4",       "sender,T4",           27.0, 0.9,                 1.0),
    ("T3",       "sender,T3",           23.0, 0.766_666_666_666_666_7, 1.0),
    ("T2",       "sender,T2",           23.0, 0.766_666_666_666_666_7, 1.0),
    ("T1",       "sender,T1",           23.0, 0.766_666_666_666_666_7, 1.0),
    ("T11",      "sender,T1,T11",       23.0, 0.766_666_666_666_666_7, 2.0),
    ("T13",      "sender,T2,T13",       23.0, 0.766_666_666_666_666_7, 2.0),
    ("T12",      "sender,T2,T12",       23.0, 0.766_666_666_666_666_7, 2.0),
    ("T14",      "sender,T3,T14",       23.0, 0.766_666_666_666_666_7, 2.0),
    ("T8",       "sender,T8",           20.0, 0.666_666_666_666_666_6, 1.0),
    ("T7",       "sender,T7",           20.0, 0.666_666_666_666_666_6, 1.0),
    ("T6",       "sender,T6",           20.0, 0.666_666_666_666_666_6, 1.0),
    ("receiver", "sender,T7,receiver",  20.0, 0.666_666_666_666_666_6, 2.0),
];

#[test]
fn rendered_table_matches_snapshot() {
    let composition = paper::figure6_scenario(true)
        .compose(&SelectOptions::default())
        .unwrap();
    let rendered = composition.selection.trace.to_table1_string();
    assert_eq!(
        rendered, TABLE1_RENDERED,
        "rendered Table 1 drifted:\n--- got ---\n{rendered}\n--- want ---\n{TABLE1_RENDERED}"
    );
}

#[test]
fn rows_match_snapshot_bitwise() {
    let composition = paper::figure6_scenario(true)
        .compose(&SelectOptions::default())
        .unwrap();
    let rows = &composition.selection.trace.rows;
    assert_eq!(rows.len(), ROWS.len(), "round count drifted");
    for (i, (row, &(selected, path, fps, satisfaction, cost))) in rows.iter().zip(ROWS).enumerate()
    {
        let round = i + 1;
        assert_eq!(row.round, round, "round numbering");
        assert_eq!(row.selected, selected, "selection at round {round}");
        assert_eq!(row.selected_path.join(","), path, "path at round {round}");
        assert_eq!(
            row.params.get(Axis::FrameRate),
            Some(fps),
            "frame rate at round {round}"
        );
        assert_eq!(
            row.satisfaction.to_bits(),
            satisfaction.to_bits(),
            "satisfaction bits at round {round}: got {:?}, want {satisfaction:?}",
            row.satisfaction
        );
        assert_eq!(
            row.accumulated_cost.to_bits(),
            cost.to_bits(),
            "cost bits at round {round}: got {:?}, want {cost:?}",
            row.accumulated_cost
        );
        // Only the frame-rate axis carries a value in this scenario.
        assert_eq!(row.params.axes().count(), 1, "axis count at round {round}");
    }
}

#[test]
fn considered_and_candidate_sets_match_snapshot() {
    // The VT/CS columns are pinned through the rendered snapshot above;
    // this cross-checks the structural invariants the snapshot implies.
    let composition = paper::figure6_scenario(true)
        .compose(&SelectOptions::default())
        .unwrap();
    let rows = &composition.selection.trace.rows;
    assert_eq!(rows[0].considered, vec!["sender"]);
    assert_eq!(
        rows[0].candidates,
        vec!["T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10"]
    );
    let last = rows.last().unwrap();
    assert_eq!(last.candidates, vec!["T9", "T19", "T15", "receiver"]);
    assert_eq!(last.considered.len(), 15);
}
