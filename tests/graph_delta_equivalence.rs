//! Property: a [`GraphStore`] that survives arbitrary seeded registry
//! churn — quarantines, breaker releases, deregistrations and
//! re-registrations — always hands out a graph structurally identical
//! to a fresh `graph::build()`, and compositions through the store are
//! bitwise equal (chain, trace, plan) to store-free compositions.
//!
//! The store is created once per case and kept across the whole op
//! sequence so `graph_for` really exercises the delta path: each churn
//! op moves the registry epoch and the store must catch the cached
//! graph up in place (or rebuild past the threshold). Every op is
//! followed by two checks so the zero-delta reuse path runs too.

use proptest::prelude::*;
use qosc_core::{graphs_equivalent, GraphStore, SelectOptions};
use qosc_netsim::SimTime;
use qosc_services::{QuarantineConfig, ServiceId, TranscoderDescriptor};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::Scenario;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        2usize..=3, // layers
        2usize..=4, // services per layer
        2usize..=3, // formats per layer
        1usize..=2, // conversions per service
        proptest::bool::ANY,
    )
        .prop_map(|(layers, spl, fpl, cps, multi_axis)| GeneratorConfig {
            layers,
            services_per_layer: spl,
            formats_per_layer: fpl,
            conversions_per_service: cps,
            multi_axis,
            ..GeneratorConfig::default()
        })
}

/// One churn operation against the scenario's registry; the `u8`
/// payload picks the target service (mod the initial population).
#[derive(Debug, Clone, Copy)]
enum ChurnOp {
    /// `report_failure` with a threshold-1 breaker: quarantines at once.
    Quarantine(u8),
    /// `release_quarantines` far enough in the future to reopen all.
    Release,
    /// Permanent `deregister`.
    Deregister(u8),
    /// Re-register a clone of one of the original descriptors.
    Reinstate(u8),
    /// `report_success` — resets the failure streak, no availability
    /// change; the epoch must still move and the store must keep up.
    Success(u8),
}

fn arb_op() -> impl Strategy<Value = ChurnOp> {
    (0u8..5, 0u8..=255).prop_map(|(kind, pick)| match kind {
        0 => ChurnOp::Quarantine(pick),
        1 => ChurnOp::Release,
        2 => ChurnOp::Deregister(pick),
        3 => ChurnOp::Reinstate(pick),
        _ => ChurnOp::Success(pick),
    })
}

/// Compose the scenario with and without the store and require bitwise
/// agreement. `Debug` for `f64` renders the shortest round-trip
/// representation, so string equality here is bit equality.
fn check_equivalence(scenario: &Scenario, store: &GraphStore, options: &SelectOptions) {
    let fresh = scenario.compose(options);
    let stored = scenario.composer().compose_with_store(
        store,
        &scenario.profiles,
        scenario.sender_host,
        scenario.receiver_host,
        options,
    );
    match (fresh, stored) {
        (Ok(fresh), Ok(stored)) => {
            prop_assert!(
                graphs_equivalent(&fresh.graph, &stored.graph),
                "delta-maintained graph diverged from fresh build"
            );
            prop_assert_eq!(
                format!("{:?}", fresh.selection.chain),
                format!("{:?}", stored.selection.chain)
            );
            prop_assert_eq!(
                format!("{:?}", fresh.selection.trace.rows),
                format!("{:?}", stored.selection.trace.rows)
            );
            prop_assert_eq!(format!("{:?}", fresh.plan), format!("{:?}", stored.plan));
        }
        (fresh, stored) => {
            prop_assert_eq!(format!("{:?}", fresh.err()), format!("{:?}", stored.err()));
        }
    }
}

fn run_churn(mut scenario: Scenario, store: &GraphStore, ops: &[ChurnOp]) {
    scenario.services.set_quarantine_config(QuarantineConfig {
        failure_threshold: 1,
        cooldown_us: 1_000_000,
    });
    let initial: Vec<(ServiceId, TranscoderDescriptor)> = scenario
        .services
        .live_services()
        .map(|(id, descriptor)| (id, descriptor.clone()))
        .collect();
    let options = SelectOptions {
        record_trace: true,
        ..SelectOptions::default()
    };
    let mut now_us: u64 = 1_000;

    // Initial build through the store.
    check_equivalence(&scenario, store, &options);

    for &op in ops {
        now_us += 1_000;
        let pick = |payload: u8| initial[payload as usize % initial.len()].0;
        match op {
            ChurnOp::Quarantine(payload) => {
                let _ = scenario
                    .services
                    .report_failure(pick(payload), SimTime(now_us));
            }
            ChurnOp::Release => {
                // Jump past every possible cooldown so the release is
                // not a no-op (no-ops are legal, just less interesting).
                now_us += 2_000_000;
                scenario.services.release_quarantines(SimTime(now_us));
            }
            ChurnOp::Deregister(payload) => {
                let _ = scenario.services.deregister(pick(payload));
            }
            ChurnOp::Reinstate(payload) => {
                let descriptor = initial[payload as usize % initial.len()].1.clone();
                scenario
                    .services
                    .register(descriptor, SimTime(now_us), 3_600_000_000);
            }
            ChurnOp::Success(payload) => {
                let _ = scenario.services.report_success(pick(payload));
            }
        }
        // First check applies the delta; the second must see zero
        // pending events and reuse the graph untouched.
        check_equivalence(&scenario, store, &options);
        check_equivalence(&scenario, store, &options);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Delta-maintained graphs match fresh builds under arbitrary churn,
    /// with the store's own debug verification enabled as a second,
    /// structural witness.
    #[test]
    fn delta_maintained_graph_matches_fresh_build(
        (config, seed) in (arb_config(), 0u64..1_000),
        ops in proptest::collection::vec(arb_op(), 1..10),
    ) {
        let scenario = random_scenario(&config, seed);
        let store = GraphStore::new().with_verification(true);
        run_churn(scenario, &store, &ops);
        let stats = store.stats();
        prop_assert!(stats.rebuilds >= 1);
        // Every op is followed by two composes: the second sees an
        // unmoved epoch and must be a same-graph reuse, so the test is
        // guaranteed to exercise the reuse path, and the first must be
        // served by delta replay (small per-op tails) or a rebuild.
        prop_assert!(stats.reuses as usize >= ops.len());
        prop_assert_eq!(
            (stats.deltas + stats.rebuilds + stats.reuses) as usize,
            1 + 2 * ops.len()
        );
    }

    /// Same property with a delta threshold of zero, forcing the
    /// rebuild fallback on every mutation: both maintenance strategies
    /// must be externally indistinguishable.
    #[test]
    fn rebuild_fallback_matches_fresh_build(
        (config, seed) in (arb_config(), 0u64..1_000),
        ops in proptest::collection::vec(arb_op(), 1..6),
    ) {
        let scenario = random_scenario(&config, seed);
        let store = GraphStore::new().with_delta_threshold(0).with_verification(false);
        run_churn(scenario, &store, &ops);
    }
}
