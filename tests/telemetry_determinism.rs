//! Telemetry determinism: the flight recorder's merged log and the
//! metrics snapshot are pure functions of the seeds — independent of
//! worker count and of repetition — and attaching a recorder never
//! changes what the engine decides.

use qosc_core::{
    serve_batch_traced, serve_batch_with_admission, serve_batch_with_admission_traced,
    AdmissionConfig, CompositionRequest, EngineConfig, ResilientEngineConfig,
    ShardedCompositionCache,
};
use qosc_telemetry::{FlightRecorder, MetricsRegistry, NoopSink};
use qosc_workload::arrivals::{poisson_burst_arrivals, ArrivalPattern};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::Scenario;

const TOPOLOGY_SEED: u64 = 5;
const ARRIVAL_SEED: u64 = 42;

fn scenario() -> Scenario {
    random_scenario(
        &GeneratorConfig {
            services_per_layer: 5,
            multi_axis: true,
            ..GeneratorConfig::default()
        },
        TOPOLOGY_SEED,
    )
}

/// ~4× a 4-core virtual capacity for 300ms: admitted and shed chains.
fn overload_pattern() -> ArrivalPattern {
    ArrivalPattern {
        horizon_us: 300_000,
        rate_per_sec: 660,
        ..ArrivalPattern::default()
    }
}

fn engine_config(workers: usize) -> ResilientEngineConfig {
    ResilientEngineConfig {
        workers,
        admission: AdmissionConfig {
            virtual_cores: 4,
            initial_limit: 4,
            max_limit: 8,
            ..AdmissionConfig::protected()
        },
        ..ResilientEngineConfig::default()
    }
}

/// One instrumented overload + cache replay at `workers`. Returns the
/// merged overload log, the cache log (cold pass over per-request keys
/// then warm pass), and the Prometheus snapshot.
fn replay(workers: usize) -> (String, String, String) {
    let scenario = scenario();
    let composer = scenario.composer();
    let recorder = FlightRecorder::new(16);
    let arrivals = poisson_burst_arrivals(&overload_pattern(), ARRIVAL_SEED);
    let requests: Vec<CompositionRequest> = arrivals
        .iter()
        .map(|_| CompositionRequest {
            profiles: scenario.profiles.clone(),
            sender_host: scenario.sender_host,
            receiver_host: scenario.receiver_host,
        })
        .collect();
    let result = serve_batch_with_admission_traced(
        &composer,
        &requests,
        &arrivals,
        &engine_config(workers),
        &recorder,
    );

    let cache_recorder = FlightRecorder::new(16);
    let cache = ShardedCompositionCache::new(8);
    let cache_requests: Vec<CompositionRequest> = (0..12)
        .map(|i| {
            let mut profiles = scenario.profiles.clone();
            profiles.user.name = format!("viewer-{i}");
            CompositionRequest {
                profiles,
                sender_host: scenario.sender_host,
                receiver_host: scenario.receiver_host,
            }
        })
        .collect();
    let config = EngineConfig {
        workers,
        ..EngineConfig::default()
    };
    serve_batch_traced(&composer, &cache, &cache_requests, &config, &cache_recorder);
    serve_batch_traced(&composer, &cache, &cache_requests, &config, &cache_recorder);

    let registry = MetricsRegistry::new();
    result.batch.counters().record_metrics(&registry);
    cache.stats().record_metrics(&registry);
    cache.export_gauges(&registry);
    recorder.export_metrics(&registry);

    (
        recorder.render_log(),
        cache_recorder.render_log(),
        registry.to_prometheus_text(),
    )
}

#[test]
fn merged_log_and_metrics_identical_across_worker_counts() {
    let (log_1, cache_1, metrics_1) = replay(1);
    for workers in [2, 4, 8] {
        let (log_w, cache_w, metrics_w) = replay(workers);
        assert_eq!(log_1, log_w, "overload log differs at {workers} workers");
        assert_eq!(cache_1, cache_w, "cache log differs at {workers} workers");
        assert_eq!(
            metrics_1, metrics_w,
            "metrics snapshot differs at {workers} workers"
        );
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    let (log_a, cache_a, metrics_a) = replay(4);
    let (log_b, cache_b, metrics_b) = replay(4);
    assert_eq!(log_a, log_b);
    assert_eq!(cache_a, cache_b);
    assert_eq!(metrics_a, metrics_b);
}

/// Both passes of the warmed cache replay serve the same 12 keys, so
/// the second pass's probes are all hits — the merged log separates
/// them by `(virtual_time, request_id, seq)` even though both passes
/// share request ids.
#[test]
fn cache_log_counts_cold_and_warm_probes() {
    let (_, cache_log, _) = replay(2);
    let misses = cache_log.matches("cache_miss").count();
    let hits = cache_log.matches("cache_hit").count();
    assert_eq!(misses, 12, "first pass: one miss per distinct key");
    assert_eq!(hits, 12, "second pass: one hit per distinct key");
}

/// Attaching the recorder is observation, not intervention: the
/// uninstrumented run decides exactly the same admissions, plans and
/// scores, bit for bit.
#[test]
fn noop_run_is_bitwise_identical_to_instrumented_run() {
    let scenario = scenario();
    let composer = scenario.composer();
    let arrivals = poisson_burst_arrivals(&overload_pattern(), ARRIVAL_SEED);
    let requests: Vec<CompositionRequest> = arrivals
        .iter()
        .map(|_| CompositionRequest {
            profiles: scenario.profiles.clone(),
            sender_host: scenario.sender_host,
            receiver_host: scenario.receiver_host,
        })
        .collect();

    let recorder = FlightRecorder::new(16);
    let traced = serve_batch_with_admission_traced(
        &composer,
        &requests,
        &arrivals,
        &engine_config(4),
        &recorder,
    );
    let noop_sink = serve_batch_with_admission_traced(
        &composer,
        &requests,
        &arrivals,
        &engine_config(4),
        &NoopSink,
    );
    let untraced = serve_batch_with_admission(&composer, &requests, &arrivals, &engine_config(4));
    assert!(!recorder.is_empty(), "instrumented run recorded events");

    for reference in [&noop_sink, &untraced] {
        assert_eq!(traced.batch.counters(), reference.batch.counters());
        for (a, b) in traced.batch.outcomes.iter().zip(&reference.batch.outcomes) {
            assert_eq!(a.satisfaction.to_bits(), b.satisfaction.to_bits());
            assert_eq!(a.rung, b.rung);
            assert_eq!(a.plan.is_some(), b.plan.is_some());
        }
        for (a, b) in traced
            .admission
            .decisions
            .iter()
            .zip(&reference.admission.decisions)
        {
            assert_eq!(a.admitted, b.admitted);
            assert_eq!(a.queue_wait_us, b.queue_wait_us);
            assert_eq!(a.start_us, b.start_us);
        }
    }
}

/// Every span referenced by an event was opened: the log is a closed
/// causal graph, so `explain` can always re-build the tree.
#[test]
fn every_event_span_was_opened() {
    let scenario = scenario();
    let composer = scenario.composer();
    let recorder = FlightRecorder::new(16);
    let arrivals = poisson_burst_arrivals(&overload_pattern(), ARRIVAL_SEED);
    let requests: Vec<CompositionRequest> = arrivals
        .iter()
        .map(|_| CompositionRequest {
            profiles: scenario.profiles.clone(),
            sender_host: scenario.sender_host,
            receiver_host: scenario.receiver_host,
        })
        .collect();
    serve_batch_with_admission_traced(
        &composer,
        &requests,
        &arrivals,
        &engine_config(4),
        &recorder,
    );

    use std::collections::HashSet;
    let mut opened: HashSet<(u64, u32)> = HashSet::new();
    for event in recorder.merged() {
        if let qosc_telemetry::EventKind::SpanOpen { .. } = event.kind {
            opened.insert((event.request_id, event.span));
        } else {
            assert!(
                opened.contains(&(event.request_id, event.span)),
                "event {} references unopened span {} of request {}",
                event.kind.label(),
                event.span,
                event.request_id
            );
        }
    }
}
