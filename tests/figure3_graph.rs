//! E4 integration test: graph construction reproduces the structure of
//! the paper's Figure 3 from the profiles alone.

use qosc_core::graph::acyclic;
use qosc_core::SelectOptions;
use qosc_workload::paper;

#[test]
fn figure3_structure() {
    let scenario = paper::figure3_scenario();
    let composition = scenario.compose(&SelectOptions::default()).unwrap();
    let graph = &composition.graph;

    // One sender, seven intermediaries, one receiver.
    assert_eq!(graph.vertex_count(), 9);
    let sender = graph.sender().unwrap();
    let receiver = graph.receiver().unwrap();

    // "The sender node is connected to the trans-coding service T1 along
    //  the edge labeled F5."
    let t1 = graph.vertex_by_name("T1").unwrap();
    let f5 = scenario.formats.lookup("F5").unwrap();
    assert!(graph.out_edges(sender).iter().any(|&e| {
        let edge = graph.edge(e).unwrap();
        edge.to == t1 && edge.format == f5
    }));

    // T1 has two input formats and four output formats (Figure 2).
    let t1_vertex = graph.vertex(t1).unwrap();
    let mut inputs: Vec<_> = t1_vertex.conversions.iter().map(|c| c.input).collect();
    inputs.sort();
    inputs.dedup();
    assert_eq!(inputs.len(), 2);
    assert_eq!(t1_vertex.output_formats().len(), 4);

    // The receiver's input links are exactly its decoders.
    let decoders: Vec<_> = ["F14", "F15", "F16"]
        .iter()
        .map(|n| scenario.formats.lookup(n).unwrap())
        .collect();
    for &e in graph.in_edges(receiver) {
        let edge = graph.edge(e).unwrap();
        assert!(decoders.contains(&edge.format));
    }
    assert!(!graph.in_edges(receiver).is_empty());

    // Sender: only output links; receiver: only input links.
    assert!(graph.in_edges(sender).is_empty());
    assert!(graph.out_edges(receiver).is_empty());
}

#[test]
fn figure3_graph_is_acyclic_with_distinct_formats_on_paths() {
    let scenario = paper::figure3_scenario();
    let composition = scenario.compose(&SelectOptions::default()).unwrap();
    let graph = &composition.graph;
    assert!(!acyclic::has_cycle(graph), "Figure 3 is a DAG");
    assert!(acyclic::topological_order(graph).is_some());
}

#[test]
fn figure3_selection_reaches_receiver() {
    let scenario = paper::figure3_scenario();
    let composition = scenario.compose(&SelectOptions::default()).unwrap();
    let chain = composition.selection.chain.expect("receiver reachable");
    let names = chain.names();
    assert_eq!(names.first().copied(), Some("sender"));
    assert_eq!(names.last().copied(), Some("receiver"));
    assert!(
        chain.satisfaction > 0.9,
        "uncapped example delivers near-ideal quality"
    );
}

#[test]
fn figure3_prune_is_lossless_here() {
    // Figure 3 has no dead ends: pruning should keep everything that
    // selection uses and never change the outcome.
    let scenario = paper::figure3_scenario();
    let composition = scenario.compose(&SelectOptions::default()).unwrap();
    let (pruned, _) = qosc_core::graph::prune::prune(&composition.graph).unwrap();
    let profile = scenario.profiles.effective_satisfaction();
    let outcome = qosc_core::select_chain(
        &pruned,
        &scenario.formats,
        &profile,
        f64::INFINITY,
        &SelectOptions::default(),
    )
    .unwrap();
    let original = composition.selection.chain.unwrap();
    let after = outcome.chain.expect("still solvable after pruning");
    assert_eq!(original.satisfaction, after.satisfaction);
    assert_eq!(original.names(), after.names());
}
