//! Property: the degradation ladder only *relaxes*. Stepping down a
//! rung never shrinks the feasible set — a scenario that composes a
//! plan at rung `r` composes one at every rung below `r`, so the
//! brown-out can lower a request's starting rung without ever turning a
//! servable request into a failure.

use proptest::prelude::*;
use qosc_core::{degrade_profiles, DegradationRung, SelectOptions};
use qosc_workload::generator::{random_scenario, GeneratorConfig};

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        2usize..=3, // layers
        2usize..=5, // services per layer
        2usize..=3, // formats per layer
        1usize..=3, // conversions per service
        10_000f64..=80_000f64,
        proptest::bool::ANY,
    )
        .prop_map(|(layers, spl, fpl, cps, bw, multi_axis)| GeneratorConfig {
            layers,
            services_per_layer: spl,
            formats_per_layer: fpl,
            conversions_per_service: cps,
            bandwidth_range: (bw * 0.5, bw),
            multi_axis,
            ..GeneratorConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Feasible-set containment down the ladder: once any rung yields a
    /// plan, every later (more degraded) rung yields one too.
    #[test]
    fn feasibility_is_monotone_down_the_ladder((config, seed) in (arb_config(), 0u64..1_000)) {
        let scenario = random_scenario(&config, seed);
        let composer = scenario.composer();
        let options = SelectOptions::default();
        let mut feasible_above = false;
        for rung in DegradationRung::LADDER {
            let profiles = degrade_profiles(&scenario.profiles, rung);
            let solvable = composer
                .compose(&profiles, scenario.sender_host, scenario.receiver_host, &options)
                .map(|composition| composition.plan.is_some())
                .unwrap_or(false);
            prop_assert!(
                !feasible_above || solvable,
                "rung {} lost a plan a better rung served (seed {})",
                rung,
                seed
            );
            feasible_above = feasible_above || solvable;
        }
    }

    /// `degrade_profiles` at `Full` is the identity on the satisfaction
    /// machinery: the composed outcome matches the raw request bitwise.
    #[test]
    fn full_rung_is_identity((config, seed) in (arb_config(), 0u64..1_000)) {
        let scenario = random_scenario(&config, seed);
        let composer = scenario.composer();
        let options = SelectOptions::default();
        let raw = composer.compose(
            &scenario.profiles,
            scenario.sender_host,
            scenario.receiver_host,
            &options,
        );
        let full = composer.compose(
            &degrade_profiles(&scenario.profiles, DegradationRung::Full),
            scenario.sender_host,
            scenario.receiver_host,
            &options,
        );
        match (raw, full) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.plan.is_some(), b.plan.is_some());
                if let (Some(pa), Some(pb)) = (&a.plan, &b.plan) {
                    prop_assert_eq!(&pa.steps, &pb.steps);
                    prop_assert_eq!(
                        pa.predicted_satisfaction.to_bits(),
                        pb.predicted_satisfaction.to_bits()
                    );
                }
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "Full rung changed solvability (seed {})", seed),
        }
    }
}
