//! Lease-boundary semantics the chaos harness leans on.
//!
//! The chaos generator schedules lease-expiry storms against exact
//! `SimTime` instants, so the off-by-one behaviour of `expire_leases`
//! must be pinned: a lease is *live at exactly* `lease_until` (expiry
//! uses strict `<`), renewing an expired advertisement errs (forcing
//! re-registration through `DiscoveryDriver::tick`), and a
//! crash→tick→revive round-trip restores advertisement.

use qosc_media::{DomainVector, FormatRegistry, MediaKind};
use qosc_netsim::{Node, SimTime, Topology};
use qosc_profiles::{ConversionSpec, ServiceSpec};
use qosc_services::{
    DiscoveryConfig, DiscoveryDriver, RegistryEvent, ServiceRegistry, TranscoderDescriptor,
};

fn descriptor(formats: &mut FormatRegistry) -> TranscoderDescriptor {
    formats.register_abstract("in", MediaKind::Video);
    formats.register_abstract("out", MediaKind::Video);
    let mut topo = Topology::new();
    let host = topo.add_node(Node::unconstrained("host"));
    let spec = ServiceSpec::new(
        "svc",
        vec![ConversionSpec::new("in", "out", DomainVector::new())],
    );
    TranscoderDescriptor::resolve(&spec, formats, host).unwrap()
}

#[test]
fn lease_is_live_at_exactly_lease_until() {
    let mut formats = FormatRegistry::new();
    let mut registry = ServiceRegistry::new();
    let id = registry.register(descriptor(&mut formats), SimTime::ZERO, 1_000);
    // `expire_leases` uses strict `<`: the advertisement survives a
    // sweep at exactly lease_until…
    assert!(registry.expire_leases(SimTime(1_000)).is_empty());
    assert!(registry.is_live(id));
    // …and dies one microsecond later.
    assert_eq!(registry.expire_leases(SimTime(1_001)), vec![id]);
    assert!(!registry.is_live(id));
}

#[test]
fn renewing_an_expired_advertisement_errs() {
    let mut formats = FormatRegistry::new();
    let mut registry = ServiceRegistry::new();
    let id = registry.register(descriptor(&mut formats), SimTime::ZERO, 1_000);
    registry.expire_leases(SimTime(5_000));
    assert!(
        registry.renew(id, SimTime(5_000), 1_000).is_err(),
        "an expired advertisement cannot be renewed — members must re-register"
    );
    // The failed renewal leaves no spurious event behind.
    assert_eq!(
        registry.events(),
        &[RegistryEvent::Registered(id), RegistryEvent::Expired(id)]
    );
}

#[test]
fn renewal_at_exactly_lease_until_succeeds() {
    let mut formats = FormatRegistry::new();
    let mut registry = ServiceRegistry::new();
    let id = registry.register(descriptor(&mut formats), SimTime::ZERO, 1_000);
    // The advertisement is still live at its boundary, so a renewal
    // issued exactly then extends it without churn.
    registry.renew(id, SimTime(1_000), 1_000).unwrap();
    assert!(registry.expire_leases(SimTime(2_000)).is_empty());
    assert!(registry.is_live(id));
}

#[test]
fn crash_tick_revive_round_trip_restores_advertisement() {
    let mut formats = FormatRegistry::new();
    let mut registry = ServiceRegistry::new();
    let mut driver = DiscoveryDriver::new(DiscoveryConfig {
        ttl: SimTime::from_secs(5),
    });
    let member = driver.join(&mut registry, descriptor(&mut formats), SimTime::ZERO);
    assert!(driver.is_advertised(&registry, member));

    // Crash: the member silently stops renewing. Inside the staleness
    // window the stale advertisement is still visible.
    driver.crash(member);
    driver.tick(&mut registry, SimTime::from_secs(4));
    assert!(driver.is_advertised(&registry, member));

    // After TTL the lease expires with no coordination.
    let expired = driver.tick(&mut registry, SimTime::from_secs(6));
    assert_eq!(expired, 1);
    assert!(!driver.is_advertised(&registry, member));
    assert_eq!(registry.live_count(), 0);

    // Revive: the member re-registers under a fresh ServiceId and keeps
    // renewing on subsequent ticks.
    driver
        .revive(&mut registry, member, SimTime::from_secs(7))
        .unwrap();
    assert!(driver.is_advertised(&registry, member));
    for t in 8..=30 {
        driver.tick(&mut registry, SimTime::from_secs(t));
        assert!(driver.is_advertised(&registry, member), "t = {t}");
    }
    assert_eq!(registry.live_count(), 1);
}
