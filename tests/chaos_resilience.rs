//! Chaos-harness integration: the full loop from deterministic fault
//! generation through resilient streaming, the degradation ladder, and
//! the service quarantine — the workspace-level counterparts of the
//! `chaos.rs` / `resilience.rs` / `registry.rs` unit tests.

use qosc_core::{Composer, SelectOptions, ShardedCompositionCache};
use qosc_media::Axis;
use qosc_netsim::SimTime;
use qosc_pipeline::{run_resilient, ChaosModel, ChaosPlan, ResilienceConfig, ResilientRun};
use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
use qosc_services::QuarantineConfig;
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::Scenario;

const TOPOLOGY_SEED: u64 = 5;

/// The scorecard scenario: the generated mesh with a strict 12 fps
/// floor on top (mirrors `resilience_matrix`).
fn strict_scenario() -> Scenario {
    let config = GeneratorConfig {
        services_per_layer: 5,
        multi_axis: true,
        ..GeneratorConfig::default()
    };
    let mut scenario = random_scenario(&config, TOPOLOGY_SEED);
    scenario.profiles.user.satisfaction = SatisfactionProfile::new()
        .with(AxisPreference::weighted(
            Axis::FrameRate,
            SatisfactionFn::Linear {
                min_acceptable: 12.0,
                ideal: 30.0,
            },
            3.0,
        ))
        .with(AxisPreference::weighted(
            Axis::PixelCount,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 307_200.0,
            },
            1.0,
        ));
    scenario
}

fn chaos_plan(scenario: &Scenario, chaos_seed: u64, intensity: f64) -> ChaosPlan {
    let topology = scenario.network.topology();
    let backbone = topology.node_by_name("backbone").unwrap();
    let model = ChaosModel {
        protect: vec![scenario.sender_host, scenario.receiver_host, backbone],
        ..ChaosModel::default()
    };
    ChaosPlan::generate(topology, 0, &model, chaos_seed, intensity)
}

fn chaos_run(chaos_seed: u64, intensity: f64, ladder: bool) -> ResilientRun {
    let mut scenario = strict_scenario();
    let plan = chaos_plan(&scenario, chaos_seed, intensity);
    let config = ResilienceConfig {
        ladder,
        seed: chaos_seed,
        ..ResilienceConfig::default()
    };
    run_resilient(
        &scenario.formats,
        &scenario.services,
        &mut scenario.network,
        &scenario.profiles,
        scenario.sender_host,
        scenario.receiver_host,
        plan.schedule(),
        &config,
    )
    .unwrap()
}

#[test]
fn identical_seeds_reproduce_the_run_and_a_new_chaos_seed_changes_the_faults() {
    let a = chaos_run(101, 0.75, true);
    let b = chaos_run(101, 0.75, true);
    assert_eq!(a.availability(), b.availability());
    assert_eq!(a.mean_satisfaction, b.mean_satisfaction);
    assert_eq!(a.recompositions, b.recompositions);
    assert_eq!(a.segments.len(), b.segments.len());
    for (x, y) in a.segments.iter().zip(&b.segments) {
        assert_eq!(x.chain, y.chain);
        assert_eq!(x.rung, y.rung);
        assert_eq!(x.report.frames_delivered, y.report.frames_delivered);
    }

    let scenario = strict_scenario();
    let p1 = chaos_plan(&scenario, 101, 0.75);
    let p2 = chaos_plan(&scenario, 102, 0.75);
    assert_ne!(
        p1.schedule().events(),
        p2.schedule().events(),
        "a different chaos seed draws a different fault sequence"
    );
}

#[test]
fn degradation_ladder_dominates_recompose_only_availability() {
    let seeds = [101u64, 202, 303];
    for &intensity in &[0.25f64, 1.0] {
        let recompose: f64 = seeds
            .iter()
            .map(|&s| chaos_run(s, intensity, false).availability())
            .sum::<f64>()
            / seeds.len() as f64;
        let ladder: f64 = seeds
            .iter()
            .map(|&s| chaos_run(s, intensity, true).availability())
            .sum::<f64>()
            / seeds.len() as f64;
        assert!(
            ladder >= recompose,
            "intensity {intensity}: ladder {ladder:.3} < recompose {recompose:.3}"
        );
        if intensity == 1.0 {
            assert!(
                ladder > recompose,
                "at the highest intensity the ladder must win outright \
                 (ladder {ladder:.3}, recompose {recompose:.3})"
            );
        }
    }
}

#[test]
fn ladder_runs_report_the_serving_rung() {
    // At full intensity the ladder serves part of the run degraded; the
    // segments say which rung carried them.
    let run = chaos_run(202, 1.0, true);
    let degraded: Vec<_> = run
        .segments
        .iter()
        .filter(|s| {
            s.rung
                .map(|r| r > qosc_core::DegradationRung::Full)
                .unwrap_or(false)
        })
        .collect();
    assert!(
        !degraded.is_empty(),
        "chaos seed 202 at intensity 1.0 pushes the stream below the floor"
    );
    for segment in &degraded {
        assert!(!segment.chain.is_empty(), "degraded segments still stream");
        assert!(
            segment.predicted > 0.0,
            "rung-scored prediction is above zero"
        );
    }
    // And the degraded stream is exactly what the recompose-only run
    // loses: same seed without the ladder has strictly less lit time.
    let strict = chaos_run(202, 1.0, false);
    assert!(run.availability() > strict.availability());
}

#[test]
fn quarantine_reroutes_composition_and_lifts_after_cooldown() {
    // Two parallel proxies; the better one gets quarantined after
    // repeated failure reports, composition falls back to the other,
    // and the breaker re-admits the service after its cool-down.
    use qosc_media::{AxisDomain, DomainVector, FormatRegistry, MediaKind, VariantSpec};
    use qosc_netsim::{Network, Node, Topology};
    use qosc_profiles::{
        ContentProfile, ContextProfile, ConversionSpec, DeviceProfile, HardwareCaps,
        NetworkProfile, ProfileSet, ServiceSpec, UserProfile,
    };
    use qosc_services::{ServiceRegistry, TranscoderDescriptor};

    let mut formats = FormatRegistry::new();
    let linear = qosc_media::BitrateModel::LinearOnAxis {
        axis: Axis::FrameRate,
        slope: 1000.0,
    };
    formats.register(qosc_media::FormatSpec::new("A", MediaKind::Video, linear));
    formats.register(qosc_media::FormatSpec::new("B", MediaKind::Video, linear));

    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let fast = topo.add_node(Node::unconstrained("fast-proxy"));
    let slow = topo.add_node(Node::unconstrained("slow-proxy"));
    let client = topo.add_node(Node::unconstrained("client"));
    topo.connect_simple(server, fast, 100e6).unwrap();
    topo.connect_simple(fast, client, 30_000.0).unwrap();
    topo.connect_simple(server, slow, 100e6).unwrap();
    topo.connect_simple(slow, client, 18_000.0).unwrap();
    let network = Network::new(topo);

    let domain = DomainVector::new().with(
        Axis::FrameRate,
        AxisDomain::Continuous {
            min: 0.0,
            max: 30.0,
        },
    );
    let mut services = ServiceRegistry::new();
    services.set_quarantine_config(QuarantineConfig {
        failure_threshold: 3,
        cooldown_us: 5_000_000,
    });
    let t_fast = services.register_static(
        TranscoderDescriptor::resolve(
            &ServiceSpec::new(
                "T-fast",
                vec![ConversionSpec::new("A", "B", domain.clone())],
            ),
            &formats,
            fast,
        )
        .unwrap(),
    );
    services.register_static(
        TranscoderDescriptor::resolve(
            &ServiceSpec::new(
                "T-slow",
                vec![ConversionSpec::new("A", "B", domain.clone())],
            ),
            &formats,
            slow,
        )
        .unwrap(),
    );

    let profiles = ProfileSet {
        user: UserProfile::new(
            "viewer",
            SatisfactionProfile::new().with(AxisPreference::new(
                Axis::FrameRate,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 30.0,
                },
            )),
        ),
        content: ContentProfile::new(
            "clip",
            vec![VariantSpec {
                format: "A".to_string(),
                offered: domain.clone(),
            }],
        ),
        device: DeviceProfile::new("dev", vec!["B".to_string()], HardwareCaps::desktop()),
        context: ContextProfile::default(),
        network: NetworkProfile::lan(),
    };
    let options = SelectOptions::default();
    let cache = ShardedCompositionCache::default();

    let chain_of = |services: &ServiceRegistry| -> Vec<String> {
        let composer = Composer {
            formats: &formats,
            services,
            network: &network,
        };
        cache
            .compose(&composer, &profiles, server, client, &options)
            .unwrap()
            .map(|plan| plan.steps.iter().map(|s| s.name.clone()).collect())
            .unwrap_or_default()
    };

    // Healthy: the 30 kbit/s fast proxy wins.
    assert!(chain_of(&services).contains(&"T-fast".to_string()));

    // Three failure reports open the breaker; the cached plan fails
    // revalidation (its service is no longer available) and the next
    // composition routes around the quarantined proxy.
    let now = SimTime::from_secs(10);
    for _ in 0..2 {
        assert!(!services.report_failure(t_fast, now).unwrap());
    }
    assert!(services.report_failure(t_fast, now).unwrap());
    assert!(services.is_quarantined(t_fast));
    assert!(chain_of(&services).contains(&"T-slow".to_string()));

    // Cool-down elapses: the breaker re-admits the service. The cached
    // T-slow plan is *valid* (its own service never left), so the cache
    // correctly keeps serving it — but a fresh composition sees the
    // reinstated fast proxy again.
    let released = services.release_quarantines(SimTime::from_secs(16));
    assert_eq!(released, vec![t_fast]);
    assert!(chain_of(&services).contains(&"T-slow".to_string()));
    let composer = Composer {
        formats: &formats,
        services: &services,
        network: &network,
    };
    let fresh = composer
        .compose(&profiles, server, client, &options)
        .unwrap()
        .plan
        .unwrap();
    assert!(fresh.steps.iter().any(|s| s.name == "T-fast"));
}
