//! Parallel candidate evaluation must be invisible in the results: with
//! `parallel_expand` the Step-2/Step-8 `Optimize()` calls run on a
//! scoped thread pool, but the settle order, the round count, the
//! optimization count and every trace row must be **bitwise** identical
//! to the sequential mode.

use qosc_core::select::CandidateStore;
use qosc_core::{Composition, SelectOptions, TieBreak};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::paper;

/// Compare two compositions of the same scenario field-for-field, with
/// floats compared by bit pattern (not tolerance).
fn assert_bitwise_equal(sequential: &Composition, parallel: &Composition, context: &str) {
    let s = &sequential.selection;
    let p = &parallel.selection;
    assert_eq!(s.rounds, p.rounds, "{context}: round count");
    assert_eq!(
        s.optimizations, p.optimizations,
        "{context}: optimization count"
    );
    assert_eq!(s.failure, p.failure, "{context}: failure");
    assert_eq!(
        s.trace.rows.len(),
        p.trace.rows.len(),
        "{context}: trace length"
    );
    for (i, (a, b)) in s.trace.rows.iter().zip(&p.trace.rows).enumerate() {
        assert_eq!(
            a.considered,
            b.considered,
            "{context}: VT at round {}",
            i + 1
        );
        assert_eq!(
            a.candidates,
            b.candidates,
            "{context}: CS at round {}",
            i + 1
        );
        assert_eq!(
            a.selected,
            b.selected,
            "{context}: selection at round {}",
            i + 1
        );
        assert_eq!(
            a.selected_path,
            b.selected_path,
            "{context}: path at round {}",
            i + 1
        );
        assert_eq!(
            a.satisfaction.to_bits(),
            b.satisfaction.to_bits(),
            "{context}: satisfaction bits at round {}",
            i + 1
        );
        assert_eq!(
            a.accumulated_cost.to_bits(),
            b.accumulated_cost.to_bits(),
            "{context}: cost bits at round {}",
            i + 1
        );
        assert_eq!(a, b, "{context}: full row at round {}", i + 1);
    }
    match (&s.chain, &p.chain) {
        (Some(a), Some(b)) => {
            assert_eq!(a.names(), b.names(), "{context}: chain");
            assert_eq!(
                a.satisfaction.to_bits(),
                b.satisfaction.to_bits(),
                "{context}: chain satisfaction bits"
            );
        }
        (None, None) => {}
        _ => panic!("{context}: one mode found a chain, the other did not"),
    }
    assert_eq!(sequential.plan, parallel.plan, "{context}: plan");
}

#[test]
fn paper_scenario_trace_is_bitwise_identical() {
    for candidate_store in [CandidateStore::BinaryHeap, CandidateStore::LinearScan] {
        let sequential = paper::figure6_scenario(true)
            .compose(&SelectOptions {
                candidate_store,
                ..SelectOptions::default()
            })
            .unwrap();
        let parallel = paper::figure6_scenario(true)
            .compose(&SelectOptions {
                candidate_store,
                parallel_expand: true,
                ..SelectOptions::default()
            })
            .unwrap();
        assert_bitwise_equal(&sequential, &parallel, &format!("{candidate_store:?}"));
    }
}

#[test]
fn parallel_mode_still_reproduces_table1() {
    let options = SelectOptions {
        parallel_expand: true,
        ..SelectOptions::default()
    };
    let composition = paper::figure6_scenario(true).compose(&options).unwrap();
    if let Some(mismatch) = paper::verify_table1(&composition.selection.trace) {
        panic!("Table 1 diverged under parallel_expand: {mismatch}");
    }
    assert_eq!(composition.selection.rounds, 15);
}

#[test]
fn random_scenarios_are_bitwise_identical() {
    let config = GeneratorConfig {
        layers: 3,
        services_per_layer: 4,
        formats_per_layer: 2,
        ..GeneratorConfig::default()
    };
    for seed in 0..8u64 {
        for tie_break in [
            TieBreak::PaperOrder,
            TieBreak::Fifo,
            TieBreak::ByVertexIndex,
        ] {
            let sequential = random_scenario(&config, seed)
                .compose(&SelectOptions {
                    tie_break,
                    ..SelectOptions::default()
                })
                .unwrap();
            let parallel = random_scenario(&config, seed)
                .compose(&SelectOptions {
                    tie_break,
                    parallel_expand: true,
                    ..SelectOptions::default()
                })
                .unwrap();
            assert_bitwise_equal(
                &sequential,
                &parallel,
                &format!("seed {seed} {tie_break:?}"),
            );
        }
    }
}
