//! The `PSMAbrAlgorithm.tla` safety invariants, ported as property
//! tests over the pure controller units:
//!
//! * **BufferBounds** — the playout buffer level never leaves
//!   `[0, capacity]`, and every advance partitions its interval into
//!   played + stalled time exactly,
//! * **SwitchRateBound** — the controller commits at most one switch
//!   per dwell window: over any run, `switches ≤ 1 + elapsed / dwell`,
//! * **NoOscillation** — a committed switch away from rung A is never
//!   reversed back to A within two dwell windows (no A→B→A flap).
//!
//! The same bounds are asserted end to end by the `abr_controller`
//! scorecard; here they are driven adversarially with arbitrary fill
//! rates, tick spacings, and buffer trajectories.

use proptest::prelude::*;
use qosc_core::{AbrConfig, BolaController, DegradationRung, PlayoutBuffer};

/// One adversarial step: advance virtual time by `dt_us` at `fill_ppm`
/// delivered throughput, then let the controller decide.
#[derive(Debug, Clone)]
struct Step {
    dt_us: u64,
    fill_ppm: u64,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (1u64..3_000_000, 0u64..4_000_000).prop_map(|(dt_us, fill_ppm)| Step { dt_us, fill_ppm }),
        1..120,
    )
}

fn config() -> AbrConfig {
    AbrConfig::default()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// BufferBounds: `0 ≤ level ≤ capacity` after every advance, and
    /// the advance partitions its interval (`played + stalled == dt`).
    /// Stall time only accrues against an exhausted buffer.
    #[test]
    fn buffer_level_stays_within_bounds(trace in steps(), start_us in 0u64..=4_000_000) {
        let config = config();
        let mut buffer = PlayoutBuffer::new(
            start_us.min(config.buffer_capacity_us),
            config.buffer_capacity_us,
        );
        for step in &trace {
            let before = buffer.level_us();
            let adv = buffer.advance(step.dt_us, step.fill_ppm);
            prop_assert!(buffer.level_us() <= config.buffer_capacity_us);
            prop_assert_eq!(
                adv.played_us + adv.stalled_us,
                step.dt_us,
                "the interval must partition into played + stalled"
            );
            prop_assert_eq!(
                buffer.level_us() + buffer.headroom_us(),
                config.buffer_capacity_us,
                "headroom complements the level"
            );
            if adv.stalled_us > 0 {
                // A stall means playback exhausted everything available.
                let arrived = (step.dt_us as u128 * step.fill_ppm as u128) / 1_000_000;
                prop_assert!(
                    (before as u128) + arrived < step.dt_us as u128,
                    "stalled {} although {} buffered + {} arrived covered the {}us interval",
                    adv.stalled_us, before, arrived, step.dt_us
                );
            }
            if adv.entered_stall {
                prop_assert!(adv.stalled_us > 0, "entered a stall without stalling");
            }
        }
    }

    /// SwitchRateBound: driving the controller over an arbitrary buffer
    /// trajectory, committed switches never exceed `1 + elapsed/dwell`,
    /// and consecutive commits are at least one dwell window apart.
    #[test]
    fn switch_rate_respects_the_dwell_window(trace in steps()) {
        let config = config();
        let mut buffer = PlayoutBuffer::new(config.startup_buffer_us, config.buffer_capacity_us);
        let mut controller = BolaController::new();
        let mut current = DegradationRung::Full;
        let mut now_us = 0u64;
        let mut commits: Vec<u64> = Vec::new();
        for step in &trace {
            now_us += step.dt_us;
            buffer.advance(step.dt_us, step.fill_ppm);
            if let Some(target) = controller.decide(now_us, current, &config, &buffer) {
                controller.committed(now_us, current);
                current = target;
                commits.push(now_us);
            }
        }
        let bound = 1 + now_us / config.switch_dwell_us.max(1);
        prop_assert!(
            (commits.len() as u64) <= bound,
            "{} switches over {}us exceeds the dwell bound {}",
            commits.len(), now_us, bound
        );
        for pair in commits.windows(2) {
            prop_assert!(
                pair[1] - pair[0] >= config.switch_dwell_us,
                "commits at {} and {} violate the dwell window",
                pair[0], pair[1]
            );
        }
    }

    /// NoOscillation: the controller never returns to the rung a
    /// committed switch left within two dwell windows of leaving it.
    #[test]
    fn no_a_b_a_flap_within_two_dwell_windows(trace in steps()) {
        let config = config();
        let mut buffer = PlayoutBuffer::new(config.startup_buffer_us, config.buffer_capacity_us);
        let mut controller = BolaController::new();
        let mut current = DegradationRung::Full;
        let mut now_us = 0u64;
        // (time, from, to) per committed switch.
        let mut transitions: Vec<(u64, DegradationRung, DegradationRung)> = Vec::new();
        for step in &trace {
            now_us += step.dt_us;
            buffer.advance(step.dt_us, step.fill_ppm);
            if let Some(target) = controller.decide(now_us, current, &config, &buffer) {
                controller.committed(now_us, current);
                transitions.push((now_us, current, target));
                current = target;
            }
        }
        let guard = config.switch_dwell_us.saturating_mul(2);
        for pair in transitions.windows(2) {
            let (left_at, from, _) = pair[0];
            let (back_at, _, to) = pair[1];
            if back_at - left_at < guard {
                prop_assert!(
                    to != from,
                    "left rung {from:?} at {left_at} and flapped straight back at {back_at} \
                     (guard {guard}us)"
                );
            }
        }
    }
}
