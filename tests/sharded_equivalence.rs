//! Property: two-level sharded composition is **bitwise identical** to
//! the flat Figure-4 path under arbitrary seeded registry churn —
//! register, deregister, quarantine/release, probation/probe — at every
//! shard count in {1, 2, 4, 8}.
//!
//! Identity is checked at three levels:
//!
//! * **plans** — always byte-equal (`Debug` for `f64` renders the
//!   shortest round-trip form, so string equality is bit equality);
//!   plans reference [`ServiceId`]s, which are scope-independent,
//! * **traces and tie-breaks** — byte-equal whenever the coordinator
//!   fell back to full expansion (the only case where the selection
//!   runs on the same unscoped graph as the flat path; scoped runs
//!   legitimately renumber vertices while producing the same plan),
//! * **summary frontiers** — the incrementally maintained per-shard
//!   frontier must equal a recompute-from-scratch after every op, and
//!   per-shard epochs must always sum to the flat epoch.
//!
//! Cluster caps cycle through a 5-value set, so worlds with more than
//! five clusters contain *cross-cluster satisfaction ties*: the
//! admissible bound cannot prune the tied shard (the check is strict),
//! forcing multi-round expansions where tie-breaking on the scoped
//! graph must still match the flat paper-order.

use proptest::prelude::*;
use qosc_core::{Composer, GraphStore, SelectOptions, ShardedComposer};
use qosc_media::{
    Axis, AxisDomain, BitrateModel, DomainVector, FormatId, FormatRegistry, FormatSpec, MediaKind,
    VariantSpec,
};
use qosc_netsim::{Link, Network, Node, NodeId, SimTime, Topology};
use qosc_profiles::{
    ContentProfile, ContextProfile, DeviceProfile, HardwareCaps, NetworkProfile, PriceModel,
    ProfileSet, UserProfile,
};
use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
use qosc_services::{
    Conversion, QuarantineConfig, ServiceId, ShardedServiceRegistry, TranscoderDescriptor,
};

const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// Per-cluster frame-rate cap: cycles, so ≥ 6 clusters guarantee ties.
fn cluster_cap(cluster: usize) -> f64 {
    [30.0, 25.0, 20.0, 15.0, 10.0][cluster % 5]
}

struct World {
    formats: FormatRegistry,
    network: Network,
    profiles: ProfileSet,
    sender: NodeId,
    receiver: NodeId,
    proxy: NodeId,
    src: Vec<FormatId>,
    mid: Vec<FormatId>,
    dst: FormatId,
}

fn fps_domain(cap: f64) -> DomainVector {
    DomainVector::new().with(
        Axis::FrameRate,
        AxisDomain::Continuous { min: 0.0, max: cap },
    )
}

fn world(clusters: usize) -> World {
    let mut formats = FormatRegistry::new();
    let bitrate = BitrateModel::LinearOnAxis {
        axis: Axis::FrameRate,
        slope: 1000.0,
    };
    let src: Vec<FormatId> = (0..2)
        .map(|g| {
            formats.register(FormatSpec::new(
                format!("src{g}"),
                MediaKind::Video,
                bitrate,
            ))
        })
        .collect();
    let mid: Vec<FormatId> = (0..clusters)
        .map(|c| {
            formats.register(FormatSpec::new(
                format!("mid{c}"),
                MediaKind::Video,
                bitrate,
            ))
        })
        .collect();
    let dst = formats.register(FormatSpec::new("dst", MediaKind::Video, bitrate));

    let mut topo = Topology::new();
    let sender = topo.add_node(Node::unconstrained("host-sender"));
    let proxy = topo.add_node(Node::unconstrained("host-proxy"));
    let receiver = topo.add_node(Node::unconstrained("host-receiver"));
    for (a, b) in [(sender, proxy), (proxy, receiver)] {
        topo.connect(Link {
            a,
            b,
            capacity_bps: 1e9,
            delay_us: 1_000,
            loss: 0.0,
            price_per_mbit: 0.0,
            price_flat: 1.0,
        })
        .expect("static links are valid");
    }
    let network = Network::new(topo);

    let content = ContentProfile::new(
        "clip",
        src.iter()
            .map(|&f| VariantSpec {
                format: formats.name(f).to_string(),
                offered: fps_domain(30.0),
            })
            .collect(),
    );
    let device = DeviceProfile::new(
        "screen",
        vec![formats.name(dst).to_string()],
        HardwareCaps::desktop(),
    );
    let satisfaction = SatisfactionProfile::new().with(AxisPreference::new(
        Axis::FrameRate,
        SatisfactionFn::Linear {
            min_acceptable: 0.0,
            ideal: 30.0,
        },
    ));
    let profiles = ProfileSet {
        user: UserProfile::new("user", satisfaction),
        content,
        device,
        context: ContextProfile::default(),
        network: NetworkProfile::lan(),
    };
    World {
        formats,
        network,
        profiles,
        sender,
        receiver,
        proxy,
        src,
        mid,
        dst,
    }
}

/// A head (`src{c%2} → mid{c}`) or tail (`mid{c} → dst`) transcoder.
fn descriptor(world: &World, cluster: usize, head: bool, name: String) -> TranscoderDescriptor {
    let (input, output) = if head {
        (world.src[cluster % world.src.len()], world.mid[cluster])
    } else {
        (world.mid[cluster], world.dst)
    };
    TranscoderDescriptor {
        name,
        host: world.proxy,
        conversions: vec![Conversion {
            input,
            output,
            output_domain: fps_domain(cluster_cap(cluster)),
        }],
        cpu_mips_per_mbps: 0.0,
        memory_bytes: 0.0,
        price: PriceModel {
            per_second: 0.0,
            per_mbit: 0.0,
        },
    }
}

/// Identically populated registries, one per shard count.
fn build_registries(
    world: &World,
    clusters: usize,
    heads: usize,
    tails: usize,
) -> Vec<ShardedServiceRegistry> {
    SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let mut services = ShardedServiceRegistry::new(shards);
            services.set_quarantine_config(QuarantineConfig {
                failure_threshold: 1,
                cooldown_us: 1_000_000,
            });
            for c in 0..clusters {
                for k in 0..heads {
                    services.register_static(descriptor(world, c, true, format!("h{c}.{k}")));
                }
                for k in 0..tails {
                    services.register_static(descriptor(world, c, false, format!("t{c}.{k}")));
                }
            }
            services
        })
        .collect()
}

#[derive(Debug, Clone, Copy)]
enum ChurnOp {
    /// Register a fresh head/tail in some cluster.
    Register { pick: u8, head: bool },
    /// Permanent deregister of a live service.
    Deregister(u8),
    /// `report_failure` with a threshold-1 breaker: quarantines at once.
    Quarantine(u8),
    /// `release_quarantines` past every cooldown.
    Release,
    /// Put a live service on probation (observed QoS far below SLA).
    Probate(u8),
    /// One successful probe for a probationary service.
    ProbeSuccess(u8),
}

fn arb_op() -> impl Strategy<Value = ChurnOp> {
    (0u8..6, 0u8..=255, proptest::bool::ANY).prop_map(|(kind, pick, head)| match kind {
        0 => ChurnOp::Register { pick, head },
        1 => ChurnOp::Deregister(pick),
        2 => ChurnOp::Quarantine(pick),
        3 => ChurnOp::Release,
        4 => ChurnOp::Probate(pick),
        _ => ChurnOp::ProbeSuccess(pick),
    })
}

/// Flat compose vs two-level compose at every shard count, plus the
/// frontier and epoch invariants. `Debug` equality is bit equality.
fn check_all(
    world: &World,
    registries: &[ShardedServiceRegistry],
    stores: &[GraphStore],
    flat_store: &GraphStore,
    options: &SelectOptions,
) {
    let flat = Composer {
        formats: &world.formats,
        services: registries[0].flat(),
        network: &world.network,
    }
    .compose_with_store(
        flat_store,
        &world.profiles,
        world.sender,
        world.receiver,
        options,
    );

    for (services, store) in registries.iter().zip(stores) {
        for shard in 0..services.shard_count() {
            assert_eq!(
                format!("{:?}", services.frontier(shard)),
                format!("{:?}", services.frontier_from_scratch(shard)),
                "incremental frontier diverged from scratch recompute (shard {shard} of {})",
                services.shard_count()
            );
        }
        let epoch_sum: u64 = services.shard_epochs().iter().map(|&(_, e)| e).sum();
        assert_eq!(
            epoch_sum,
            services.flat().epoch(),
            "shard epochs must partition the flat epoch"
        );

        let two = ShardedComposer {
            formats: &world.formats,
            services,
            network: &world.network,
        }
        .compose_with_store(
            store,
            &world.profiles,
            world.sender,
            world.receiver,
            options,
        );
        match (&flat, &two) {
            (Ok(flat), Ok(two)) => {
                assert_eq!(
                    format!("{:?}", flat.plan),
                    format!("{:?}", two.composition.plan),
                    "plan diverged from flat at {} shards",
                    services.shard_count()
                );
                if two.full_expansion {
                    // Same unscoped graph ⇒ the whole selection must
                    // replay byte for byte: chain, tie-breaks, trace.
                    assert_eq!(
                        format!("{:?}", flat.selection.chain),
                        format!("{:?}", two.composition.selection.chain),
                        "full-expansion chain diverged at {} shards",
                        services.shard_count()
                    );
                    assert_eq!(
                        format!("{:?}", flat.selection.trace.rows),
                        format!("{:?}", two.composition.selection.trace.rows),
                        "full-expansion trace diverged at {} shards",
                        services.shard_count()
                    );
                }
            }
            (flat, two) => {
                assert_eq!(
                    format!("{:?}", flat.as_ref().err()),
                    format!("{:?}", two.as_ref().err()),
                    "error outcome diverged at {} shards",
                    services.shard_count()
                );
            }
        }
    }
}

fn run_case(clusters: usize, heads: usize, tails: usize, ops: &[ChurnOp]) {
    let world = world(clusters);
    let mut registries = build_registries(&world, clusters, heads, tails);
    let stores: Vec<GraphStore> = SHARD_COUNTS.iter().map(|_| GraphStore::new()).collect();
    let flat_store = GraphStore::new();
    let options = SelectOptions {
        record_trace: true,
        ..SelectOptions::default()
    };
    let mut now_us = 1_000u64;
    let mut register_seq = 0usize;

    check_all(&world, &registries, &stores, &flat_store, &options);

    for &op in ops {
        now_us += 1_000;
        // Same target in every registry: ids are allocated by the
        // shared flat logic, so the live list is identical across
        // shard counts.
        let live: Vec<ServiceId> = registries[0]
            .flat()
            .live_services()
            .map(|(id, _)| id)
            .collect();
        let pick_live = |payload: u8| -> Option<ServiceId> {
            if live.is_empty() {
                None
            } else {
                Some(live[payload as usize % live.len()])
            }
        };
        for services in &mut registries {
            match op {
                ChurnOp::Register { pick, head } => {
                    let cluster = pick as usize % clusters;
                    services.register(
                        descriptor(&world, cluster, head, format!("x{register_seq}")),
                        SimTime(now_us),
                        3_600_000_000,
                    );
                }
                ChurnOp::Deregister(payload) => {
                    if let Some(id) = pick_live(payload) {
                        let _ = services.deregister(id);
                    }
                }
                ChurnOp::Quarantine(payload) => {
                    if let Some(id) = pick_live(payload) {
                        let _ = services.report_failure(id, SimTime(now_us));
                    }
                }
                ChurnOp::Release => {
                    services.release_quarantines(SimTime(now_us + 2_000_000));
                }
                ChurnOp::Probate(payload) => {
                    if let Some(id) = pick_live(payload) {
                        let _ = services.probate(id, 400_000, SimTime(now_us));
                    }
                }
                ChurnOp::ProbeSuccess(payload) => {
                    if let Some(id) = pick_live(payload) {
                        let _ = services.probe_success(id, SimTime(now_us));
                    }
                }
            }
        }
        if matches!(op, ChurnOp::Release) {
            now_us += 2_000_000;
        }
        if matches!(op, ChurnOp::Register { .. }) {
            register_seq += 1;
        }
        // First check applies deltas; the second must reuse everything
        // with zero pending events.
        check_all(&world, &registries, &stores, &flat_store, &options);
        check_all(&world, &registries, &stores, &flat_store, &options);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The headline property: plans (and on full expansion, traces)
    /// bitwise identical to flat across 1/2/4/8 shards under churn.
    #[test]
    fn sharded_two_level_is_bitwise_identical_to_flat(
        clusters in 2usize..=7,
        heads in 1usize..=2,
        tails in 1usize..=2,
        ops in proptest::collection::vec(arb_op(), 1..10),
    ) {
        run_case(clusters, heads, tails, &ops);
    }

    /// Degenerate worlds (every tail gone) must replay the flat
    /// failure verbatim through the full-expansion fallback.
    #[test]
    fn tail_less_worlds_replay_flat_failures(
        clusters in 2usize..=4,
        ops in proptest::collection::vec(arb_op(), 1..6),
    ) {
        let world = world(clusters);
        let mut registries = build_registries(&world, clusters, 1, 1);
        // Deregister every tail: no chain can reach the decoder.
        let tails: Vec<ServiceId> = registries[0]
            .flat()
            .live_services()
            .filter(|(_, d)| d.conversions.iter().all(|c| c.output == world.dst))
            .map(|(id, _)| id)
            .collect();
        for services in &mut registries {
            for &id in &tails {
                let _ = services.deregister(id);
            }
        }
        let stores: Vec<GraphStore> = SHARD_COUNTS.iter().map(|_| GraphStore::new()).collect();
        let flat_store = GraphStore::new();
        let options = SelectOptions { record_trace: true, ..SelectOptions::default() };
        check_all(&world, &registries, &stores, &flat_store, &options);
        let _ = ops;
    }
}
