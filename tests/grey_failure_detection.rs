//! Grey-failure lifecycle properties:
//!
//! * the available → probated → quarantined state machine is
//!   deterministic: two registries fed the same seeded op
//!   interleaving agree on every event, penalty, and flag,
//! * `release_quarantines` returns reinstated ids in registration
//!   order no matter what order the failure reports arrived in,
//! * the selection-penalty view stays sorted (the binary-search
//!   precondition of the scoring hot path),
//! * and the PR 7 parity claims the X18 scorecard asserts at scale,
//!   here at unit scale: a binary breaker is bit-identical to
//!   detection-off under grey-only chaos, and the drift-aware
//!   estimators are bit-identical to detection-off when nothing sags.

use proptest::prelude::*;
use qosc_core::{
    run_sessions, AbrConfig, AbrMode, ArrivalMeta, CompositionRequest, PriorityClass,
    SelectOptions, SessionEngineConfig, SessionRequest, SessionWorld, SessionsReport, SlaConfig,
    SlaMode,
};
use qosc_media::FormatRegistry;
use qosc_netsim::{Network, Node, NodeId, SimTime, Topology};
use qosc_pipeline::{ChaosAction, ChaosWorld};
use qosc_profiles::{
    ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, ProfileSet, UserProfile,
};
use qosc_services::{catalog, DiscoveryConfig, ServiceId, ServiceRegistry, TranscoderDescriptor};

/// A registry holding the full transcoder catalog on one host, with
/// static leases — churn is not under study here, the breaker and
/// probation machinery are.
fn seeded_registry() -> (ServiceRegistry, Vec<ServiceId>) {
    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let host = topo.add_node(Node::unconstrained("proxy"));
    let mut registry = ServiceRegistry::new();
    let ids = catalog::full_catalog()
        .iter()
        .map(|spec| {
            registry.register_static(TranscoderDescriptor::resolve(spec, &formats, host).unwrap())
        })
        .collect();
    (registry, ids)
}

/// One registry operation; `dt_us` advances the virtual clock before
/// it applies, so every interleaving is time-monotone.
#[derive(Debug, Clone, Copy)]
enum Op {
    Fail(u8),
    Success(u8),
    Probate(u8, u64),
    Probe(u8),
    Release,
    Deregister(u8),
}

fn ops() -> impl Strategy<Value = Vec<(Op, u64)>> {
    let op = prop_oneof![
        (0u8..16).prop_map(Op::Fail),
        (0u8..16).prop_map(Op::Success),
        ((0u8..16), (0u64..1_000_000)).prop_map(|(s, ppm)| Op::Probate(s, ppm)),
        (0u8..16).prop_map(Op::Probe),
        Just(Op::Release),
        (0u8..16).prop_map(Op::Deregister),
    ];
    proptest::collection::vec((op, 0u64..2_000_000), 1..80)
}

/// Replay `trace` against a fresh registry; returns the batches
/// `release_quarantines` produced along the way.
fn replay(
    registry: &mut ServiceRegistry,
    ids: &[ServiceId],
    trace: &[(Op, u64)],
) -> Vec<Vec<ServiceId>> {
    let mut now = 0u64;
    let mut released = Vec::new();
    let pick = |s: u8| ids[s as usize % ids.len()];
    for &(op, dt) in trace {
        now += dt;
        match op {
            Op::Fail(s) => {
                // Dead and quarantined targets are documented no-ops.
                let _ = registry.report_failure(pick(s), SimTime(now));
            }
            Op::Success(s) => {
                let _ = registry.report_success(pick(s));
            }
            Op::Probate(s, ppm) => {
                registry.probate(pick(s), ppm, SimTime(now));
            }
            Op::Probe(s) => {
                registry.probe_success(pick(s), SimTime(now));
            }
            Op::Release => released.push(registry.release_quarantines(SimTime(now))),
            Op::Deregister(s) => {
                let _ = registry.deregister(pick(s));
            }
        }
    }
    released
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Two registries fed the identical seeded interleaving agree on
    /// everything observable: the event log, the epoch, the penalty
    /// view, and every per-service availability flag.
    #[test]
    fn state_machine_is_deterministic(trace in ops()) {
        let (mut a, ids_a) = seeded_registry();
        let (mut b, ids_b) = seeded_registry();
        prop_assert_eq!(&ids_a, &ids_b, "registration order is deterministic");
        let released_a = replay(&mut a, &ids_a, &trace);
        let released_b = replay(&mut b, &ids_b, &trace);
        prop_assert_eq!(released_a, released_b);
        prop_assert_eq!(a.events(), b.events());
        prop_assert_eq!(a.epoch(), b.epoch());
        prop_assert_eq!(a.selection_penalties(), b.selection_penalties());
        for &id in &ids_a {
            prop_assert_eq!(a.is_available(id), b.is_available(id));
            prop_assert_eq!(a.is_probated(id), b.is_probated(id));
            prop_assert_eq!(a.is_quarantined(id), b.is_quarantined(id));
            prop_assert_eq!(a.effective_qos_ppm(id), b.effective_qos_ppm(id));
        }
    }

    /// The penalty view selection binary-searches must stay strictly
    /// sorted by service id through any interleaving.
    #[test]
    fn selection_penalties_stay_sorted(trace in ops()) {
        let (mut registry, ids) = seeded_registry();
        let mut now = 0u64;
        let pick = |s: u8| ids[s as usize % ids.len()];
        for &(op, dt) in &trace {
            now += dt;
            match op {
                Op::Fail(s) => { let _ = registry.report_failure(pick(s), SimTime(now)); }
                Op::Success(s) => { let _ = registry.report_success(pick(s)); }
                Op::Probate(s, ppm) => { registry.probate(pick(s), ppm, SimTime(now)); }
                Op::Probe(s) => { registry.probe_success(pick(s), SimTime(now)); }
                Op::Release => { registry.release_quarantines(SimTime(now)); }
                Op::Deregister(s) => { let _ = registry.deregister(pick(s)); }
            }
            let penalties = registry.selection_penalties();
            prop_assert!(
                penalties.windows(2).all(|w| w[0].0 < w[1].0),
                "penalty view must stay strictly sorted"
            );
            for &(id, ppm) in penalties {
                prop_assert!(registry.is_probated(id));
                prop_assert_eq!(registry.effective_qos_ppm(id), ppm);
            }
        }
    }

    /// However the failure reports are interleaved, quarantines release
    /// in registration order — the ordering worker-count invariance
    /// leans on.
    #[test]
    fn release_ordering_is_registration_order(raw in proptest::collection::vec(0usize..16, 2..16)) {
        // Dedup preserving first occurrence: an arbitrary *report*
        // order over distinct services.
        let mut order: Vec<usize> = Vec::new();
        for slot in raw {
            if !order.contains(&slot) {
                order.push(slot);
            }
        }
        let (mut registry, ids) = seeded_registry();
        let threshold = registry.quarantine_config().failure_threshold;
        // Quarantine the chosen services in shuffled *report* order.
        for (k, &slot) in order.iter().enumerate() {
            let id = ids[slot % ids.len()];
            for f in 0..threshold {
                let _ = registry.report_failure(id, SimTime(1_000 + (k as u64) * 10 + f as u64));
            }
        }
        let cooldown = registry.quarantine_config().cooldown_us;
        let released = registry.release_quarantines(SimTime(1_000 + cooldown + 1_000_000));
        prop_assert_eq!(released.len(), order.iter().map(|s| s % ids.len()).collect::<std::collections::BTreeSet<_>>().len());
        prop_assert!(
            released.windows(2).all(|w| w[0].index() < w[1].index()),
            "released ids must come back in registration order, got {:?}",
            released
        );
    }
}

// ---------------------------------------------------------------------
// PR 7 parity at unit scale: the session-engine digests the X18
// scorecard compares, on a three-node world small enough for a test.
// ---------------------------------------------------------------------

struct Hosts {
    server: NodeId,
    client: NodeId,
}

/// server —100M— proxy —1M— client with the full catalog on the proxy,
/// plus a sag window over the member serving the composed chain when
/// `grey` is set.
fn grey_world(formats: &FormatRegistry, grey: bool) -> (ChaosWorld<'_>, Hosts) {
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxy = topo.add_node(Node::unconstrained("proxy"));
    let client = topo.add_node(Node::unconstrained("client"));
    topo.connect_simple(server, proxy, 100e6).unwrap();
    topo.connect_simple(proxy, client, 1e6).unwrap();
    let mut world = ChaosWorld::new(formats, Network::new(topo), DiscoveryConfig::default());
    for spec in catalog::full_catalog() {
        world.join(TranscoderDescriptor::resolve(&spec, formats, proxy).unwrap());
    }
    if grey {
        let plan = world
            .composer()
            .compose(&profiles(), server, client, &SelectOptions::default())
            .unwrap()
            .plan
            .expect("the PDA scenario composes a chain");
        let sick = plan.steps.iter().find_map(|s| s.service).unwrap();
        let index = world
            .services()
            .live_services()
            .position(|(id, _)| id == sick)
            .unwrap();
        world.schedule_action(
            1_000_000,
            ChaosAction::SagMember {
                index,
                throughput_permille: 100,
            },
        );
        world.schedule_action(8_000_000, ChaosAction::UnsagMember(index));
    }
    (world, Hosts { server, client })
}

fn profiles() -> ProfileSet {
    ProfileSet {
        user: UserProfile::demo("user-0"),
        content: ContentProfile::demo_video("clip"),
        device: DeviceProfile::demo_pda(),
        context: ContextProfile::default(),
        network: NetworkProfile::broadband(),
    }
}

fn requests(h: &Hosts) -> Vec<SessionRequest> {
    (0..3u64)
        .map(|k| SessionRequest {
            request: CompositionRequest {
                profiles: profiles(),
                sender_host: h.server,
                receiver_host: h.client,
            },
            arrival: ArrivalMeta {
                arrival_us: k * 400_000,
                priority: PriorityClass::Standard,
                service_cost_us: 1_000,
                deadline_budget_us: None,
            },
            hold_us: 8_000_000,
            demand_bps: 1_000,
        })
        .collect()
}

fn engine_config(sla: Option<SlaConfig>) -> SessionEngineConfig {
    SessionEngineConfig {
        admission: None,
        tick_us: 250_000,
        horizon_us: Some(10_000_000),
        session_spans: true,
        abr: Some(AbrConfig::with_mode(AbrMode::Bola)),
        sla,
        ..SessionEngineConfig::default()
    }
}

fn run_mode(grey: bool, sla: Option<SlaConfig>) -> SessionsReport {
    let formats = FormatRegistry::with_builtins();
    let (mut world, hosts) = grey_world(&formats, grey);
    run_sessions(
        &mut world,
        &requests(&hosts),
        &engine_config(sla),
        &qosc_telemetry::NoopSink,
    )
}

fn digest(report: &SessionsReport) -> String {
    let mut rendered = String::new();
    for outcome in &report.outcomes {
        rendered.push_str(&format!("{outcome:?}\n"));
    }
    rendered.push_str(&format!("{:?} end={}", report.counters, report.end_us));
    rendered
}

/// A binary breaker only sees hard failures; grey-only chaos never
/// produces one, so its run must be bit-identical to no detection at
/// all — the scorecard's "provably blind" claim.
#[test]
fn binary_breaker_is_blind_to_grey_faults() {
    let off = run_mode(true, None);
    let binary = run_mode(
        true,
        Some(SlaConfig {
            mode: SlaMode::Binary,
            ..SlaConfig::default()
        }),
    );
    assert_eq!(digest(&off), digest(&binary));
    assert_eq!(binary.sla_violations(), 0);
    assert_eq!(binary.evasions(), 0);
    assert!(
        off.rebuffer_us() > 0,
        "the sag window must actually starve the undetected sessions"
    );
}

/// With nothing sagging, the drift-aware estimators observe nominal
/// QoS, never flag, and change nothing: bit-identical to `sla: None`
/// — the do-no-harm bound behind "with estimators off, every integer
/// field is bit-identical to the PR 7 code path".
#[test]
fn drift_estimators_do_no_harm_when_healthy() {
    let off = run_mode(false, None);
    let drift = run_mode(false, Some(SlaConfig::default()));
    assert_eq!(digest(&off), digest(&drift));
    assert_eq!(drift.sla_violations(), 0);
    assert_eq!(drift.evasions(), 0);
}

/// Detection-off runs are invariant in the SLA machinery's mere
/// existence: the `sla: None` digest is identical whether or not grey
/// state sits in the world — as long as no window is scheduled.
#[test]
fn detection_off_is_stable_across_runs() {
    let a = run_mode(false, None);
    let b = run_mode(false, None);
    assert_eq!(digest(&a), digest(&b));
    assert_eq!(a.counters.offered, 3);
}
