//! Mid-session re-composition, end to end through the pipeline's
//! [`ChaosWorld`]:
//!
//! * a bandwidth squeeze that breaks the serving plan forces exactly
//!   one re-composition per affected session, with rung transitions
//!   recorded in virtual-time order,
//! * a member crash leaves plans alive until its *lease expires*; the
//!   expiry settle point then forces exactly one re-composition onto
//!   the surviving replica,
//! * exhausting `max_recompositions` closes the session as `gave_up`
//!   without panicking the loop — sessions that never break complete
//!   around it,
//! * under a long squeeze the BOLA controller rides the window out on a
//!   lower rung while the static ladder starves its buffer,
//! * with the controller disabled (`abr: None`) every buffer-era field
//!   is zero and the integer outcome fields match the PR 6 reactive
//!   path exactly.

use qosc_core::{
    run_sessions, AbrConfig, AbrMode, ArrivalMeta, CloseReason, Composer, CompositionRequest,
    PriorityClass, SessionEngineConfig, SessionRequest, SessionWorld,
};
use qosc_media::FormatRegistry;
use qosc_netsim::{Network, Node, NodeId, Topology};
use qosc_pipeline::{ChaosAction, ChaosWorld, FailureEvent};
use qosc_profiles::{
    ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, ProfileSet, UserProfile,
};
use qosc_services::{catalog, DiscoveryConfig, ServiceRegistry, TranscoderDescriptor};

fn profiles() -> ProfileSet {
    ProfileSet {
        user: UserProfile::demo("user"),
        content: ContentProfile::demo_video("clip"),
        device: DeviceProfile::demo_pda(),
        context: ContextProfile::default(),
        network: NetworkProfile::broadband(),
    }
}

fn session(server: NodeId, client: NodeId, arrival_us: u64, hold_us: u64) -> SessionRequest {
    SessionRequest {
        request: CompositionRequest {
            profiles: profiles(),
            sender_host: server,
            receiver_host: client,
        },
        arrival: ArrivalMeta {
            arrival_us,
            priority: PriorityClass::Standard,
            service_cost_us: 1_000,
            deadline_budget_us: None,
        },
        hold_us,
        demand_bps: 0,
    }
}

fn config(tick_us: u64, max_recompositions: u32) -> SessionEngineConfig {
    SessionEngineConfig {
        admission: None,
        tick_us,
        max_recompositions,
        ..SessionEngineConfig::default()
    }
}

#[test]
fn bandwidth_squeeze_forces_exactly_one_recomposition() {
    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxy = topo.add_node(Node::unconstrained("proxy"));
    let client = topo.add_node(Node::unconstrained("client"));
    topo.connect_simple(server, proxy, 100e6).unwrap();
    let last_hop = topo.connect_simple(proxy, client, 1e6).unwrap();
    let mut world = ChaosWorld::new(&formats, Network::new(topo), DiscoveryConfig::default());
    for spec in catalog::full_catalog() {
        world.join(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
    }
    // One squeeze window at 1s; sessions hold 0s..3s. The squeeze
    // breaks every live plan once; the release at 2s breaks nothing
    // (more bandwidth never invalidates a plan).
    world.schedule_fault(
        1_000_000,
        FailureEvent::Squeeze {
            link: last_hop,
            permille: 950,
        },
    );
    world.schedule_fault(2_000_000, FailureEvent::Unsqueeze(last_hop));

    let requests: Vec<SessionRequest> = (0..4)
        .map(|_| session(server, client, 0, 3_000_000))
        .collect();
    let report = run_sessions(
        &mut world,
        &requests,
        &config(250_000, 8),
        &qosc_telemetry::NoopSink,
    );

    assert!(report.counters.partitions_exactly());
    assert!(report.recompositions() >= 1, "the squeeze broke nothing");
    for (i, o) in report.outcomes.iter().enumerate() {
        assert!(
            o.recompositions <= 1,
            "session {i} re-composed {} times for one squeeze",
            o.recompositions
        );
        // Rung transitions recorded in order: open, then (for affected
        // sessions) the post-squeeze adoption after the break.
        assert!(o.rung_history.windows(2).all(|w| w[0].0 <= w[1].0));
        if o.recompositions == 1 {
            assert_eq!(o.rung_history.len(), 2, "session {i}: one re-adoption");
            assert!(
                o.rung_history[1].0 >= 1_000_000,
                "session {i} re-composed before the squeeze"
            );
        }
    }
}

#[test]
fn lease_expiry_forces_one_recomposition_onto_the_survivor() {
    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxy_a = topo.add_node(Node::unconstrained("proxy-a"));
    let proxy_b = topo.add_node(Node::unconstrained("proxy-b"));
    let client = topo.add_node(Node::unconstrained("client"));
    // Two equivalent proxy paths.
    topo.connect_simple(server, proxy_a, 100e6).unwrap();
    topo.connect_simple(proxy_a, client, 1e6).unwrap();
    topo.connect_simple(server, proxy_b, 100e6).unwrap();
    topo.connect_simple(proxy_b, client, 1e6).unwrap();

    let ttl = DiscoveryConfig::default().ttl.as_micros();
    let mut world = ChaosWorld::new(&formats, Network::new(topo), DiscoveryConfig::default());
    // Same catalog on both proxies: two equivalent replica sets.
    let catalog_len = catalog::full_catalog().len();
    for spec in catalog::full_catalog() {
        world.join(TranscoderDescriptor::resolve(&spec, &formats, proxy_a).unwrap());
    }
    for spec in catalog::full_catalog() {
        world.join(TranscoderDescriptor::resolve(&spec, &formats, proxy_b).unwrap());
    }
    // Compose once up front to learn which replica set the tie-break
    // serves, then crash exactly that set — the equivalent replicas on
    // the other proxy must absorb the re-compositions.
    let opening = world
        .composer()
        .compose(
            &profiles(),
            server,
            client,
            &qosc_core::SelectOptions::default(),
        )
        .unwrap()
        .plan
        .expect("the demo scenario composes a chain");
    let serving_host = opening
        .steps
        .iter()
        .find_map(|s| s.service.map(|_| s.host))
        .expect("the PDA chain rides a transcoder");
    let serving_members = if serving_host == proxy_a {
        0..catalog_len
    } else {
        catalog_len..2 * catalog_len
    };
    // Crash the serving processes at 1s. Their leases stay valid until
    // the TTL runs out, so nothing breaks until the settle point just
    // past expiry.
    let crash_us = 1_000_000;
    for member in serving_members {
        world.schedule_action(crash_us, ChaosAction::CrashMember(member));
    }
    let expiry_us = crash_us + ttl + 1;
    world.schedule_settle(expiry_us);

    let hold_us = expiry_us + 3_000_000;
    let requests: Vec<SessionRequest> = (0..3)
        .map(|_| session(server, client, 0, hold_us))
        .collect();
    let report = run_sessions(
        &mut world,
        &requests,
        &config(250_000, 8),
        &qosc_telemetry::NoopSink,
    );

    assert!(report.counters.partitions_exactly());
    assert_eq!(
        report.counters.completed, 3,
        "the proxy-b replicas must carry every session to completion"
    );
    for (i, o) in report.outcomes.iter().enumerate() {
        assert_eq!(
            o.recompositions, 1,
            "session {i}: exactly one re-composition per lease expiry"
        );
        assert_eq!(o.rung_history.len(), 2);
        assert!(
            o.rung_history[1].0 >= expiry_us,
            "session {i} re-composed before the lease expired (at {})",
            o.rung_history[1].0
        );
        assert_eq!(o.close, Some(CloseReason::Completed));
    }
}

/// A world whose plans are never alive: every progress tick triggers a
/// re-composition, so the budget drains at tick rate.
struct NeverAlive<'a> {
    formats: &'a FormatRegistry,
    services: &'a ServiceRegistry,
    network: &'a Network,
}

impl SessionWorld for NeverAlive<'_> {
    fn composer(&self) -> Composer<'_> {
        Composer {
            formats: self.formats,
            services: self.services,
            network: self.network,
        }
    }

    fn plan_alive(&self, _plan: &qosc_core::AdaptationPlan) -> bool {
        false
    }
}

#[test]
fn exhausting_the_recomposition_budget_closes_gave_up() {
    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxy = topo.add_node(Node::unconstrained("proxy"));
    let client = topo.add_node(Node::unconstrained("client"));
    topo.connect_simple(server, proxy, 100e6).unwrap();
    topo.connect_simple(proxy, client, 1e6).unwrap();
    let network = Network::new(topo);
    let mut services = ServiceRegistry::new();
    for spec in catalog::full_catalog() {
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
    }
    let mut world = NeverAlive {
        formats: &formats,
        services: &services,
        network: &network,
    };

    // Ticks at 250ms each burn one re-composition; with a budget of 2
    // the third tick gives up at 750ms, well inside the 5s hold. The
    // zero-hold session closes at open and never consumes budget.
    let requests = vec![
        session(server, client, 0, 5_000_000),
        session(server, client, 0, 5_000_000),
        session(server, client, 0, 0),
    ];
    let report = run_sessions(
        &mut world,
        &requests,
        &config(250_000, 2),
        &qosc_telemetry::NoopSink,
    );

    assert!(report.counters.partitions_exactly());
    assert_eq!(report.counters.gave_up, 2);
    assert_eq!(
        report.counters.completed, 1,
        "the degenerate session completes"
    );
    for o in &report.outcomes[..2] {
        assert_eq!(o.close, Some(CloseReason::GaveUp));
        assert_eq!(o.recompositions, 2, "the budget is consumed exactly");
        assert_eq!(o.closed_us, Some(750_000), "gives up on the third tick");
        assert!(o.active_us() > 0, "it streamed until it gave up");
    }
    assert_eq!(report.outcomes[2].close, Some(CloseReason::Completed));
}

/// A server→proxy→client chain whose last hop gets squeezed to
/// `permille` background load over `[squeeze_us, release_us)`.
fn squeezed_chain<'a>(
    formats: &'a FormatRegistry,
    permille: u16,
    squeeze_us: u64,
    release_us: u64,
) -> (ChaosWorld<'a>, NodeId, NodeId) {
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxy = topo.add_node(Node::unconstrained("proxy"));
    let client = topo.add_node(Node::unconstrained("client"));
    topo.connect_simple(server, proxy, 100e6).unwrap();
    let last_hop = topo.connect_simple(proxy, client, 1e6).unwrap();
    let mut world = ChaosWorld::new(formats, Network::new(topo), DiscoveryConfig::default());
    for spec in catalog::full_catalog() {
        world.join(TranscoderDescriptor::resolve(&spec, formats, proxy).unwrap());
    }
    world.schedule_fault(
        squeeze_us,
        FailureEvent::Squeeze {
            link: last_hop,
            permille,
        },
    );
    world.schedule_fault(release_us, FailureEvent::Unsqueeze(last_hop));
    (world, server, client)
}

fn abr_config_for(mode: AbrMode) -> SessionEngineConfig {
    SessionEngineConfig {
        admission: None,
        tick_us: 250_000,
        max_recompositions: 8,
        abr: Some(AbrConfig::with_mode(mode)),
        ..SessionEngineConfig::default()
    }
}

/// The PR's robustness headline in miniature: a squeeze window that
/// outlasts the startup buffer starves a static ladder, while the BOLA
/// controller down-switches mid-stream, keeps playing, and never needs
/// a re-composition (the squeeze keeps hard liveness).
#[test]
fn bola_rides_out_the_squeeze_where_the_static_ladder_starves() {
    let formats = FormatRegistry::with_builtins();
    let run = |mode: AbrMode| {
        let (mut world, server, client) = squeezed_chain(&formats, 990, 1_000_000, 11_000_000);
        let requests: Vec<SessionRequest> = (0..3)
            .map(|_| session(server, client, 0, 13_000_000))
            .collect();
        run_sessions(
            &mut world,
            &requests,
            &abr_config_for(mode),
            &qosc_telemetry::NoopSink,
        )
    };

    let static_report = run(AbrMode::StaticLadder);
    let bola_report = run(AbrMode::Bola);

    assert!(static_report.counters.partitions_exactly());
    assert!(bola_report.counters.partitions_exactly());
    assert!(
        static_report.rebuffer_us() > 0,
        "a 10s squeeze against a 4s buffer must stall the static ladder"
    );
    assert!(
        bola_report.rebuffer_us() < static_report.rebuffer_us(),
        "BOLA must stall strictly less than static: {} vs {}",
        bola_report.rebuffer_us(),
        static_report.rebuffer_us()
    );
    assert!(
        bola_report.switches() > 0,
        "BOLA must commit at least one mid-stream switch"
    );
    // A squeeze never fails hard liveness, so neither controller
    // consumes re-composition budget — switches are make-before-break.
    assert_eq!(static_report.recompositions(), 0);
    assert_eq!(bola_report.recompositions(), 0);
    for (i, o) in bola_report.outcomes.iter().enumerate() {
        assert!(
            o.buffer_peak_us <= AbrConfig::default().buffer_capacity_us,
            "session {i}: buffer peak above capacity"
        );
    }
}

/// `abr: None` is the PR 6 engine, bit for bit: every buffer-era
/// outcome field is zero, and the integer decision fields (close
/// reasons, recompositions, rung history, lit/dark split) match a
/// reactive-mode run on the same world exactly — the buffer is
/// observational on the reactive path and cannot perturb decisions.
#[test]
fn controller_off_matches_the_reactive_decision_path() {
    let formats = FormatRegistry::with_builtins();
    let run = |abr: Option<AbrConfig>| {
        let (mut world, server, client) = squeezed_chain(&formats, 950, 1_000_000, 2_000_000);
        let requests: Vec<SessionRequest> = (0..4)
            .map(|_| session(server, client, 0, 3_000_000))
            .collect();
        let config = SessionEngineConfig {
            admission: None,
            tick_us: 250_000,
            max_recompositions: 8,
            abr,
            ..SessionEngineConfig::default()
        };
        run_sessions(&mut world, &requests, &config, &qosc_telemetry::NoopSink)
    };

    let off = run(None);
    let reactive = run(Some(AbrConfig::with_mode(AbrMode::Reactive)));

    for (i, o) in off.outcomes.iter().enumerate() {
        assert_eq!(o.rebuffer_us, 0, "session {i}: rebuffer without a buffer");
        assert_eq!(o.rebuffer_events, 0);
        assert_eq!(o.switches, 0);
        assert_eq!(o.buffer_peak_us, 0);
    }
    assert_eq!(off.outcomes.len(), reactive.outcomes.len());
    for (i, (a, b)) in off.outcomes.iter().zip(&reactive.outcomes).enumerate() {
        assert_eq!(a.close, b.close, "session {i}: close reason diverged");
        assert_eq!(a.closed_us, b.closed_us, "session {i}: close time diverged");
        assert_eq!(a.recompositions, b.recompositions, "session {i}");
        assert_eq!(a.rung_history, b.rung_history, "session {i}");
        assert_eq!(a.lit_us, b.lit_us, "session {i}: lit time diverged");
        assert_eq!(a.dark_us, b.dark_us, "session {i}: dark time diverged");
        assert_eq!(a.epochs, b.epochs, "session {i}: epoch count diverged");
        assert_eq!(a.attempts, b.attempts, "session {i}: attempts diverged");
        // Reactive mode never commits controller switches either.
        assert_eq!(b.switches, 0, "session {i}: reactive committed a switch");
    }
    assert_eq!(off.counters, reactive.counters);
    assert_eq!(off.end_us, reactive.end_us);
}
