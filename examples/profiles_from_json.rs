//! Profile interchange: load a complete request (user + content +
//! device + context + network profiles) from JSON — our stand-in for
//! the MPEG-21 / UAProf descriptions the paper cites — and compose for
//! it.
//!
//! The request is a rugged tablet streaming an inspection camera in a
//! very noisy turbine hall: the context profile downweights audio, the
//! budget is metered, and the device only decodes H.263/MPEG-1.
//!
//! ```text
//! cargo run -p qosc-bench --example profiles_from_json
//! ```

use qosc_core::{Composer, SelectOptions};
use qosc_media::FormatRegistry;
use qosc_netsim::{Network, Node, Topology};
use qosc_profiles::ProfileSet;
use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};

const REQUEST_JSON: &str = include_str!("data/request.json");

fn main() {
    // The wire form, exactly as a client would submit it.
    let profiles = ProfileSet::from_json(REQUEST_JSON).expect("request.json parses");
    profiles.validate().expect("request validates");
    println!(
        "loaded request: user `{}` wants `{}` on `{}` over {} (budget {:?}/s)",
        profiles.user.name,
        profiles.content.title,
        profiles.device.name,
        profiles.network.technology,
        profiles.user.budget,
    );

    // Scenario substrate: camera — plant proxy — tablet.
    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let camera = topo.add_node(Node::unconstrained("camera"));
    let proxy = topo.add_node(Node::new("plant-proxy", 4_000.0, 8e9));
    let tablet = topo.add_node(Node::unconstrained("tablet"));
    topo.connect_simple(camera, proxy, 50e6).unwrap();
    topo.connect_simple(proxy, tablet, profiles.network.downlink_bps)
        .unwrap();
    let mut network = Network::new(topo);
    let mut services = ServiceRegistry::new();
    for spec in catalog::full_catalog() {
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
    }

    let composer = Composer {
        formats: &formats,
        services: &services,
        network: &network,
    };
    let composition = composer
        .compose(&profiles, camera, tablet, &SelectOptions::default())
        .expect("composition runs");
    let plan = composition.plan.expect("the catalog reaches the tablet");
    println!();
    print!("{}", plan.describe(&formats));

    // Round-trip check: serialize the profiles back out — byte-stable
    // interchange is what lets intermediaries forward requests.
    let json = profiles.to_json().expect("serializes");
    let again = ProfileSet::from_json(&json).expect("round-trips");
    assert_eq!(again, profiles);
    println!();
    println!(
        "profile set round-trips through JSON ({} bytes)",
        json.len()
    );

    // And stream it.
    let profile = profiles.effective_satisfaction();
    let report = qosc_pipeline::run_session(
        &mut network,
        &services,
        &plan,
        &profile,
        &qosc_pipeline::SessionConfig::default(),
    )
    .expect("session runs");
    println!(
        "delivered {:.1} fps, measured satisfaction {:.3} (predicted {:.3})",
        report.delivered_fps, report.measured_satisfaction, plan.predicted_satisfaction
    );
}
