//! Budget-aware composition: the same request at different willingness
//! to pay, on the Figure-6 scenario where every hop costs one monetary
//! unit (Figure 4's `user_budget`).
//!
//! ```text
//! cargo run -p qosc-bench --example budget_shopping
//! ```

use qosc_core::SelectOptions;
use qosc_workload::paper;

fn main() {
    println!("the same video request at different budgets (cost = hops):");
    println!();
    for budget in [0.5, 1.0, 1.5, 2.0, 5.0] {
        let mut scenario = paper::figure6_scenario(true);
        scenario.profiles.user.budget = Some(budget);
        let composition = scenario
            .compose(&SelectOptions::default())
            .expect("composition runs");
        match composition.selection.chain {
            Some(chain) => println!(
                "  budget {budget:4.1} → {:<28} cost {:.1}, satisfaction {:.3}",
                chain.names().join(" → "),
                chain.total_cost,
                chain.satisfaction
            ),
            None => println!("  budget {budget:4.1} → no affordable chain (TERMINATE(FAILURE))"),
        }
    }
    println!();
    println!(
        "Below 2 units nothing reaches the receiver (every viable chain \
         crosses at least two priced links); past 2 units more money buys \
         nothing — T7's 20 fps cap binds, not the budget."
    );
}
