//! Operator-console view: two framework conveniences layered on the
//! selection algorithm —
//!
//! * **quality presets** (the paper's reference [28], Richards et al.):
//!   collapse the per-axis satisfaction functions into a single dial and
//!   print what each notch costs in parameters and bandwidth;
//! * **pre-planned backup chains** (`qosc_core::select::alternates`):
//!   for the composed chain, the fallbacks that survive the loss of each
//!   trans-coder, computed up front so failover is instant.
//!
//! ```text
//! cargo run -p qosc-bench --example presets_and_backups
//! ```

use qosc_core::select::alternates;
use qosc_core::SelectOptions;
use qosc_media::{Axis, BitrateModel};
use qosc_satisfaction::{params_for_level, presets};
use qosc_workload::paper;

fn main() {
    let scenario = paper::figure6_scenario(true);
    let profile = scenario.profiles.effective_satisfaction();

    // --- The quality dial -------------------------------------------------
    println!("quality dial (Richards-style single-parameter mapping):");
    let bitrate = BitrateModel::LinearOnAxis {
        axis: Axis::FrameRate,
        slope: 1000.0,
    };
    for (level, params) in presets(&profile, 5) {
        println!(
            "  level {level:.2} → {params}  (~{:.1} kbit/s)",
            bitrate.bits_per_second(&params) / 1e3
        );
    }
    // What does "satisfaction 0.66" — the paper's delivered quality —
    // require?
    let needed = params_for_level(&profile, 2.0 / 3.0).expect("reachable");
    println!(
        "  the paper's delivered 0.66 needs {:.1} fps\n",
        needed.get(Axis::FrameRate).unwrap_or(0.0)
    );

    // --- The composed chain and its pre-planned backups -------------------
    let composition = scenario
        .compose(&SelectOptions::default())
        .expect("paper scenario composes");
    let primary = composition.selection.chain.expect("receiver reachable");
    println!(
        "primary chain : {}  (satisfaction {:.3})",
        primary.names().join(" → "),
        primary.satisfaction
    );

    let backups = alternates(
        &composition.graph,
        &scenario.formats,
        &profile,
        f64::INFINITY,
        &primary,
        4,
        &SelectOptions::default(),
    )
    .expect("alternates compute");
    if backups.is_empty() {
        println!("no backups: every trans-coder on the chain is a single point of failure");
    }
    for backup in &backups {
        println!(
            "if {} dies    : {}  (satisfaction {:.3}, Δ {:.3})",
            backup.survives_loss_of_name,
            backup.chain.names().join(" → "),
            backup.chain.satisfaction,
            primary.satisfaction - backup.chain.satisfaction,
        );
    }
    println!();
    println!(
        "The resilient pipeline (qosc-pipeline, `preplan_backups: true`) \
         switches to these within 100 ms instead of paying a full \
         detect-and-recompose cycle — see `cargo run -p qosc-bench --bin \
         resilience`."
    );
}
