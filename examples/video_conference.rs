//! Per-peer user preferences, straight from the paper's Section 3: "a
//! customer service representative should be able to specify in his
//! profile his/her preference to use high-resolution video and CD audio
//! quality when talking to a client, and to use telephony quality audio
//! and low-resolution video when communicating with a colleague".
//!
//! The same video feed is composed twice with the two preference sets;
//! the chains and delivered qualities differ accordingly.
//!
//! ```text
//! cargo run -p qosc-bench --example video_conference
//! ```

use qosc_core::{Composer, SelectOptions};
use qosc_media::{Axis, AxisDomain, DomainVector, FormatRegistry, VariantSpec};
use qosc_netsim::{Network, Node, Topology};
use qosc_profiles::{
    ContentProfile, ContextProfile, DeviceProfile, HardwareCaps, NetworkProfile, ProfileSet,
    UserProfile,
};
use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};

/// High-resolution video, CD-quality expectations: talking to a client.
fn client_call_prefs() -> SatisfactionProfile {
    SatisfactionProfile::new()
        .with(AxisPreference::weighted(
            Axis::FrameRate,
            SatisfactionFn::Linear {
                min_acceptable: 10.0,
                ideal: 30.0,
            },
            2.0,
        ))
        .with(AxisPreference::weighted(
            Axis::PixelCount,
            SatisfactionFn::Linear {
                min_acceptable: 76_800.0,
                ideal: 307_200.0,
            },
            2.0,
        ))
}

/// Telephony-quality expectations: talking to a colleague.
fn colleague_call_prefs() -> SatisfactionProfile {
    SatisfactionProfile::new()
        .with(AxisPreference::new(
            Axis::FrameRate,
            SatisfactionFn::Saturating {
                min_acceptable: 5.0,
                ideal: 15.0,
                scale: 4.0,
            },
        ))
        .with(AxisPreference::new(
            Axis::PixelCount,
            SatisfactionFn::Saturating {
                min_acceptable: 4_800.0,
                ideal: 76_800.0,
                scale: 40_000.0,
            },
        ))
}

fn main() {
    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let office = topo.add_node(Node::unconstrained("office"));
    let proxy = topo.add_node(Node::new("conference-bridge", 8_000.0, 16e9));
    let peer = topo.add_node(Node::unconstrained("peer"));
    topo.connect_simple(office, proxy, 10e6).unwrap();
    topo.connect_simple(proxy, peer, 1.2e6).unwrap();
    let network = Network::new(topo);

    let mut services = ServiceRegistry::new();
    for spec in catalog::full_catalog() {
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
    }

    let camera_feed = ContentProfile::new(
        "camera-feed",
        vec![VariantSpec {
            format: "video/mpeg2".to_string(),
            offered: DomainVector::new()
                .with(
                    Axis::FrameRate,
                    AxisDomain::Continuous {
                        min: 1.0,
                        max: 30.0,
                    },
                )
                .with(
                    Axis::PixelCount,
                    AxisDomain::Continuous {
                        min: 4_800.0,
                        max: 307_200.0,
                    },
                )
                .with(
                    Axis::ColorDepth,
                    AxisDomain::Continuous {
                        min: 8.0,
                        max: 24.0,
                    },
                ),
        }],
    );
    let laptop = DeviceProfile::new(
        "peer-laptop",
        vec!["video/h263".to_string(), "video/mpeg1".to_string()],
        HardwareCaps::desktop(),
    );

    for (label, prefs) in [
        (
            "calling a CLIENT (high-res preference)",
            client_call_prefs(),
        ),
        (
            "calling a COLLEAGUE (telephony preference)",
            colleague_call_prefs(),
        ),
    ] {
        let profiles = ProfileSet {
            user: UserProfile::new("csr", prefs),
            content: camera_feed.clone(),
            device: laptop.clone(),
            context: ContextProfile::default(),
            network: NetworkProfile::broadband(),
        };
        let composer = Composer {
            formats: &formats,
            services: &services,
            network: &network,
        };
        let composition = composer
            .compose(&profiles, office, peer, &SelectOptions::default())
            .expect("composition runs");
        println!("=== {label} ===");
        match composition.plan {
            Some(plan) => {
                print!("{}", plan.describe(&formats));
                let delivered = plan.steps.last().unwrap().params;
                println!(
                    "delivered: {:.1} fps at {:.0} px → bandwidth {:.0} kbit/s",
                    delivered.get(Axis::FrameRate).unwrap_or(0.0),
                    delivered.get(Axis::PixelCount).unwrap_or(0.0),
                    plan.steps.last().unwrap().input_bps / 1e3,
                );
            }
            None => println!("no chain found"),
        }
        println!();
    }
    println!(
        "The colleague call settles for a lighter configuration — the \
         saturating preferences stop paying for quality past talking-head \
         fidelity, so the optimizer spends less bandwidth."
    );
}
