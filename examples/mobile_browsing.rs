//! Mobile web browsing, the paper's motivating adaptation scenario:
//! an HTML page with a large JPEG photo, requested by a WAP phone that
//! renders WML and 8-colour GIF over a metered GPRS link.
//!
//! Two compositions run: one for the page text (HTML → WML, possibly via
//! the summarizer) and one for the photo (JPEG colour reduction → GIF,
//! the paper's own two-stage example from the introduction).
//!
//! ```text
//! cargo run -p qosc-bench --example mobile_browsing
//! ```

use qosc_core::{Composer, SelectOptions};
use qosc_media::{Axis, AxisDomain, DomainVector, FormatRegistry, VariantSpec};
use qosc_netsim::{Link, Network, Node, Topology};
use qosc_profiles::{
    ContentProfile, ContextProfile, DeviceProfile, HardwareCaps, NetworkProfile, ProfileSet,
    UserProfile,
};
use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};

fn main() {
    let formats = FormatRegistry::with_builtins();

    // Web server — carrier proxy — WAP phone over GPRS (metered!).
    let mut topo = Topology::new();
    let web = topo.add_node(Node::unconstrained("web-server"));
    let proxy = topo.add_node(Node::new("carrier-proxy", 2_000.0, 4e9));
    let phone = topo.add_node(Node::unconstrained("wap-phone"));
    topo.connect_simple(web, proxy, 100e6).unwrap();
    topo.connect(Link {
        a: proxy,
        b: phone,
        capacity_bps: 40_000.0, // GPRS-class
        delay_us: 300_000,
        loss: 0.01,
        price_per_mbit: 0.05, // metered
        price_flat: 0.0,
    })
    .unwrap();
    let network = Network::new(topo);

    let mut services = ServiceRegistry::new();
    for spec in catalog::full_catalog() {
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
    }

    let phone_device = DeviceProfile::new(
        "wap-phone",
        vec!["text/wml".to_string(), "image/gif".to_string()],
        HardwareCaps {
            screen_width: 128,
            screen_height: 160,
            color_depth: 8,
            audio_channels: 1,
            max_sample_rate: 8_000,
            cpu_mips: 50.0,
            memory_bytes: 8e6,
        },
    )
    .with_os("WAP 1.2");

    // --- Request 1: the page text ---
    let text_user = UserProfile::new(
        "commuter",
        SatisfactionProfile::new().with(AxisPreference::new(
            Axis::Fidelity,
            SatisfactionFn::Linear {
                min_acceptable: 5.0,
                ideal: 60.0,
            },
        )),
    )
    .with_budget(0.01);
    let page = ContentProfile::new(
        "news-article",
        vec![VariantSpec {
            format: "text/html".to_string(),
            offered: DomainVector::new().with(
                Axis::Fidelity,
                AxisDomain::Continuous {
                    min: 5.0,
                    max: 100.0,
                },
            ),
        }],
    );
    compose_and_print(
        "page text (HTML → WML)",
        &formats,
        &services,
        &network,
        ProfileSet {
            user: text_user,
            content: page,
            device: phone_device.clone(),
            context: ContextProfile::noisy_commute(),
            network: NetworkProfile::cellular(),
        },
        web,
        phone,
    );

    // --- Request 2: the photo (the paper's 256-colour JPEG → GIF case) ---
    let photo_user = UserProfile::new(
        "commuter",
        SatisfactionProfile::new()
            .with(AxisPreference::new(
                Axis::PixelCount,
                SatisfactionFn::Linear {
                    min_acceptable: 1_024.0,
                    ideal: 128.0 * 160.0,
                },
            ))
            .with(AxisPreference::new(
                Axis::ColorDepth,
                SatisfactionFn::Linear {
                    min_acceptable: 1.0,
                    ideal: 8.0,
                },
            )),
    );
    let photo = ContentProfile::new(
        "headline-photo",
        vec![VariantSpec {
            format: "image/jpeg".to_string(),
            offered: DomainVector::new()
                .with(
                    Axis::PixelCount,
                    AxisDomain::Continuous {
                        min: 1_024.0,
                        max: 2_073_600.0,
                    },
                )
                .with(
                    Axis::ColorDepth,
                    AxisDomain::Continuous {
                        min: 1.0,
                        max: 24.0,
                    },
                ),
        }],
    );
    compose_and_print(
        "photo (JPEG → GIF, colour-reduced)",
        &formats,
        &services,
        &network,
        ProfileSet {
            user: photo_user,
            content: photo,
            device: phone_device,
            context: ContextProfile::noisy_commute(),
            network: NetworkProfile::cellular(),
        },
        web,
        phone,
    );
}

fn compose_and_print(
    label: &str,
    formats: &FormatRegistry,
    services: &ServiceRegistry,
    network: &Network,
    profiles: ProfileSet,
    from: qosc_netsim::NodeId,
    to: qosc_netsim::NodeId,
) {
    let composer = Composer {
        formats,
        services,
        network,
    };
    let composition = composer
        .compose(&profiles, from, to, &SelectOptions::default())
        .expect("composition runs");
    println!("=== {label} ===");
    match composition.plan {
        Some(plan) => print!("{}", plan.describe(formats)),
        None => println!(
            "no chain: {}",
            composition
                .selection
                .failure
                .map(|f| f.to_string())
                .unwrap_or_default()
        ),
    }
    println!();
}
