//! The Section-3 policy example, end to end: "the preference of the
//! user to drop the audio quality of a sport-clip before degrading the
//! video quality when resources are limited".
//!
//! A sport clip is a bundle of a video track and an audio track; the
//! user's budget is swept from ample to starved and the degradation
//! policy decides which track gives way.
//!
//! ```text
//! cargo run -p qosc-bench --example sport_clip_bundle
//! ```

use qosc_core::{compose_bundle, Composer, SelectOptions};
use qosc_media::{Axis, AxisDomain, DomainVector, FormatRegistry, MediaKind, VariantSpec};
use qosc_netsim::{Network, Node, Topology};
use qosc_profiles::{
    AdaptationPolicy, ContentProfile, ContextProfile, DeviceProfile, HardwareCaps, NetworkProfile,
    ProfileSet, UserProfile,
};
use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};

fn main() {
    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("stadium-feed"));
    let proxy = topo.add_node(Node::unconstrained("cdn-proxy"));
    let client = topo.add_node(Node::unconstrained("viewer"));
    topo.connect_simple(server, proxy, 100e6).unwrap();
    topo.connect_simple(proxy, client, 5e6).unwrap();
    let network = Network::new(topo);
    let mut services = ServiceRegistry::new();
    for spec in catalog::full_catalog() {
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
    }

    let video = ContentProfile::new(
        "sport-clip/video",
        vec![VariantSpec {
            format: "video/mpeg2".to_string(),
            offered: DomainVector::new()
                .with(
                    Axis::FrameRate,
                    AxisDomain::Continuous {
                        min: 1.0,
                        max: 30.0,
                    },
                )
                .with(
                    Axis::PixelCount,
                    AxisDomain::Continuous {
                        min: 19_200.0,
                        max: 307_200.0,
                    },
                )
                .with(
                    Axis::ColorDepth,
                    AxisDomain::Continuous {
                        min: 8.0,
                        max: 24.0,
                    },
                ),
        }],
    );
    let audio = ContentProfile::new(
        "sport-clip/audio",
        vec![VariantSpec {
            format: "audio/pcm".to_string(),
            offered: DomainVector::new()
                .with(
                    Axis::SampleRate,
                    AxisDomain::Discrete(vec![8_000.0, 22_050.0, 44_100.0]),
                )
                .with(Axis::Channels, AxisDomain::Discrete(vec![1.0, 2.0]))
                .with(Axis::SampleDepth, AxisDomain::Discrete(vec![8.0, 16.0])),
        }],
    );

    let satisfaction = SatisfactionProfile::new()
        .with(AxisPreference::new(
            Axis::FrameRate,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 30.0,
            },
        ))
        .with(AxisPreference::new(
            Axis::SampleRate,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 44_100.0,
            },
        ));
    let base = ProfileSet {
        user: UserProfile::new("sports-fan", satisfaction).with_policy(AdaptationPolicy {
            degrade_first: vec![MediaKind::Audio],
        }),
        content: video.clone(),
        device: DeviceProfile::new(
            "media-box",
            vec![
                "video/h263".to_string(),
                "video/mpeg1".to_string(),
                "audio/mp3".to_string(),
                "audio/amr".to_string(),
            ],
            HardwareCaps::desktop(),
        ),
        context: ContextProfile::default(),
        network: NetworkProfile::broadband(),
    };
    let contents = [video, audio];
    let composer = Composer {
        formats: &formats,
        services: &services,
        network: &network,
    };

    println!("sport clip = video track + audio track; policy: degrade AUDIO first");
    println!();
    for budget in [None, Some(0.02), Some(0.0033), Some(0.002), Some(0.001)] {
        let mut request = base.clone();
        request.user.budget = budget;
        let bundle = compose_bundle(
            &composer,
            &request,
            &contents,
            server,
            client,
            &SelectOptions::default(),
        )
        .expect("bundle composes");
        let describe = |stream: &qosc_core::BundleStream| match &stream.plan {
            Some(plan) => format!(
                "sat {:.2} (cost {:.4}/s)",
                plan.predicted_satisfaction, plan.total_cost
            ),
            None => "DROPPED".to_string(),
        };
        println!(
            "budget {}: video {}, audio {} → bundle cost {:.4}/s, mean sat {:.2}",
            budget
                .map(|b| format!("{b:.3}/s"))
                .unwrap_or_else(|| "   ∞  ".to_string()),
            describe(&bundle.streams[0]),
            describe(&bundle.streams[1]),
            bundle.total_cost,
            bundle.mean_satisfaction,
        );
    }
    println!();
    println!(
        "As the budget tightens, the audio track is sacrificed first while \
         the video track holds — Section 3's policy, executed. At the very \
         bottom (0.001/s) even the cheapest video chain is unaffordable, so \
         the bundle falls back to audio-only rather than deliver nothing."
    );
}
