//! Resilient streaming on the paper's Figure-6 scenario: T7's host dies
//! mid-session; the framework notices, re-runs the selection algorithm
//! on the surviving graph and resumes over the fallback chain.
//!
//! ```text
//! cargo run -p qosc-bench --example resilient_streaming
//! ```

use qosc_netsim::SimTime;
use qosc_pipeline::{run_resilient, FailureEvent, FailureSchedule, ResilienceConfig};
use qosc_workload::paper;

fn main() {
    let mut scenario = paper::figure6_scenario(true);
    let t7_host = scenario
        .network
        .topology()
        .node_by_name("host-T7")
        .expect("figure-6 names its hosts");

    let schedule =
        FailureSchedule::new().at(SimTime::from_secs(12), FailureEvent::NodeDown(t7_host));
    let config = ResilienceConfig {
        total_duration: SimTime::from_secs(30),
        detection_timeout: SimTime::from_millis(800),
        ..ResilienceConfig::default()
    };
    let run = run_resilient(
        &scenario.formats,
        &scenario.services,
        &mut scenario.network,
        &scenario.profiles,
        scenario.sender_host,
        scenario.receiver_host,
        &schedule,
        &config,
    )
    .expect("resilient run completes");

    println!("timeline (T7's host dies at t = 12 s):");
    for segment in &run.segments {
        let chain = if segment.chain.is_empty() {
            "⚠ dark (detecting / no chain)".to_string()
        } else {
            segment.chain.join(" → ")
        };
        println!(
            "  t = {:5.1} s … {:5.1} s  {:<40}  {:5.1} fps  sat {:.3}",
            segment.start.as_secs_f64(),
            segment.start.as_secs_f64() + segment.duration.as_secs_f64(),
            chain,
            segment.report.delivered_fps,
            segment.report.measured_satisfaction,
        );
    }
    println!();
    println!(
        "re-compositions: {}   recovery gap: {}   time-weighted satisfaction: {:.3}",
        run.recompositions,
        run.recovery_gap
            .map(|g| format!("{:.2} s", g.as_secs_f64()))
            .unwrap_or_else(|| "-".to_string()),
        run.mean_satisfaction
    );
}
