//! Quickstart: compose an adaptation chain for a PDA requesting an
//! MPEG-2 video through a proxy, then stream it and compare predicted
//! vs measured satisfaction.
//!
//! ```text
//! cargo run -p qosc-bench --example quickstart
//! ```

use qosc_core::{Composer, SelectOptions};
use qosc_media::FormatRegistry;
use qosc_netsim::{Network, Node, Topology};
use qosc_pipeline::{run_session, SessionConfig};
use qosc_profiles::{
    ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, ProfileSet, UserProfile,
};
use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};

fn main() {
    // 1. Formats: the built-in catalog of real-world codecs.
    let formats = FormatRegistry::with_builtins();

    // 2. Network: content server — proxy — PDA, with a slow last hop.
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("content-server"));
    let proxy = topo.add_node(Node::new("adaptation-proxy", 4_000.0, 8e9));
    let pda = topo.add_node(Node::unconstrained("pda"));
    topo.connect_simple(server, proxy, 100e6).unwrap();
    topo.connect_simple(proxy, pda, 400e3).unwrap();
    let mut network = Network::new(topo);

    // 3. Services: the realistic trans-coder catalog, hosted on the proxy.
    let mut services = ServiceRegistry::new();
    for spec in catalog::full_catalog() {
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
    }

    // 4. Profiles: who is asking, for what, on which device.
    let profiles = ProfileSet {
        user: UserProfile::demo("alice"),
        content: ContentProfile::demo_video("evening-news"),
        device: DeviceProfile::demo_pda(),
        context: ContextProfile::default(),
        network: NetworkProfile::cellular(),
    };

    // 5. Compose.
    let composer = Composer {
        formats: &formats,
        services: &services,
        network: &network,
    };
    let composition = composer
        .compose(&profiles, server, pda, &SelectOptions::default())
        .expect("composition runs");
    let plan = composition.plan.expect("a chain to the PDA exists");

    println!("selected chain (satisfaction-optimal per the ICDE'07 algorithm):");
    print!("{}", plan.describe(&formats));

    // 6. Stream it and measure.
    let profile = profiles.effective_satisfaction();
    let report = run_session(
        &mut network,
        &services,
        &plan,
        &profile,
        &SessionConfig::default(),
    )
    .expect("session runs");
    println!(
        "streamed {} frames in {:.0} s: delivered {:.1} fps, latency {:.1} ms, \
         measured satisfaction {:.3} (predicted {:.3})",
        report.frames_delivered,
        report.duration_secs,
        report.delivered_fps,
        report.mean_latency_us / 1e3,
        report.measured_satisfaction,
        plan.predicted_satisfaction,
    );
}
