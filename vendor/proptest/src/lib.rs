//! Offline vendored stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this crate implements
//! the property-testing surface the workspace uses:
//!
//! * the [`Strategy`] trait with `prop_map`, ranges, tuples (to six
//!   elements), [`Just`], [`prop_oneof!`], [`collection::vec`],
//!   [`option::of`] and [`bool::ANY`],
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Cases are generated from seeds derived deterministically from the
//! test name and case index, so failures reproduce exactly across runs.
//! There is **no shrinking**: a failure reports its case index and seed
//! and re-raises the original panic. That trades minimal counterexamples
//! for zero dependencies, which is the right trade for an offline CI
//! gate; seeds make failures debuggable.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

pub mod prelude {
    //! The usual glob import, mirroring `proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// The generator handed to each test case.
pub struct TestRng(SmallRng);

impl TestRng {
    /// A generator for one case, fully determined by `seed`.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration (the subset of proptest's knobs the workspace
/// sets).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; this runner never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// FNV-1a, for deriving per-test seed streams from the test name.
fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Drive one property: run `config.cases` cases with deterministic
/// seeds; on panic, report the case index and seed, then re-raise.
pub fn run_cases(config: ProptestConfig, name: &str, case: impl Fn(&mut TestRng)) {
    let base = fnv1a(name);
    for index in 0..config.cases {
        let seed = base ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
        let mut rng = TestRng::from_seed(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest: property `{name}` failed at case {index}/{} (seed {seed:#x})",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `map`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }

    /// Type-erase the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// [`Strategy::prop_map`]'s adapter.
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of its argument.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::RngExt::random_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::RngExt::random_range(rng, self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Uniform choice among boxed alternatives (built by [`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.0.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        let pick = rand::RngExt::random_range(rng, 0..self.0.len());
        self.0[pick].generate(rng)
    }
}

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).
    use super::{Strategy, TestRng};

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Fair coin.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rand::RngExt::random_bool(rng, 0.5)
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).
    use super::{Strategy, TestRng};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// [`vec`]'s strategy type.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::RngExt::random_range(rng, self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`proptest::option::of`).
    use super::{Strategy, TestRng};

    /// `None` one time in four, `Some(inner)` otherwise (matching
    /// upstream's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy { inner }
    }

    /// [`of`]'s strategy type.
    pub struct OfStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rand::RngExt::random_bool(rng, 0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Define property tests: each `fn name(pattern in strategy, ..) { .. }`
/// becomes a `#[test]` running [`run_cases`] over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($config) $($rest)* }
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(config, stringify!($name), |rng| {
                $(let $pat = $crate::Strategy::generate(&($strategy), rng);)+
                $body
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Assert within a property (plain `assert!` here; the runner adds case
/// context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Discard the current case when its precondition does not hold. The
/// case counts as passed (this runner generates no replacement case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($args:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among alternative strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_seed(99);
        let mut b = TestRng::from_seed(99);
        let s = (0u64..100, 0.0f64..1.0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a).0, s.generate(&mut b).0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_maps_compose(x in (0usize..10).prop_map(|i| i * 2), b in crate::bool::ANY) {
            prop_assert!(x < 20 && x % 2 == 0);
            let _coin: bool = b;
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0i32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }

        #[test]
        fn oneof_and_just((tag, flag) in (prop_oneof![Just(1u8), Just(2u8)], crate::option::of(0u8..3))) {
            prop_assert!(tag == 1 || tag == 2);
            if let Some(f) = flag {
                prop_assert!(f < 3);
            }
        }
    }
}
