//! Offline vendored stand-in for `criterion`.
//!
//! The build container has no crates.io access, so this crate implements
//! the benchmarking surface the workspace's `crates/bench` harnesses
//! use: [`Criterion`] with `sample_size` / `warm_up_time` /
//! `measurement_time` builders, `bench_function`, `benchmark_group`
//! (with `bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (both the plain and the
//! `name/config/targets` forms).
//!
//! Measurement is deliberately simple: each benchmark warms up for the
//! configured duration, then runs `sample_size` samples, each sample
//! batching enough iterations to cover `measurement_time /
//! sample_size`, and reports the median, minimum and maximum per-call
//! wall-clock time. There is no outlier analysis, no saved baselines
//! and no HTML report — just stable, comparable numbers on stdout.

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, mirroring criterion's
/// `function_name/parameter` naming.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Just the parameter, for groups benching one function over many
    /// inputs.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Handed to each benchmark closure; [`Bencher::iter`] runs and times
/// the measured routine.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Per-call times, one entry per sample, filled by `iter`.
    samples: Vec<f64>,
}

impl Bencher<'_> {
    /// Measure `routine`. The return value is captured (so the
    /// computation cannot be optimized away) and dropped.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run for the configured wall-clock budget and use the
        // observed rate to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let samples = self.config.sample_size.max(1);
        let per_sample = self.config.measurement_time.as_secs_f64() / samples as f64;
        let batch = ((per_sample / per_call.max(1e-9)) as u64).max(1);

        self.samples.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

/// Shared measurement settings.
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.config.sample_size = n;
        self
    }

    /// Wall-clock warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.config.warm_up_time = d;
        self
    }

    /// Wall-clock measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.config.measurement_time = d;
        self
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_one(&self.config, id, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            config: &self.config,
            name: name.into(),
        }
    }

    /// Report end-of-run (normally invoked by [`criterion_main!`]).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing the harness configuration.
pub struct BenchmarkGroup<'a> {
    config: &'a Config,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(self.config, &format!("{}/{id}", self.name), f);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(self.config, &format!("{}/{id}", self.name), |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one(config: &Config, id: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        config,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let mut sorted = bencher.samples.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    if sorted.is_empty() {
        println!("{id:<56} (no samples: benchmark closure never called iter)");
        return;
    }
    let median = sorted[sorted.len() / 2];
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];
    println!(
        "{id:<56} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.3} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.3} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Collect benchmark functions into a runnable group, in either the
/// plain or the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_measures() {
        let mut c = fast_config();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_ids() {
        let mut c = fast_config();
        let mut group = c.benchmark_group("grp");
        group.bench_function("plain", |b| b.iter(|| 2 * 2));
        group.bench_with_input(BenchmarkId::new("with", 4), &4u64, |b, &n| {
            b.iter(|| n.wrapping_mul(3))
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n + 1)
        });
        group.finish();
    }

    mod as_macro {
        use super::super::*;
        use super::fast_config;

        fn target(c: &mut Criterion) {
            c.bench_function("macro_target", |b| b.iter(|| 0u8));
        }

        criterion_group! {
            name = benches;
            config = fast_config();
            targets = target
        }

        criterion_group!(plain_benches, target);

        #[test]
        fn both_forms_run() {
            benches();
            plain_benches();
        }
    }
}
