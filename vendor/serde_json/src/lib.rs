//! Offline vendored stand-in for `serde_json`.
//!
//! Renders the vendored serde's [`Value`] tree to JSON text and parses
//! JSON text back. Output is canonical for a given type (struct fields
//! in declaration order), which the composition cache exploits for
//! request keying. Numbers that are mathematically integers print
//! without a fractional part, matching serde_json's treatment of
//! integer-typed fields; all other floats print via Rust's shortest
//! round-trippable `Display`.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(x) => render_number(*x, out),
        Value::Str(s) => render_string(s, out),
        Value::Arr(items) => render_seq(items.iter(), indent, depth, out, '[', ']', |item, out| {
            render(item, indent, depth + 1, out)
        }),
        Value::Obj(entries) => render_seq(
            entries.iter(),
            indent,
            depth,
            out,
            '{',
            '}',
            |(k, v), out| {
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(v, indent, depth + 1, out);
            },
        ),
    }
}

fn render_seq<I: ExactSizeIterator>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut each: impl FnMut(I::Item, &mut String),
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        each(item, out);
    }
    if let Some(width) = indent {
        if !empty {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

/// Integral values print as integers (serde_json behavior for integer
/// fields); everything else uses shortest-round-trip `Display`.
/// Non-finite values have no JSON form and render as `null`.
fn render_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.0e15 {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON document",
            parser.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {} of JSON document",
                expected as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {} of JSON document",
                self.pos
            ))),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string in JSON document")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not used by any workspace
                            // document; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape in JSON string")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in JSON document"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-3", "2.5", "1e3", "\"hi\""] {
            let v = parse_value(text).unwrap();
            let mut out = String::new();
            render(&v, None, 0, &mut out);
            let back = parse_value(&out).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let text = r#"{"a": [1, 2.75, null], "b": {"c": "x\ny", "d": true}}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        let compact = {
            let mut out = String::new();
            render(&v, None, 0, &mut out);
            out
        };
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = {
            let mut out = String::new();
            render(&v, Some(2), 0, &mut out);
            out
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"a\": ["));
    }

    #[test]
    fn floats_print_shortest_round_trip() {
        let mut out = String::new();
        render_number(23.0 / 30.0, &mut out);
        assert_eq!(out.parse::<f64>().unwrap(), 23.0 / 30.0);
        let mut int_out = String::new();
        render_number(48_000.0, &mut int_out);
        assert_eq!(int_out, "48000");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{\"a\": }").is_err());
        assert!(parse_value("[1, 2").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(from_str::<f64>("\"not a number\"").is_err());
    }
}
