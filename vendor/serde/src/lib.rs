//! Offline vendored stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors
//! a compact serialization framework with the same surface the code
//! uses: `#[derive(Serialize, Deserialize)]`, externally tagged enums,
//! transparent newtypes, and the std types that appear in profile
//! definitions (`Option`, `Vec`, fixed-size arrays, tuples, maps).
//!
//! Instead of serde's generic `Serializer`/`Deserializer` visitors, this
//! implementation goes through an explicit [`Value`] tree; `serde_json`
//! (also vendored) renders and parses that tree. The JSON it produces
//! uses serde's conventions (field names as keys, externally tagged
//! enums, newtypes transparent), so documents written against upstream
//! serde — like `examples/data/request.json` — parse unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization tree (what `serde_json::Value` is
/// to upstream serde). Object entries preserve insertion order, which
/// makes serialized output canonical for a given type — the composition
/// cache relies on that for request keying.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (all workspace numerics fit `f64` exactly).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, when this is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Look up an object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A short display name for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// A deserialization error: what was expected, what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error carrying `message`.
    pub fn msg(message: impl Into<String>) -> DeError {
        DeError {
            message: message.into(),
        }
    }

    /// "expected X, found Y" against a concrete value.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError::msg(format!("expected {what}, found {}", found.kind()))
    }

    /// Prefix the message with the field it occurred under.
    pub fn in_field(self, field: &str) -> DeError {
        DeError::msg(format!("{field}: {}", self.message))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from `value`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Derive-macro helper: pull `name` out of an object's entries and
/// deserialize it. Missing fields read as `Null`, so `Option` fields
/// default to `None` exactly as with upstream serde.
pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, DeError> {
    let value = entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null);
    T::from_value(value).map_err(|e| e.in_field(name))
}

// ---------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("boolean", other)),
        }
    }
}

macro_rules! number_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, DeError> {
                match value {
                    Value::Num(x) => {
                        let cast = *x as $t;
                        if cast as f64 == *x {
                            Ok(cast)
                        } else {
                            Err(DeError::msg(format!(
                                "number {x} out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
number_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, DeError> {
                match value {
                    Value::Num(x) => Ok(*x as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, DeError> {
        match value {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<[T; N], DeError> {
        let items = value
            .as_arr()
            .ok_or_else(|| DeError::expected("array", value))?;
        if items.len() != N {
            return Err(DeError::msg(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::msg("array length changed during deserialization"))
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<($($name,)+), DeError> {
                let items = value.as_arr().ok_or_else(|| DeError::expected("array", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::msg(format!(
                        "expected tuple of length {expected}, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = value
            .as_obj()
            .ok_or_else(|| DeError::expected("object", value))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v).map_err(|e| e.in_field(k))?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(2.5f64).to_value(), Value::Num(2.5));
    }

    #[test]
    fn array_length_is_checked() {
        let v = Value::Arr(vec![Value::Num(1.0)]);
        assert!(<[f64; 2]>::from_value(&v).is_err());
        assert_eq!(<[f64; 1]>::from_value(&v).unwrap(), [1.0]);
    }

    #[test]
    fn integer_range_is_checked() {
        assert!(u8::from_value(&Value::Num(300.0)).is_err());
        assert_eq!(u8::from_value(&Value::Num(200.0)).unwrap(), 200);
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
    }

    #[test]
    fn missing_field_reads_as_null() {
        let entries = vec![("present".to_string(), Value::Num(1.0))];
        let missing: Option<f64> = field(&entries, "absent").unwrap();
        assert_eq!(missing, None);
        assert!(field::<f64>(&entries, "absent").is_err());
    }
}
