//! Offline vendored stand-in for `parking_lot`.
//!
//! The build container has no crates.io access, so this crate provides
//! the `parking_lot` locking API on top of `std::sync`. The semantic
//! difference that matters to callers is preserved: `lock()`, `read()`
//! and `write()` return guards directly (no poisoning `Result`) — a
//! panicked writer does not wedge the lock for everyone else.

use std::sync::PoisonError;

/// A mutual-exclusion lock with the `parking_lot` guard-returning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Poison from a
    /// panicked holder is ignored, as in `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with the `parking_lot` guard-returning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_stays_usable() {
        let m = Arc::new(Mutex::new(0));
        let inner = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = inner.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
