//! The concrete generators: both are xoshiro256++ (Blackman &amp; Vigna),
//! a small, fast generator with a 256-bit state — more than adequate for
//! workload generation and simulation jitter.

use crate::{splitmix64, RngCore, SeedableRng};

/// xoshiro256++ behind a seedable facade.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; splitmix64 cannot
        // produce four zero words from any seed, but belt and braces:
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

macro_rules! named_rng {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name(Xoshiro256);

        impl SeedableRng for $name {
            fn seed_from_u64(state: u64) -> $name {
                $name(Xoshiro256::from_u64(state))
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
    };
}

named_rng! {
    /// The "small, fast" generator.
    SmallRng
}
named_rng! {
    /// The "standard" generator (same engine as [`SmallRng`] in this
    /// vendored build; no workspace test pins their relative streams).
    StdRng
}
