//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access and no crates.io mirror, so
//! the workspace vendors the small API subset it actually uses:
//!
//! * [`SeedableRng::seed_from_u64`] — every generator in the workspace is
//!   explicitly seeded (reproducibility is a core requirement of the
//!   experiment harness),
//! * [`RngExt::random_range`] over integer and float ranges,
//! * [`RngExt::random_bool`] for Bernoulli draws,
//! * [`rngs::SmallRng`] / [`rngs::StdRng`] — both xoshiro256++ here.
//!
//! The streams are deterministic and stable across runs and platforms,
//! which is all the workspace relies on; they do *not* match the upstream
//! `rand` streams bit-for-bit (no test pins upstream values).

pub mod rngs;

/// A generator that can produce raw 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: expands a 64-bit seed into arbitrarily many words; used
/// for seeding and nothing else (its successive outputs are decorrelated
/// enough to fill a xoshiro state).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ranges a uniform value can be drawn from (the argument of
/// [`RngExt::random_range`]).
pub trait SampleRange<T> {
    /// Draw one uniform value from the range. Panics when empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience draws on top of [`RngCore`] (the `rand 0.10` extension
/// trait the workspace imports).
pub trait RngExt: RngCore {
    /// A uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// `Rng` is a synonym for [`RngExt`] kept for call sites written against
/// other `rand` versions.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(3.0..5.0);
            assert!((3.0..5.0).contains(&x));
            let y: usize = rng.random_range(2..9);
            assert!((2..9).contains(&y));
            let z: u64 = rng.random_range(10..=12);
            assert!((10..=12).contains(&z));
            let w: f64 = rng.random_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&w));
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
