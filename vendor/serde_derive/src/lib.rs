//! Offline vendored stand-in for `serde_derive`.
//!
//! Derives the vendored serde's `Serialize` / `Deserialize` traits
//! (value-tree based, see `vendor/serde`) for the shapes the workspace
//! uses: structs with named fields, tuple structs (newtypes serialize
//! transparently, wider tuples as arrays), unit structs, and enums with
//! unit / newtype / tuple / struct variants under serde's externally
//! tagged representation.
//!
//! Implemented directly on `proc_macro` token streams — no `syn` or
//! `quote` (nothing external is available offline). The parser handles
//! exactly the grammar that appears in this workspace: attributes and
//! doc comments are skipped, visibilities are skipped, generic type
//! definitions are rejected loudly (none exist in the workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(item.serialize_impl())
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(item.deserialize_impl())
}

fn render(source: String) -> TokenStream {
    source
        .parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid Rust: {e}\n{source}"))
}

/// The shapes of a field list.
enum Fields {
    Unit,
    /// Tuple fields; only the arity matters.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;
    skip_attributes_and_vis(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored) does not support generic type `{name}`");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Item::Struct {
                    name,
                    fields: Fields::Named(parse_named_fields(group.stream())),
                }
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Item::Struct {
                    name,
                    fields: Fields::Tuple(count_tuple_fields(group.stream())),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                fields: Fields::Unit,
            },
            other => panic!("unexpected token after `struct {name}`: {other:?}"),
        },
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                    group.stream()
                }
                other => panic!("unexpected token after `enum {name}`: {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive applied to unsupported item kind `{other}`"),
    }
}

/// Advance past `#[...]` attributes (incl. doc comments) and a `pub`
/// visibility with optional restriction group.
fn skip_attributes_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(ident)) => {
            *pos += 1;
            ident.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Skip a type (or discriminant expression): everything up to the next
/// comma that sits outside `<...>` nesting. Groups are single trees, so
/// tuples and array types need no special casing.
fn skip_to_field_separator(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut pos));
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        skip_to_field_separator(&tokens, &mut pos);
        pos += 1; // the comma (or one past the end)
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut count = 0usize;
    while pos < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        count += 1;
        skip_to_field_separator(&tokens, &mut pos);
        pos += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(group.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant, then the trailing comma.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            skip_to_field_separator(&tokens, &mut pos);
        }
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            None => {}
            other => panic!("expected `,` after variant `{name}`, found {other:?}"),
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------

impl Item {
    fn serialize_impl(&self) -> String {
        match self {
            Item::Struct { name, fields } => {
                let body = match fields {
                    Fields::Unit => "::serde::Value::Null".to_string(),
                    Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                            .collect();
                        format!("::serde::Value::Arr(vec![{}])", items.join(", "))
                    }
                    Fields::Named(names) => obj_expr(names, "&self."),
                };
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                     }}"
                )
            }
            Item::Enum { name, variants } => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|variant| {
                        let v = &variant.name;
                        match &variant.fields {
                            Fields::Unit => format!(
                                "{name}::{v} => ::serde::Value::Str(String::from(\"{v}\"))"
                            ),
                            Fields::Tuple(1) => format!(
                                "{name}::{v}(x0) => ::serde::Value::Obj(vec![(String::from(\"{v}\"), \
                                 ::serde::Serialize::to_value(x0))])"
                            ),
                            Fields::Tuple(n) => {
                                let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                                let items: Vec<String> = (0..*n)
                                    .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                    .collect();
                                format!(
                                    "{name}::{v}({}) => ::serde::Value::Obj(vec![(String::from(\"{v}\"), \
                                     ::serde::Value::Arr(vec![{}]))])",
                                    binds.join(", "),
                                    items.join(", ")
                                )
                            }
                            Fields::Named(field_names) => {
                                let obj = obj_expr(field_names, "");
                                format!(
                                    "{name}::{v} {{ {} }} => ::serde::Value::Obj(vec![(String::from(\"{v}\"), {obj})])",
                                    field_names.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
                     }}",
                    arms.join(",\n")
                )
            }
        }
    }

    fn deserialize_impl(&self) -> String {
        match self {
            Item::Struct { name, fields } => {
                let body = match fields {
                    Fields::Unit => format!("::core::result::Result::Ok({name})"),
                    Fields::Tuple(1) => format!(
                        "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
                    ),
                    Fields::Tuple(n) => format!(
                        "{}\n::core::result::Result::Ok({name}({}))",
                        tuple_prelude(name, *n),
                        tuple_elems(*n)
                    ),
                    Fields::Named(names) => format!(
                        "let entries = value.as_obj().ok_or_else(|| \
                         ::serde::DeError::expected(\"object for {name}\", value))?;\n\
                         ::core::result::Result::Ok({name} {{ {} }})",
                        named_inits(names)
                    ),
                };
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> \
                     ::core::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                     }}"
                )
            }
            Item::Enum { name, variants } => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| matches!(v.fields, Fields::Unit))
                    .map(|v| format!("\"{0}\" => ::core::result::Result::Ok({name}::{0})", v.name))
                    .collect();
                let tagged_arms: Vec<String> = variants
                    .iter()
                    .filter_map(|variant| {
                        let v = &variant.name;
                        match &variant.fields {
                            Fields::Unit => None,
                            Fields::Tuple(1) => Some(format!(
                                "\"{v}\" => ::core::result::Result::Ok({name}::{v}(\
                                 ::serde::Deserialize::from_value(inner).map_err(|e| e.in_field(\"{v}\"))?))"
                            )),
                            Fields::Tuple(n) => Some(format!(
                                "\"{v}\" => {{ let value = inner; {}\n\
                                 ::core::result::Result::Ok({name}::{v}({})) }}",
                                tuple_prelude(&format!("{name}::{v}"), *n),
                                tuple_elems(*n)
                            )),
                            Fields::Named(field_names) => Some(format!(
                                "\"{v}\" => {{ let entries = inner.as_obj().ok_or_else(|| \
                                 ::serde::DeError::expected(\"object for {name}::{v}\", inner))?;\n\
                                 ::core::result::Result::Ok({name}::{v} {{ {} }}) }}",
                                named_inits(field_names)
                            )),
                        }
                    })
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> \
                     ::core::result::Result<Self, ::serde::DeError> {{\n\
                     match value {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                     {unit}\n\
                     other => ::core::result::Result::Err(::serde::DeError::msg(\
                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Obj(entries) if entries.len() == 1 => {{\n\
                     let (tag, inner) = &entries[0];\n\
                     match tag.as_str() {{\n\
                     {tagged}\n\
                     other => ::core::result::Result::Err(::serde::DeError::msg(\
                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }}\n\
                     }},\n\
                     other => ::core::result::Result::Err(::serde::DeError::expected(\
                     \"{name} variant\", other)),\n\
                     }}\n\
                     }}\n\
                     }}",
                    unit = if unit_arms.is_empty() {
                        String::new()
                    } else {
                        format!("{},", unit_arms.join(",\n"))
                    },
                    tagged = if tagged_arms.is_empty() {
                        String::new()
                    } else {
                        format!("{},", tagged_arms.join(",\n"))
                    },
                )
            }
        }
    }
}

/// `Value::Obj(vec![("f", to_value(<prefix>f)), ...])`.
fn obj_expr(names: &[String], prefix: &str) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|f| format!("(String::from(\"{f}\"), ::serde::Serialize::to_value({prefix}{f}))"))
        .collect();
    format!("::serde::Value::Obj(vec![{}])", entries.join(", "))
}

/// `f: serde::field(entries, "f")?, ...` initializers.
fn named_inits(names: &[String]) -> String {
    names
        .iter()
        .map(|f| format!("{f}: ::serde::field(entries, \"{f}\")?"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Shared guard for array-represented tuples: bind `items`, check arity.
fn tuple_prelude(display_name: &str, n: usize) -> String {
    format!(
        "let items = value.as_arr().ok_or_else(|| \
         ::serde::DeError::expected(\"array for {display_name}\", value))?;\n\
         if items.len() != {n} {{ return ::core::result::Result::Err(::serde::DeError::msg(\
         format!(\"expected {n} elements for {display_name}, found {{}}\", items.len()))); }}"
    )
}

/// `from_value(&items[0])?, from_value(&items[1])?, ...`.
fn tuple_elems(n: usize) -> String {
    (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
        .collect::<Vec<_>>()
        .join(", ")
}
