//! Offline vendored stand-in for `crossbeam`.
//!
//! The only crossbeam facility the workspace uses is scoped threads,
//! which the standard library has provided natively since Rust 1.63
//! (`std::thread::scope` is the stabilized descendant of
//! `crossbeam::thread::scope`). This crate re-exports the std API under
//! the crossbeam module path so call sites read as the design documents
//! describe; the semantics — spawned threads may borrow from the
//! enclosing stack frame and are all joined before `scope` returns —
//! are identical.

pub mod thread {
    //! Scoped threads (std-backed).
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

/// Top-level alias matching `crossbeam::scope` call sites.
pub use std::thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 10);
    }
}
