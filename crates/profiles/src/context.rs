//! Context profiles.
//!
//! "A context profile would include any dynamic information that is part
//! of the context or current status of the user. Context information may
//! include physical (e.g. location, weather, temperature), social (e.g.
//! sitting for dinner), or organizational information (e.g. acting senior
//! manager). … Resource adaptation engines can use these elements to
//! deliver the best experience to the user." — Section 3.
//!
//! We keep the MPEG-21-style natural-environment fields the adaptation
//! engine can act on — ambient noise and illumination — plus free-form
//! location/activity strings, and implement the "act on" part: a context
//! *adjusts* the user's satisfaction profile before optimization.

use qosc_media::Axis;
use qosc_satisfaction::{AxisPreference, SatisfactionProfile};
use serde::{Deserialize, Serialize};

/// The user's current context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextProfile {
    /// Where the user is (free-form, informational).
    pub location: String,
    /// What the user is doing (free-form, informational).
    pub activity: String,
    /// Ambient noise level in `[0, 1]` (0 = silent room, 1 = concert).
    pub ambient_noise: f64,
    /// Ambient illumination in `[0, 1]` (0 = dark, 1 = direct sunlight).
    pub illumination: f64,
    /// Whether the user is in motion (commuting, walking).
    pub mobile: bool,
}

impl Default for ContextProfile {
    /// A quiet, well-lit, stationary context that adjusts nothing.
    fn default() -> ContextProfile {
        ContextProfile {
            location: "unspecified".to_string(),
            activity: "unspecified".to_string(),
            ambient_noise: 0.0,
            illumination: 0.7,
            mobile: false,
        }
    }
}

impl ContextProfile {
    /// A noisy commute: high noise, mobile, moderate light.
    pub fn noisy_commute() -> ContextProfile {
        ContextProfile {
            location: "train".to_string(),
            activity: "commuting".to_string(),
            ambient_noise: 0.8,
            illumination: 0.6,
            mobile: true,
        }
    }

    /// Adjust a satisfaction profile for this context. The adjustments
    /// are deliberately simple, documented heuristics — the point the
    /// paper makes is *that* context feeds the optimization, not a
    /// specific psychoacoustic model:
    ///
    /// * ambient noise ≥ 0.5 halves the weight of audio axes (fine audio
    ///   quality is wasted in a loud environment),
    /// * illumination ≥ 0.9 (direct sunlight) halves the weight of the
    ///   colour-depth axis (washed-out screens),
    /// * `mobile` halves the weight of the pixel-count axis (small
    ///   glanceable viewing).
    ///
    /// Weights only matter under the weighted combination of [29]; under
    /// plain Equa. 1 the adjusted profile equals the original scoring.
    pub fn adjust(&self, profile: &SatisfactionProfile) -> SatisfactionProfile {
        let mut adjusted = SatisfactionProfile::new().with_combiner(profile.combiner.clone());
        for pref in profile.preferences() {
            let mut weight = pref.weight;
            let audio_axis = matches!(
                pref.axis,
                Axis::SampleRate | Axis::Channels | Axis::SampleDepth
            );
            if self.ambient_noise >= 0.5 && audio_axis {
                weight *= 0.5;
            }
            if self.illumination >= 0.9 && pref.axis == Axis::ColorDepth {
                weight *= 0.5;
            }
            if self.mobile && pref.axis == Axis::PixelCount {
                weight *= 0.5;
            }
            adjusted.insert(AxisPreference::weighted(
                pref.axis,
                pref.function.clone(),
                weight,
            ));
        }
        // Preserve the weighted-combination marker by refreshing weights.
        if matches!(
            profile.combiner,
            qosc_satisfaction::Combiner::WeightedHarmonic { .. }
        ) {
            adjusted.use_weighted_combination();
        }
        adjusted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::ParamVector;
    use qosc_satisfaction::SatisfactionFn;

    fn av_profile() -> SatisfactionProfile {
        let mut p = SatisfactionProfile::new()
            .with(AxisPreference::weighted(
                Axis::FrameRate,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 30.0,
                },
                1.0,
            ))
            .with(AxisPreference::weighted(
                Axis::SampleRate,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 44_100.0,
                },
                1.0,
            ));
        p.use_weighted_combination();
        p
    }

    #[test]
    fn default_context_is_identity_on_weights() {
        let profile = av_profile();
        let adjusted = ContextProfile::default().adjust(&profile);
        for (orig, adj) in profile.preferences().iter().zip(adjusted.preferences()) {
            assert_eq!(orig.weight, adj.weight);
        }
    }

    #[test]
    fn noise_downweights_audio() {
        let profile = av_profile();
        let adjusted = ContextProfile::noisy_commute().adjust(&profile);
        assert_eq!(adjusted.get(Axis::SampleRate).unwrap().weight, 0.5);
        assert_eq!(adjusted.get(Axis::FrameRate).unwrap().weight, 1.0);
    }

    #[test]
    fn noisy_context_raises_score_of_audio_poor_config() {
        // Poor audio, great video: the noisy context should judge this
        // configuration *less harshly* than the quiet one.
        let profile = av_profile();
        let config =
            ParamVector::from_pairs([(Axis::FrameRate, 30.0), (Axis::SampleRate, 8_000.0)]);
        let quiet = ContextProfile::default().adjust(&profile).score(&config);
        let noisy = ContextProfile::noisy_commute()
            .adjust(&profile)
            .score(&config);
        assert!(noisy > quiet, "noisy {noisy} should exceed quiet {quiet}");
    }

    #[test]
    fn sunlight_downweights_color_depth() {
        let profile = SatisfactionProfile::new().with(AxisPreference::weighted(
            Axis::ColorDepth,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 24.0,
            },
            2.0,
        ));
        let context = ContextProfile {
            illumination: 1.0,
            ..ContextProfile::default()
        };
        let adjusted = context.adjust(&profile);
        assert_eq!(adjusted.get(Axis::ColorDepth).unwrap().weight, 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let context = ContextProfile::noisy_commute();
        let json = serde_json::to_string(&context).unwrap();
        assert_eq!(
            serde_json::from_str::<ContextProfile>(&json).unwrap(),
            context
        );
    }
}
