//! Device profiles.
//!
//! "To ensure that a requested content can be properly rendered on the
//! user's device, it is essential to include the capabilities and
//! characteristics of the device into the content adaptation process."
//! — Section 3. The paper points at UAProf / MPEG-21 DIA; we keep the
//! fields the composition consumes: the decoder list (which becomes the
//! receiver vertex's input links, Section 4.2) and hardware caps (which
//! clamp the feasible QoS domains).

use crate::{ProfileError, Result};
use qosc_media::{Axis, FormatId, FormatRegistry, ParamVector};
use serde::{Deserialize, Serialize};

/// Hardware characteristics that cap deliverable quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareCaps {
    /// Screen width in pixels.
    pub screen_width: u32,
    /// Screen height in pixels.
    pub screen_height: u32,
    /// Display colour depth in bits per pixel.
    pub color_depth: u32,
    /// Number of audio output channels (0 = no audio).
    pub audio_channels: u32,
    /// Maximum audio sample rate in Hz.
    pub max_sample_rate: u32,
    /// Device CPU capacity in abstract MIPS (client-side rendering cost).
    pub cpu_mips: f64,
    /// Device memory in bytes.
    pub memory_bytes: f64,
}

impl HardwareCaps {
    /// Caps of a desktop PC.
    pub fn desktop() -> HardwareCaps {
        HardwareCaps {
            screen_width: 1920,
            screen_height: 1080,
            color_depth: 24,
            audio_channels: 2,
            max_sample_rate: 48_000,
            cpu_mips: 10_000.0,
            memory_bytes: 8e9,
        }
    }

    /// Caps of a 2007-era PDA (the paper's motivating small device).
    pub fn pda() -> HardwareCaps {
        HardwareCaps {
            screen_width: 320,
            screen_height: 240,
            color_depth: 16,
            audio_channels: 1,
            max_sample_rate: 22_050,
            cpu_mips: 400.0,
            memory_bytes: 64e6,
        }
    }

    /// The QoS caps this hardware imposes, as a parameter vector the
    /// graph builder meets domains against: pixel count, colour depth,
    /// channels, sample rate.
    pub fn quality_caps(&self) -> ParamVector {
        ParamVector::from_pairs([
            (
                Axis::PixelCount,
                f64::from(self.screen_width) * f64::from(self.screen_height),
            ),
            (Axis::ColorDepth, f64::from(self.color_depth)),
            (Axis::Channels, f64::from(self.audio_channels)),
            (Axis::SampleRate, f64::from(self.max_sample_rate)),
        ])
    }
}

/// A rendering device: decoders + hardware + software identification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Device model name.
    pub name: String,
    /// Operating system (vendor and version), informational.
    pub os: String,
    /// Formats the device can decode, by registry name. "The input links
    /// of the receiver are exactly the possible decoders available at the
    /// receiver's device" (Section 4.2). Order is the deterministic
    /// listing order.
    pub decoders: Vec<String>,
    /// Hardware capability caps.
    pub hardware: HardwareCaps,
}

impl DeviceProfile {
    /// A device with the given name, decoders and hardware.
    pub fn new(
        name: impl Into<String>,
        decoders: Vec<String>,
        hardware: HardwareCaps,
    ) -> DeviceProfile {
        DeviceProfile {
            name: name.into(),
            os: String::new(),
            decoders,
            hardware,
        }
    }

    /// Builder-style OS string.
    pub fn with_os(mut self, os: impl Into<String>) -> DeviceProfile {
        self.os = os.into();
        self
    }

    /// Resolve the decoder list against `registry`, in listing order.
    pub fn resolve_decoders(&self, registry: &FormatRegistry) -> Result<Vec<FormatId>> {
        self.decoders
            .iter()
            .map(|name| registry.lookup(name).map_err(ProfileError::from))
            .collect()
    }

    /// Validate structure: at least one decoder, no duplicates.
    pub fn validate(&self) -> Result<()> {
        if self.decoders.is_empty() {
            return Err(ProfileError::Invalid(format!(
                "device `{}` has no decoders",
                self.name
            )));
        }
        for (i, a) in self.decoders.iter().enumerate() {
            if self.decoders[..i].contains(a) {
                return Err(ProfileError::Invalid(format!(
                    "device `{}` lists decoder `{a}` twice",
                    self.name
                )));
            }
        }
        Ok(())
    }

    /// A demo PDA that can decode H.263 video and GIF images.
    pub fn demo_pda() -> DeviceProfile {
        DeviceProfile::new(
            "demo-pda",
            vec!["video/h263".to_string(), "image/gif".to_string()],
            HardwareCaps::pda(),
        )
        .with_os("Palmish 5.4")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_caps_reflect_hardware() {
        let caps = HardwareCaps::pda().quality_caps();
        assert_eq!(caps.get(Axis::PixelCount), Some(320.0 * 240.0));
        assert_eq!(caps.get(Axis::ColorDepth), Some(16.0));
        assert_eq!(caps.get(Axis::Channels), Some(1.0));
        assert_eq!(caps.get(Axis::SampleRate), Some(22_050.0));
        assert_eq!(
            caps.get(Axis::FrameRate),
            None,
            "hardware does not cap frame rate"
        );
    }

    #[test]
    fn resolve_decoders_in_order() {
        let registry = FormatRegistry::with_builtins();
        let device = DeviceProfile::demo_pda();
        let ids = device.resolve_decoders(&registry).unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(registry.name(ids[0]), "video/h263");
        assert_eq!(registry.name(ids[1]), "image/gif");
    }

    #[test]
    fn unknown_decoder_fails() {
        let registry = FormatRegistry::new();
        assert!(DeviceProfile::demo_pda()
            .resolve_decoders(&registry)
            .is_err());
    }

    #[test]
    fn validate_rejects_empty_and_duplicate_decoders() {
        let none = DeviceProfile::new("x", vec![], HardwareCaps::pda());
        assert!(none.validate().is_err());
        let dup = DeviceProfile::new(
            "y",
            vec!["a".to_string(), "a".to_string()],
            HardwareCaps::pda(),
        );
        assert!(dup.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let device = DeviceProfile::demo_pda();
        let json = serde_json::to_string(&device).unwrap();
        assert_eq!(
            serde_json::from_str::<DeviceProfile>(&json).unwrap(),
            device
        );
    }
}
