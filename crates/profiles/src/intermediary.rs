//! Intermediary (proxy) profiles.
//!
//! "For the purpose of content adaptation, the profile of an intermediary
//! would usually include a description of all the adaptation services
//! that an intermediary can provide. … The intermediary profile would
//! also include information about the available resources at the
//! intermediary (such as CPU cycles, memory) to carry out the services."
//! — Section 3.

use crate::service_spec::ServiceSpec;
use crate::{ProfileError, Result};
use serde::{Deserialize, Serialize};

/// One adaptation proxy: its host identity, resources and advertised
/// services.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntermediaryProfile {
    /// Name of the network node this intermediary runs on (resolved
    /// against the scenario topology by name).
    pub node: String,
    /// CPU available for adaptation work, abstract MIPS.
    pub cpu_mips: f64,
    /// Memory available for adaptation work, bytes.
    pub memory_bytes: f64,
    /// Advertised trans-coding services, in listing order.
    pub services: Vec<ServiceSpec>,
}

impl IntermediaryProfile {
    /// An intermediary on `node` with the given services and generous
    /// resources.
    pub fn new(node: impl Into<String>, services: Vec<ServiceSpec>) -> IntermediaryProfile {
        IntermediaryProfile {
            node: node.into(),
            cpu_mips: 4_000.0,
            memory_bytes: 8e9,
            services,
        }
    }

    /// Builder-style resources.
    pub fn with_resources(mut self, cpu_mips: f64, memory_bytes: f64) -> IntermediaryProfile {
        self.cpu_mips = cpu_mips;
        self.memory_bytes = memory_bytes;
        self
    }

    /// Validate every advertised service and check name uniqueness.
    pub fn validate(&self) -> Result<()> {
        for (i, s) in self.services.iter().enumerate() {
            s.validate()?;
            if self.services[..i].iter().any(|other| other.name == s.name) {
                return Err(ProfileError::Invalid(format!(
                    "intermediary `{}` advertises service `{}` twice",
                    self.node, s.name
                )));
            }
        }
        if self.cpu_mips < 0.0 || self.memory_bytes < 0.0 {
            return Err(ProfileError::Invalid(format!(
                "intermediary `{}` has negative resources",
                self.node
            )));
        }
        Ok(())
    }

    /// Look up an advertised service by name.
    pub fn service(&self, name: &str) -> Option<&ServiceSpec> {
        self.services.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service_spec::ConversionSpec;
    use qosc_media::DomainVector;

    fn proxy() -> IntermediaryProfile {
        IntermediaryProfile::new(
            "proxy-1",
            vec![
                ServiceSpec::new(
                    "T1",
                    vec![ConversionSpec::new("F5", "F10", DomainVector::new())],
                ),
                ServiceSpec::new(
                    "T2",
                    vec![ConversionSpec::new("F3", "F8", DomainVector::new())],
                ),
            ],
        )
    }

    #[test]
    fn lookup_by_name() {
        let p = proxy();
        assert!(p.service("T1").is_some());
        assert!(p.service("T9").is_none());
    }

    #[test]
    fn validate_catches_duplicates() {
        let mut p = proxy();
        p.services.push(ServiceSpec::new(
            "T1",
            vec![ConversionSpec::new("a", "b", DomainVector::new())],
        ));
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_ok_and_resources() {
        proxy().validate().unwrap();
        let p = proxy().with_resources(-1.0, 0.0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let p = proxy().with_resources(2_000.0, 1e9);
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(
            serde_json::from_str::<IntermediaryProfile>(&json).unwrap(),
            p
        );
    }
}
