//! Serializable trans-coding service descriptions.
//!
//! "A description of an adaptation service would include, for instance,
//! the possible input and output format to the service, the required
//! processing and computation power of the service, and maybe the cost
//! for using the service." — Section 3.
//!
//! The paper names JINI / SLP / WSDL as carrier description languages;
//! [`ServiceSpec`] is our typed JSON substitute. `qosc-services` resolves
//! these wire descriptions into runtime descriptors bound to a host node.

use crate::{ProfileError, Result};
use qosc_media::DomainVector;
use serde::{Deserialize, Serialize};

/// Pricing of a service, in monetary units per second of streaming.
///
/// The total price of running one service at an output rate `r` (bits/s)
/// for one second is `per_second + per_mbit × r / 10⁶`. The user budget
/// (Figure 4) is denominated in the same per-second units, so the
/// accumulated cost along a chain compares directly against it.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PriceModel {
    /// Fixed price per second of use.
    pub per_second: f64,
    /// Price per megabit of output produced.
    pub per_mbit: f64,
}

impl PriceModel {
    /// A free service.
    pub fn free() -> PriceModel {
        PriceModel::default()
    }

    /// A flat per-second price.
    pub fn flat(per_second: f64) -> PriceModel {
        PriceModel {
            per_second,
            per_mbit: 0.0,
        }
    }

    /// Price per second of producing output at `bits_per_second`.
    pub fn cost_at_rate(&self, bits_per_second: f64) -> f64 {
        self.per_second + self.per_mbit * bits_per_second / 1e6
    }

    /// Validate non-negativity.
    pub fn validate(&self) -> Result<()> {
        if self.per_second < 0.0 || self.per_mbit < 0.0 {
            return Err(ProfileError::Invalid(format!(
                "price model must be non-negative: {self:?}"
            )));
        }
        Ok(())
    }
}

/// One input-format → output-format capability of a service.
///
/// A service with several inputs and outputs (the paper's Figure 2 shows
/// T1 with inputs {F5, F6} and outputs {F10..F13}) lists one
/// `ConversionSpec` per (input, output) pair it supports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConversionSpec {
    /// Input format name.
    pub input: String,
    /// Output format name.
    pub output: String,
    /// Output quality configurations the service can produce. At
    /// composition time this domain is additionally capped by the quality
    /// arriving on the input (quality monotonicity, Section 4.4).
    pub output_domain: DomainVector,
}

impl ConversionSpec {
    /// A conversion with the given formats and output domain.
    pub fn new(
        input: impl Into<String>,
        output: impl Into<String>,
        output_domain: DomainVector,
    ) -> ConversionSpec {
        ConversionSpec {
            input: input.into(),
            output: output.into(),
            output_domain,
        }
    }
}

/// The wire description of one trans-coding service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Service name, unique within an intermediary (e.g. `"T7"` or
    /// `"jpeg-to-gif"`).
    pub name: String,
    /// Supported conversions, in listing order (the deterministic
    /// tie-break order of the selection algorithm).
    pub conversions: Vec<ConversionSpec>,
    /// CPU demand in MIPS per Mbit/s of input processed ("the required
    /// processing and computation power of the service").
    pub cpu_mips_per_mbps: f64,
    /// Resident memory required to run the service, bytes.
    pub memory_bytes: f64,
    /// "The cost for using the service."
    pub price: PriceModel,
}

impl ServiceSpec {
    /// A free, lightweight service with the given conversions.
    pub fn new(name: impl Into<String>, conversions: Vec<ConversionSpec>) -> ServiceSpec {
        ServiceSpec {
            name: name.into(),
            conversions,
            cpu_mips_per_mbps: 10.0,
            memory_bytes: 32e6,
            price: PriceModel::free(),
        }
    }

    /// Builder-style price.
    pub fn with_price(mut self, price: PriceModel) -> ServiceSpec {
        self.price = price;
        self
    }

    /// Builder-style resource requirements.
    pub fn with_resources(mut self, cpu_mips_per_mbps: f64, memory_bytes: f64) -> ServiceSpec {
        self.cpu_mips_per_mbps = cpu_mips_per_mbps;
        self.memory_bytes = memory_bytes;
        self
    }

    /// Distinct input format names, in first-appearance order.
    pub fn input_formats(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for c in &self.conversions {
            if !seen.contains(&c.input.as_str()) {
                seen.push(c.input.as_str());
            }
        }
        seen
    }

    /// Distinct output format names, in first-appearance order.
    pub fn output_formats(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for c in &self.conversions {
            if !seen.contains(&c.output.as_str()) {
                seen.push(c.output.as_str());
            }
        }
        seen
    }

    /// Validate structure: at least one conversion, no identity
    /// conversions with an identical format on both sides is *allowed*
    /// (a pure relay/filter), but every conversion must have non-empty
    /// names; resources and price must be non-negative.
    pub fn validate(&self) -> Result<()> {
        if self.conversions.is_empty() {
            return Err(ProfileError::Invalid(format!(
                "service `{}` supports no conversions",
                self.name
            )));
        }
        for c in &self.conversions {
            if c.input.is_empty() || c.output.is_empty() {
                return Err(ProfileError::Invalid(format!(
                    "service `{}` has a conversion with an empty format name",
                    self.name
                )));
            }
        }
        if self.cpu_mips_per_mbps < 0.0 || self.memory_bytes < 0.0 {
            return Err(ProfileError::Invalid(format!(
                "service `{}` has negative resource requirements",
                self.name
            )));
        }
        self.price.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::{Axis, AxisDomain};

    fn spec() -> ServiceSpec {
        ServiceSpec::new(
            "T1",
            vec![
                ConversionSpec::new("F5", "F10", DomainVector::new()),
                ConversionSpec::new("F5", "F11", DomainVector::new()),
                ConversionSpec::new("F6", "F10", DomainVector::new()),
            ],
        )
    }

    #[test]
    fn distinct_io_formats_in_order() {
        let s = spec();
        assert_eq!(s.input_formats(), vec!["F5", "F6"]);
        assert_eq!(s.output_formats(), vec!["F10", "F11"]);
    }

    #[test]
    fn price_model_cost() {
        let p = PriceModel {
            per_second: 0.5,
            per_mbit: 0.1,
        };
        assert!((p.cost_at_rate(2e6) - 0.7).abs() < 1e-12);
        assert_eq!(PriceModel::free().cost_at_rate(1e9), 0.0);
        assert_eq!(PriceModel::flat(2.0).cost_at_rate(5e6), 2.0);
    }

    #[test]
    fn validation() {
        spec().validate().unwrap();
        assert!(ServiceSpec::new("empty", vec![]).validate().is_err());
        let bad_price = spec().with_price(PriceModel {
            per_second: -1.0,
            per_mbit: 0.0,
        });
        assert!(bad_price.validate().is_err());
        let bad_res = spec().with_resources(-1.0, 0.0);
        assert!(bad_res.validate().is_err());
        let empty_name = ServiceSpec::new(
            "x",
            vec![ConversionSpec::new("", "F1", DomainVector::new())],
        );
        assert!(empty_name.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let s = spec()
            .with_price(PriceModel::flat(1.0))
            .with_resources(5.0, 1e6);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<ServiceSpec>(&json).unwrap(), s);
    }

    #[test]
    fn conversion_with_domain_round_trips() {
        let c = ConversionSpec::new(
            "video/mpeg2",
            "video/h263",
            DomainVector::new().with(
                Axis::FrameRate,
                AxisDomain::Continuous {
                    min: 1.0,
                    max: 30.0,
                },
            ),
        );
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<ConversionSpec>(&json).unwrap(), c);
    }
}
