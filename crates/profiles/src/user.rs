//! User profiles.
//!
//! "The user's profile captures the personal properties and preferences
//! of the user, such as the preferred audio and video receiving/sending
//! qualities … The user's profile may also hold the user's policies for
//! application adaptations, such as the preference of the user to drop
//! the audio quality of a sport-clip before degrading the video quality
//! when resources are limited." — Section 3.

use crate::{ProfileError, Result};
use qosc_media::MediaKind;
use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
use serde::{Deserialize, Serialize};

/// Degradation policy: when resources run out, which media kind gives
/// way first (earlier entries degrade first).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdaptationPolicy {
    /// Media kinds in degrade-first order; kinds not listed degrade last.
    pub degrade_first: Vec<MediaKind>,
}

impl AdaptationPolicy {
    /// Rank of a media kind in the degrade order: lower degrades earlier;
    /// unlisted kinds get the highest rank (degrade last).
    pub fn degrade_rank(&self, kind: MediaKind) -> usize {
        self.degrade_first
            .iter()
            .position(|&k| k == kind)
            .unwrap_or(self.degrade_first.len())
    }
}

/// A user: identity, QoS preferences, budget and adaptation policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Display name / identity.
    pub name: String,
    /// Per-axis satisfaction preferences (Section 4.1).
    pub satisfaction: SatisfactionProfile,
    /// "The amount of money the user is willing to pay" (Figure 4,
    /// Step 1), in monetary units per minute of streaming. `None` means
    /// unconstrained.
    pub budget: Option<f64>,
    /// Degradation policy for multi-media sessions.
    pub policy: AdaptationPolicy,
}

impl UserProfile {
    /// A user with the given name and preferences, no budget limit.
    pub fn new(name: impl Into<String>, satisfaction: SatisfactionProfile) -> UserProfile {
        UserProfile {
            name: name.into(),
            satisfaction,
            budget: None,
            policy: AdaptationPolicy::default(),
        }
    }

    /// Builder-style budget.
    pub fn with_budget(mut self, budget: f64) -> UserProfile {
        self.budget = Some(budget);
        self
    }

    /// Builder-style policy.
    pub fn with_policy(mut self, policy: AdaptationPolicy) -> UserProfile {
        self.policy = policy;
        self
    }

    /// The budget as a float, `+∞` when unconstrained.
    pub fn budget_or_infinite(&self) -> f64 {
        self.budget.unwrap_or(f64::INFINITY)
    }

    /// A ready-made demo user who likes smooth, sharp video: linear
    /// frame-rate preference (ideal 30 fps) and linear pixel-count
    /// preference (ideal VGA).
    pub fn demo(name: &str) -> UserProfile {
        let satisfaction = SatisfactionProfile::new()
            .with(AxisPreference::new(
                qosc_media::Axis::FrameRate,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 30.0,
                },
            ))
            .with(AxisPreference::new(
                qosc_media::Axis::PixelCount,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 307_200.0,
                },
            ));
        UserProfile::new(name, satisfaction)
    }

    /// The user of the paper's Table-1 example: a single linear
    /// frame-rate preference, ideal 30 fps, no budget constraint.
    pub fn paper_table1() -> UserProfile {
        UserProfile::new("paper-user", SatisfactionProfile::paper_table1())
    }

    /// Validate the embedded satisfaction profile and budget.
    pub fn validate(&self) -> Result<()> {
        self.satisfaction.validate()?;
        if let Some(budget) = self.budget {
            // Deliberate negated comparison: a NaN budget must be rejected.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(budget >= 0.0) {
                return Err(ProfileError::Invalid(format!(
                    "budget must be non-negative, got {budget}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::{Axis, ParamVector};

    #[test]
    fn paper_user_scores_like_table1() {
        let user = UserProfile::paper_table1();
        let sat = user
            .satisfaction
            .score(&ParamVector::from_pairs([(Axis::FrameRate, 27.0)]));
        assert!((sat - 0.9).abs() < 1e-12);
        assert_eq!(user.budget_or_infinite(), f64::INFINITY);
    }

    #[test]
    fn budget_builder_and_validation() {
        let user = UserProfile::paper_table1().with_budget(5.0);
        assert_eq!(user.budget, Some(5.0));
        user.validate().unwrap();

        let bad = UserProfile::paper_table1().with_budget(-1.0);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn degrade_rank_defaults_to_last() {
        let policy = AdaptationPolicy {
            degrade_first: vec![MediaKind::Audio],
        };
        assert_eq!(policy.degrade_rank(MediaKind::Audio), 0);
        assert_eq!(policy.degrade_rank(MediaKind::Video), 1);
    }

    #[test]
    fn serde_round_trip() {
        let user = UserProfile::demo("carol").with_budget(2.5);
        let json = serde_json::to_string(&user).unwrap();
        assert_eq!(serde_json::from_str::<UserProfile>(&json).unwrap(), user);
    }
}
