//! Network profiles.
//!
//! "With a large variety of transport networks, it is necessary to
//! include the network characteristics into content personalization …
//! Achieving this requires collecting information about the available
//! resources in the network, such as the maximum delay, error rate, and
//! available throughput on every link over the content delivery path."
//! — Section 3.
//!
//! Inside the simulator the live numbers come from `qosc-netsim`; this
//! profile describes the *user's access network* (the last mile the
//! workload generator provisions) in MPEG-21-style terms.

use crate::{ProfileError, Result};
use serde::{Deserialize, Serialize};

/// Access-network characteristics of the receiver's connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// Technology label ("GPRS", "DSL", …), informational.
    pub technology: String,
    /// Downstream capacity in bits per second.
    pub downlink_bps: f64,
    /// Upstream capacity in bits per second.
    pub uplink_bps: f64,
    /// Typical one-way delay in microseconds.
    pub delay_us: u64,
    /// Packet error rate in `[0, 1]`.
    pub error_rate: f64,
    /// Monetary price per megabit carried (metered connections).
    pub price_per_mbit: f64,
}

impl NetworkProfile {
    /// A broadband (DSL-class) access network.
    pub fn broadband() -> NetworkProfile {
        NetworkProfile {
            technology: "DSL".to_string(),
            downlink_bps: 8e6,
            uplink_bps: 1e6,
            delay_us: 15_000,
            error_rate: 0.0,
            price_per_mbit: 0.0,
        }
    }

    /// A 2007-era cellular (GPRS-class) access network: slow, lossy and
    /// metered — the paper's motivating worst case.
    pub fn cellular() -> NetworkProfile {
        NetworkProfile {
            technology: "GPRS".to_string(),
            downlink_bps: 80e3,
            uplink_bps: 20e3,
            delay_us: 300_000,
            error_rate: 0.02,
            price_per_mbit: 0.05,
        }
    }

    /// A campus LAN: effectively unconstrained.
    pub fn lan() -> NetworkProfile {
        NetworkProfile {
            technology: "Ethernet".to_string(),
            downlink_bps: 100e6,
            uplink_bps: 100e6,
            delay_us: 500,
            error_rate: 0.0,
            price_per_mbit: 0.0,
        }
    }

    /// Validate physical plausibility.
    pub fn validate(&self) -> Result<()> {
        // Deliberate negated comparisons: NaN capacities must be rejected.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.downlink_bps > 0.0) || !(self.uplink_bps > 0.0) {
            return Err(ProfileError::Invalid(format!(
                "network `{}` must have positive capacities",
                self.technology
            )));
        }
        if !(0.0..=1.0).contains(&self.error_rate) {
            return Err(ProfileError::Invalid(format!(
                "network `{}` error rate {} out of [0, 1]",
                self.technology, self.error_rate
            )));
        }
        if self.price_per_mbit < 0.0 {
            return Err(ProfileError::Invalid(format!(
                "network `{}` has negative price",
                self.technology
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        NetworkProfile::broadband().validate().unwrap();
        NetworkProfile::cellular().validate().unwrap();
        NetworkProfile::lan().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut p = NetworkProfile::broadband();
        p.downlink_bps = 0.0;
        assert!(p.validate().is_err());

        let mut p = NetworkProfile::broadband();
        p.error_rate = 2.0;
        assert!(p.validate().is_err());

        let mut p = NetworkProfile::broadband();
        p.price_per_mbit = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn cellular_is_slower_than_broadband() {
        assert!(NetworkProfile::cellular().downlink_bps < NetworkProfile::broadband().downlink_bps);
    }

    #[test]
    fn serde_round_trip() {
        let p = NetworkProfile::cellular();
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<NetworkProfile>(&json).unwrap(), p);
    }
}
