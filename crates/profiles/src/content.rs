//! Content profiles.
//!
//! "Multimedia content might enclose different media types … Each type
//! has its format characteristics and parameters that can be used to
//! describe the media. Such information about the content may include
//! storage features, variants, author and production, usage, and many
//! other metadata." — Section 3. The paper points at MPEG-7; we keep the
//! descriptive metadata the algorithm and reports actually consume.

use crate::{ProfileError, Result};
use qosc_media::{
    Axis, AxisDomain, ContentVariant, DomainVector, FormatRegistry, MediaKind, VariantSpec,
};
use serde::{Deserialize, Serialize};

/// Descriptive metadata plus the variant list of one piece of content.
///
/// "The output links of the sender are defined in the content profile,
/// which includes … meta-data information (including type and format) of
/// all the possible variants of the content. Each output link of the
/// sender vertex corresponds to one variant with a certain format."
/// — Section 4.2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentProfile {
    /// Title of the content.
    pub title: String,
    /// Author / production metadata.
    pub author: String,
    /// Duration of the content in seconds (0 for stills / pages).
    pub duration_secs: f64,
    /// Search keywords (MPEG-7 "usage" style metadata; informational).
    pub keywords: Vec<String>,
    /// The variants the sender can emit, each naming a format in the
    /// scenario registry. Order matters: it is the listing order used by
    /// deterministic tie-breaking in the selection algorithm.
    pub variants: Vec<VariantSpec>,
}

impl ContentProfile {
    /// A content profile with the given title and variants.
    pub fn new(title: impl Into<String>, variants: Vec<VariantSpec>) -> ContentProfile {
        ContentProfile {
            title: title.into(),
            author: String::new(),
            duration_secs: 0.0,
            keywords: Vec::new(),
            variants,
        }
    }

    /// Builder-style author.
    pub fn with_author(mut self, author: impl Into<String>) -> ContentProfile {
        self.author = author.into();
        self
    }

    /// Builder-style duration.
    pub fn with_duration(mut self, duration_secs: f64) -> ContentProfile {
        self.duration_secs = duration_secs;
        self
    }

    /// Resolve every variant's format name against `registry`, in listing
    /// order. Unknown names (and abstract formats not yet interned) are
    /// an error — scenarios must intern their formats first.
    pub fn resolve(&self, registry: &FormatRegistry) -> Result<Vec<ContentVariant>> {
        self.variants
            .iter()
            .map(|spec| {
                let format = registry.lookup(&spec.format)?;
                Ok(ContentVariant::new(format, spec.offered.clone()))
            })
            .collect()
    }

    /// Validate structure: at least one variant, no duplicate formats,
    /// non-negative duration.
    pub fn validate(&self) -> Result<()> {
        if self.variants.is_empty() {
            return Err(ProfileError::Invalid(format!(
                "content `{}` offers no variants",
                self.title
            )));
        }
        // Deliberate negated comparison: NaN durations must be rejected.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.duration_secs >= 0.0) {
            return Err(ProfileError::Invalid(format!(
                "content `{}` has negative duration",
                self.title
            )));
        }
        for (i, a) in self.variants.iter().enumerate() {
            if self.variants[..i].iter().any(|b| b.format == a.format) {
                return Err(ProfileError::Invalid(format!(
                    "content `{}` lists format `{}` twice",
                    self.title, a.format
                )));
            }
        }
        Ok(())
    }

    /// A demo 30 fps VGA MPEG-2 video with an MPEG-1 fallback variant.
    pub fn demo_video(title: &str) -> ContentProfile {
        let offered = DomainVector::new()
            .with(
                Axis::FrameRate,
                AxisDomain::Continuous {
                    min: 1.0,
                    max: 30.0,
                },
            )
            .with(
                Axis::PixelCount,
                AxisDomain::Continuous {
                    min: 19_200.0,
                    max: 307_200.0,
                },
            )
            .with(
                Axis::ColorDepth,
                AxisDomain::Continuous {
                    min: 8.0,
                    max: 24.0,
                },
            );
        ContentProfile::new(
            title,
            vec![
                VariantSpec {
                    format: "video/mpeg2".to_string(),
                    offered: offered.clone(),
                },
                VariantSpec {
                    format: "video/mpeg1".to_string(),
                    offered,
                },
            ],
        )
        .with_author("demo studio")
        .with_duration(120.0)
    }

    /// The dominant media kind of the content according to `registry`
    /// (kind of the first resolvable variant).
    pub fn primary_kind(&self, registry: &FormatRegistry) -> Option<MediaKind> {
        self.variants.iter().find_map(|v| {
            let id = registry.lookup(&v.format).ok()?;
            registry.spec(id).ok().map(|s| s.kind)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_against_builtins() {
        let registry = FormatRegistry::with_builtins();
        let profile = ContentProfile::demo_video("clip");
        let variants = profile.resolve(&registry).unwrap();
        assert_eq!(variants.len(), 2);
        assert_eq!(registry.name(variants[0].format), "video/mpeg2");
        assert_eq!(
            variants[0].best().get(Axis::FrameRate),
            Some(30.0),
            "best configuration is the domain top"
        );
    }

    #[test]
    fn resolve_unknown_format_fails() {
        let registry = FormatRegistry::new();
        let profile = ContentProfile::demo_video("clip");
        assert!(matches!(
            profile.resolve(&registry),
            Err(ProfileError::Media(_))
        ));
    }

    #[test]
    fn validate_rejects_empty_and_duplicates() {
        let empty = ContentProfile::new("x", vec![]);
        assert!(empty.validate().is_err());

        let dup = ContentProfile::new(
            "y",
            vec![
                VariantSpec {
                    format: "f".to_string(),
                    offered: DomainVector::new(),
                },
                VariantSpec {
                    format: "f".to_string(),
                    offered: DomainVector::new(),
                },
            ],
        );
        assert!(dup.validate().is_err());
    }

    #[test]
    fn primary_kind_uses_first_variant() {
        let registry = FormatRegistry::with_builtins();
        let profile = ContentProfile::demo_video("clip");
        assert_eq!(profile.primary_kind(&registry), Some(MediaKind::Video));
    }

    #[test]
    fn serde_round_trip() {
        let profile = ContentProfile::demo_video("clip");
        let json = serde_json::to_string(&profile).unwrap();
        assert_eq!(
            serde_json::from_str::<ContentProfile>(&json).unwrap(),
            profile
        );
    }
}
