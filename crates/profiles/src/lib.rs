//! # qosc-profiles
//!
//! The six profiles Section 3 of the paper requires for customized content
//! adaptation: "user preferences, media content profile, network profile,
//! context profile, device profile, and the profile of intermediaries".
//!
//! The paper points at MPEG-7 / MPEG-21 / UAProf for the wire format of
//! these descriptions; we substitute typed Rust structs with JSON
//! interchange (serde), because the composition algorithm consumes only
//! the *information content* of the profiles:
//!
//! * [`UserProfile`] — satisfaction preferences per QoS axis (Section
//!   4.1), the user's budget (Figure 4), and adaptation policies,
//! * [`ContentProfile`] — the variants the sender can emit; each variant
//!   becomes one output link of the sender vertex (Section 4.2),
//! * [`DeviceProfile`] — the receiver's decoders (the input links of the
//!   receiver vertex) and hardware capability caps,
//! * [`NetworkProfile`] — access-network characteristics (used by the
//!   workload generators to provision last-mile links),
//! * [`ContextProfile`] — dynamic environment information that adjusts
//!   the satisfaction profile (e.g. a noisy room devalues audio quality),
//! * [`IntermediaryProfile`] — per-proxy resources plus the descriptions
//!   of the trans-coding services it offers ([`ServiceSpec`]), the wire
//!   form that `qosc-services` resolves into runtime descriptors.
//!
//! Profiles are *registry-independent*: they name formats by string and
//! are resolved against the scenario's
//! [`FormatRegistry`](qosc_media::FormatRegistry) when the adaptation
//! graph is built.

pub mod content;
pub mod context;
pub mod device;
pub mod intermediary;
pub mod network;
pub mod service_spec;
pub mod user;

pub use content::ContentProfile;
pub use context::ContextProfile;
pub use device::{DeviceProfile, HardwareCaps};
pub use intermediary::IntermediaryProfile;
pub use network::NetworkProfile;
pub use service_spec::{ConversionSpec, PriceModel, ServiceSpec};
pub use user::{AdaptationPolicy, UserProfile};

use serde::{Deserialize, Serialize};

/// Errors produced by this crate.
#[derive(Debug)]
pub enum ProfileError {
    /// A profile referenced a format name missing from the registry.
    Media(qosc_media::MediaError),
    /// A satisfaction function in a user profile failed validation.
    Satisfaction(qosc_satisfaction::SatisfactionError),
    /// A structural problem in a profile (empty variant list, …).
    Invalid(String),
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::Media(e) => write!(f, "media error: {e}"),
            ProfileError::Satisfaction(e) => write!(f, "satisfaction error: {e}"),
            ProfileError::Invalid(detail) => write!(f, "invalid profile: {detail}"),
            ProfileError::Json(e) => write!(f, "profile JSON error: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::Media(e) => Some(e),
            ProfileError::Satisfaction(e) => Some(e),
            ProfileError::Json(e) => Some(e),
            ProfileError::Invalid(_) => None,
        }
    }
}

impl From<qosc_media::MediaError> for ProfileError {
    fn from(e: qosc_media::MediaError) -> ProfileError {
        ProfileError::Media(e)
    }
}

impl From<qosc_satisfaction::SatisfactionError> for ProfileError {
    fn from(e: qosc_satisfaction::SatisfactionError) -> ProfileError {
        ProfileError::Satisfaction(e)
    }
}

impl From<serde_json::Error> for ProfileError {
    fn from(e: serde_json::Error) -> ProfileError {
        ProfileError::Json(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ProfileError>;

/// The full bundle a composition session needs: who is asking, what they
/// are asking for, on what device, in what context, through which network.
/// (Intermediary profiles are plural and live with the service registry.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileSet {
    /// The requesting user.
    pub user: UserProfile,
    /// The content being requested.
    pub content: ContentProfile,
    /// The rendering device.
    pub device: DeviceProfile,
    /// The user's current context.
    pub context: ContextProfile,
    /// The user's access network.
    pub network: NetworkProfile,
}

impl ProfileSet {
    /// Serialize to pretty JSON (the interchange substitute for the
    /// paper's MPEG-21 descriptions).
    pub fn to_json(&self) -> Result<String> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<ProfileSet> {
        Ok(serde_json::from_str(json)?)
    }

    /// The satisfaction profile the optimizer should use: the user's
    /// preferences adjusted by the current context.
    pub fn effective_satisfaction(&self) -> qosc_satisfaction::SatisfactionProfile {
        self.context.adjust(&self.user.satisfaction)
    }

    /// Validate every member profile.
    pub fn validate(&self) -> Result<()> {
        self.user.validate()?;
        self.content.validate()?;
        self.device.validate()?;
        self.network.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_set_json_round_trip() {
        let set = ProfileSet {
            user: UserProfile::demo("alice"),
            content: ContentProfile::demo_video("news"),
            device: DeviceProfile::demo_pda(),
            context: ContextProfile::default(),
            network: NetworkProfile::broadband(),
        };
        let json = set.to_json().unwrap();
        let back = ProfileSet::from_json(&json).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn validate_demo_set() {
        let set = ProfileSet {
            user: UserProfile::demo("bob"),
            content: ContentProfile::demo_video("clip"),
            device: DeviceProfile::demo_pda(),
            context: ContextProfile::default(),
            network: NetworkProfile::broadband(),
        };
        set.validate().unwrap();
    }
}
