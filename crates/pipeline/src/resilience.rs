//! Self-organizing recovery: re-compose around failures.
//!
//! The abstract promises "self-organizing, resilient data distribution":
//! when an intermediary dies mid-stream, the framework should notice,
//! re-run the selection algorithm on the surviving graph (the failed
//! node's services are unreachable — their edges vanish because the
//! network reports no route), and resume streaming on the new chain.
//!
//! [`run_resilient`] simulates that control loop at segment granularity:
//! stream until the next scheduled fault, apply it, check whether the
//! active chain survived, and if not, pay a detection delay and
//! re-compose. The result records per-segment delivery plus the recovery
//! gap — experiment X4 compares delivered satisfaction with and without
//! re-selection.

use crate::failure::FailureSchedule;
use crate::report::SessionReport;
use crate::session::{run_session, SessionConfig};
use crate::Result;
use qosc_core::{Composer, SelectOptions};
use qosc_media::FormatRegistry;
use qosc_netsim::{Network, NodeId, SimTime};
use qosc_profiles::ProfileSet;
use qosc_services::ServiceRegistry;

/// Configuration of a resilient run.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Total streaming time.
    pub total_duration: SimTime,
    /// How long the monitor takes to notice receiver starvation before
    /// re-composing.
    pub detection_timeout: SimTime,
    /// Whether re-composition is enabled (the X4 ablation switch; with
    /// `false` the run keeps the dead chain and the stream stays dark).
    pub recompose: bool,
    /// Pre-compute backup chains at composition time
    /// ([`qosc_core::select::alternates`]): a chain-killing fault then
    /// switches to a surviving backup after only `failover_timeout`
    /// instead of the full detect-and-recompose cycle.
    pub preplan_backups: bool,
    /// Switch-over delay when a valid pre-planned backup exists.
    pub failover_timeout: SimTime,
    /// Selection options for (re-)composition.
    pub select: SelectOptions,
    /// Base RNG seed (per-segment seeds derive from it).
    pub seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            total_duration: SimTime::from_secs(30),
            detection_timeout: SimTime::from_secs(1),
            recompose: true,
            preplan_backups: false,
            failover_timeout: SimTime::from_millis(100),
            select: SelectOptions::default(),
            seed: 0,
        }
    }
}

/// One streamed segment (one plan incarnation).
#[derive(Debug, Clone)]
pub struct SegmentReport {
    /// Segment start within the run.
    pub start: SimTime,
    /// Segment length.
    pub duration: SimTime,
    /// Chain names of the active plan (empty = dark gap, no plan).
    pub chain: Vec<String>,
    /// Receiver-side measurements for the segment (all-zero for gaps).
    pub report: SessionReport,
}

/// The outcome of a resilient run.
#[derive(Debug, Clone)]
pub struct ResilientRun {
    /// Streamed segments in time order (including dark gaps).
    pub segments: Vec<SegmentReport>,
    /// Number of re-compositions performed.
    pub recompositions: usize,
    /// Number of instant switch-overs to a pre-planned backup.
    pub failovers: usize,
    /// Time from the chain-killing fault to first delivery on the new
    /// chain (only when a fault hit the active chain and recovery
    /// happened).
    pub recovery_gap: Option<SimTime>,
    /// Time-weighted mean of measured satisfaction over the whole run
    /// (gaps count as zero).
    pub mean_satisfaction: f64,
}

/// Stream for `config.total_duration` while applying `schedule`,
/// re-composing around chain-killing faults when `config.recompose`.
#[allow(clippy::too_many_arguments)]
pub fn run_resilient(
    formats: &FormatRegistry,
    services: &ServiceRegistry,
    network: &mut Network,
    profiles: &ProfileSet,
    sender_host: NodeId,
    receiver_host: NodeId,
    schedule: &FailureSchedule,
    config: &ResilienceConfig,
) -> Result<ResilientRun> {
    let profile = profiles.effective_satisfaction();
    let mut segments: Vec<SegmentReport> = Vec::new();
    let mut recompositions = 0usize;
    let mut recovery_gap: Option<SimTime> = None;

    // Compose and, when pre-planning is on, derive backup plans from the
    // same graph.
    let compose_now = |network: &Network| -> Result<(
        Option<qosc_core::AdaptationPlan>,
        Vec<qosc_core::AdaptationPlan>,
    )> {
        let composer = Composer {
            formats,
            services,
            network,
        };
        let composition = composer.compose(profiles, sender_host, receiver_host, &config.select)?;
        let mut backups = Vec::new();
        if config.preplan_backups {
            if let Some(chain) = &composition.selection.chain {
                let profile = profiles.effective_satisfaction();
                for alternate in qosc_core::select::alternates(
                    &composition.graph,
                    formats,
                    &profile,
                    profiles.user.budget_or_infinite(),
                    chain,
                    4,
                    &config.select,
                )? {
                    backups.push(qosc_core::AdaptationPlan::from_chain(
                        &composition.graph,
                        formats,
                        &alternate.chain,
                    )?);
                }
            }
        }
        Ok((composition.plan, backups))
    };

    let mut now = SimTime::ZERO;
    let mut failovers = 0usize;
    let (mut plan, mut backups) = compose_now(network)?;
    let mut faults = schedule.events().to_vec();
    let mut pending_fault_at: Option<SimTime> = None; // time of the chain-killing fault
    let mut segment_index = 0u64;

    while now < config.total_duration {
        let next_fault_time = faults
            .first()
            .map(|&(t, _)| t)
            .unwrap_or(config.total_duration);
        let segment_end = next_fault_time.min(config.total_duration).max(now);

        match &plan {
            Some(active) if segment_end > now => {
                let segment_duration = SimTime(segment_end.as_micros() - now.as_micros());
                let session_config = SessionConfig {
                    duration: segment_duration,
                    seed: config.seed.wrapping_add(segment_index),
                    failures: FailureSchedule::new(),
                    fallback_fps: 10.0,
                };
                // A plan can be *unrealizable* even though selection
                // accepted it: the paper's Equa. 2 constrains each hop
                // independently, so two hops sharing one physical access
                // link can jointly overcommit it. Admission rejection is
                // how the pipeline surfaces that gap; the segment goes
                // dark rather than erroring the whole run.
                match run_session(network, services, active, &profile, &session_config) {
                    Ok(report) => {
                        if report.frames_delivered > 0 {
                            if let Some(fault_at) = pending_fault_at.take() {
                                recovery_gap
                                    .get_or_insert(SimTime(now.as_micros() - fault_at.as_micros()));
                            }
                        }
                        segments.push(SegmentReport {
                            start: now,
                            duration: segment_duration,
                            chain: active.steps.iter().map(|s| s.name.clone()).collect(),
                            report,
                        });
                    }
                    Err(crate::PipelineError::AdmissionRejected(_)) => {
                        segments.push(SegmentReport {
                            start: now,
                            duration: segment_duration,
                            chain: Vec::new(),
                            report: SessionReport::default(),
                        });
                    }
                    Err(e) => return Err(e),
                }
            }
            _ if segment_end > now => {
                // Dark gap: no plan available.
                segments.push(SegmentReport {
                    start: now,
                    duration: SimTime(segment_end.as_micros() - now.as_micros()),
                    chain: Vec::new(),
                    report: SessionReport::default(),
                });
            }
            _ => {}
        }
        segment_index += 1;
        now = segment_end;

        // Apply the fault (if this segment ended on one).
        if let Some(&(t, fault)) = faults.first() {
            if t <= now {
                faults.remove(0);
                FailureSchedule::apply(fault, network);
                let chain_dead = match &plan {
                    Some(active) => plan_affected(network, active),
                    None => true,
                };
                if chain_dead {
                    pending_fault_at = Some(now);
                    // Instant switch-over to a surviving pre-planned
                    // backup, when one exists.
                    let backup = backups.iter().position(|b| !plan_affected(network, b));
                    if let Some(index) = backup {
                        let gap_end = now
                            .plus_micros(config.failover_timeout.as_micros())
                            .min(config.total_duration);
                        if gap_end > now {
                            segments.push(SegmentReport {
                                start: now,
                                duration: SimTime(gap_end.as_micros() - now.as_micros()),
                                chain: Vec::new(),
                                report: SessionReport::default(),
                            });
                            now = gap_end;
                        }
                        plan = Some(backups.remove(index));
                        failovers += 1;
                    } else if config.recompose {
                        // Detection delay: the stream is dark while the
                        // monitor notices.
                        let gap_end = now
                            .plus_micros(config.detection_timeout.as_micros())
                            .min(config.total_duration);
                        if gap_end > now {
                            segments.push(SegmentReport {
                                start: now,
                                duration: SimTime(gap_end.as_micros() - now.as_micros()),
                                chain: Vec::new(),
                                report: SessionReport::default(),
                            });
                            now = gap_end;
                        }
                        let (new_plan, new_backups) = compose_now(network)?;
                        plan = new_plan;
                        backups = new_backups;
                        recompositions += 1;
                    } else {
                        plan = None;
                    }
                }
            }
        }
    }

    // Time-weighted satisfaction (gaps score zero).
    let total = config.total_duration.as_secs_f64().max(1e-9);
    let mean_satisfaction = segments
        .iter()
        .map(|s| s.report.measured_satisfaction * s.duration.as_secs_f64())
        .sum::<f64>()
        / total;

    Ok(ResilientRun {
        segments,
        recompositions,
        failovers,
        recovery_gap,
        mean_satisfaction,
    })
}

/// Whether a fault set on `network` breaks the plan: a stage host is
/// failed, or some hop no longer has a route / its reserved rate.
fn plan_affected(network: &Network, plan: &qosc_core::AdaptationPlan) -> bool {
    for step in &plan.steps {
        if network.node_failed(step.host) {
            return true;
        }
    }
    for pair in plan.steps.windows(2) {
        match network.available_between(pair[0].host, pair[1].host) {
            Ok(available) => {
                // Small relative slack: the optimizer works to the same
                // boundary within bisection tolerance.
                if available * (1.0 + 1e-6) + 1e-6 < pair[1].input_bps {
                    return true;
                }
            }
            Err(_) => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailureEvent;
    use qosc_workload::paper;

    fn t7_host(scenario: &qosc_workload::Scenario) -> NodeId {
        scenario
            .network
            .topology()
            .node_by_name("host-T7")
            .expect("figure-6 names its hosts")
    }

    #[test]
    fn recomposes_after_chain_killing_fault() {
        let mut scenario = paper::figure6_scenario(true);
        let failed = t7_host(&scenario);
        let schedule =
            FailureSchedule::new().at(SimTime::from_secs(10), FailureEvent::NodeDown(failed));
        let config = ResilienceConfig {
            total_duration: SimTime::from_secs(30),
            ..ResilienceConfig::default()
        };
        let run = run_resilient(
            &scenario.formats,
            &scenario.services,
            &mut scenario.network,
            &scenario.profiles,
            scenario.sender_host,
            scenario.receiver_host,
            &schedule,
            &config,
        )
        .unwrap();
        assert_eq!(run.recompositions, 1);
        assert!(run.recovery_gap.is_some());
        assert!(run.recovery_gap.unwrap() <= SimTime::from_secs(2));
        // First segment rides T7; the post-fault segment falls back to
        // the T10 path at 18 fps.
        assert!(run.segments[0].chain.contains(&"T7".to_string()));
        let last_chain = &run.segments.last().unwrap().chain;
        assert!(
            last_chain.contains(&"T10".to_string()),
            "expected the T10 fallback, got {last_chain:?}"
        );
        assert!(run.mean_satisfaction > 0.4);
    }

    #[test]
    fn without_recomposition_the_stream_stays_dark() {
        let mut scenario = paper::figure6_scenario(true);
        let failed = t7_host(&scenario);
        let schedule =
            FailureSchedule::new().at(SimTime::from_secs(10), FailureEvent::NodeDown(failed));
        let config = ResilienceConfig {
            total_duration: SimTime::from_secs(30),
            recompose: false,
            ..ResilienceConfig::default()
        };
        let run = run_resilient(
            &scenario.formats,
            &scenario.services,
            &mut scenario.network,
            &scenario.profiles,
            scenario.sender_host,
            scenario.receiver_host,
            &schedule,
            &config,
        )
        .unwrap();
        assert_eq!(run.recompositions, 0);
        // Roughly: 10 s of 0.66 out of 30 s ≈ 0.22, and nothing after.
        assert!(run.mean_satisfaction < 0.3);
        assert!(run.segments.last().unwrap().chain.is_empty());
    }

    #[test]
    fn unrelated_fault_keeps_the_chain() {
        let mut scenario = paper::figure6_scenario(true);
        let unrelated = scenario.network.topology().node_by_name("host-T9").unwrap();
        let schedule =
            FailureSchedule::new().at(SimTime::from_secs(10), FailureEvent::NodeDown(unrelated));
        let run = run_resilient(
            &scenario.formats,
            &scenario.services,
            &mut scenario.network,
            &scenario.profiles,
            scenario.sender_host,
            scenario.receiver_host,
            &schedule,
            &ResilienceConfig::default(),
        )
        .unwrap();
        assert_eq!(run.recompositions, 0);
        assert!(run.recovery_gap.is_none());
        for segment in &run.segments {
            assert!(segment.chain.contains(&"T7".to_string()));
        }
    }
}
