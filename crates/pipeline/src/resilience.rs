//! Self-organizing recovery: re-compose around failures.
//!
//! The abstract promises "self-organizing, resilient data distribution":
//! when an intermediary dies mid-stream, the framework should notice,
//! re-run the selection algorithm on the surviving graph (the failed
//! node's services are unreachable — their edges vanish because the
//! network reports no route), and resume streaming on the new chain.
//!
//! [`run_resilient`] simulates that control loop at segment granularity:
//! stream until the next scheduled fault, apply it, check whether the
//! active chain survived, and if not, pay a detection delay and
//! re-compose. The result records per-segment delivery plus the recovery
//! gap — experiment X4 compares delivered satisfaction with and without
//! re-selection.

use crate::failure::FailureSchedule;
use crate::report::SessionReport;
use crate::session::{run_session, SessionConfig};
use crate::Result;
use qosc_core::{degrade_profiles, Composer, DegradationRung, SelectOptions};
use qosc_media::FormatRegistry;
use qosc_netsim::{Network, NodeId, SimTime};
use qosc_profiles::ProfileSet;
use qosc_services::ServiceRegistry;
use qosc_telemetry::{EventKind, NoopSink, RequestTrace, TelemetrySink, ROOT_SPAN};

/// Configuration of a resilient run.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Total streaming time.
    pub total_duration: SimTime,
    /// How long the monitor takes to notice receiver starvation before
    /// re-composing.
    pub detection_timeout: SimTime,
    /// Whether re-composition is enabled (the X4 ablation switch; with
    /// `false` the run keeps the dead chain and the stream stays dark).
    pub recompose: bool,
    /// Pre-compute backup chains at composition time
    /// ([`qosc_core::select::alternates`]): a chain-killing fault then
    /// switches to a surviving backup after only `failover_timeout`
    /// instead of the full detect-and-recompose cycle.
    pub preplan_backups: bool,
    /// Switch-over delay when a valid pre-planned backup exists.
    pub failover_timeout: SimTime,
    /// Walk the [`DegradationRung`] ladder when composition at the
    /// user's own floors yields no plan or a zero-satisfaction one: a
    /// degraded stream beats a dark one (Section 3's policy).
    pub ladder: bool,
    /// Hard bound on re-compositions: a permanently partitioned network
    /// would otherwise re-compose on every subsequent fault forever.
    /// Hitting the bound sets [`ResilientRun::gave_up`] and the stream
    /// stays dark for the rest of the run.
    pub max_recompositions: usize,
    /// Selection options for (re-)composition.
    pub select: SelectOptions,
    /// Base RNG seed (per-segment seeds derive from it).
    pub seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            total_duration: SimTime::from_secs(30),
            detection_timeout: SimTime::from_secs(1),
            recompose: true,
            preplan_backups: false,
            failover_timeout: SimTime::from_millis(100),
            ladder: false,
            max_recompositions: 32,
            select: SelectOptions::default(),
            seed: 0,
        }
    }
}

/// One streamed segment (one plan incarnation).
#[derive(Debug, Clone)]
pub struct SegmentReport {
    /// Segment start within the run.
    pub start: SimTime,
    /// Segment length.
    pub duration: SimTime,
    /// Chain names of the active plan (empty = dark gap, no plan).
    pub chain: Vec<String>,
    /// Predicted satisfaction of the active plan under the rung that
    /// composed it (0.0 for gaps).
    pub predicted: f64,
    /// Degradation rung the active plan was composed at (`None` for
    /// gaps).
    pub rung: Option<DegradationRung>,
    /// Receiver-side measurements for the segment (all-zero for gaps).
    pub report: SessionReport,
}

/// The outcome of a resilient run.
#[derive(Debug, Clone)]
pub struct ResilientRun {
    /// Streamed segments in time order (including dark gaps).
    pub segments: Vec<SegmentReport>,
    /// Number of re-compositions performed.
    pub recompositions: usize,
    /// Number of instant switch-overs to a pre-planned backup.
    pub failovers: usize,
    /// Time from the chain-killing fault to first delivery on the new
    /// chain (only when a fault hit the active chain and recovery
    /// happened).
    pub recovery_gap: Option<SimTime>,
    /// The run hit [`ResilienceConfig::max_recompositions`] and stopped
    /// trying; the remainder of the run is dark.
    pub gave_up: bool,
    /// Time-weighted mean of measured satisfaction over the whole run
    /// (gaps count as zero).
    pub mean_satisfaction: f64,
}

impl ResilientRun {
    /// Fraction of the run during which frames were actually delivered
    /// (the scorecard's availability metric; dark gaps and starved
    /// segments count against it).
    pub fn availability(&self) -> f64 {
        let total: f64 = self.segments.iter().map(|s| s.duration.as_secs_f64()).sum();
        if total <= 0.0 {
            return 0.0;
        }
        let lit: f64 = self
            .segments
            .iter()
            .filter(|s| s.report.frames_delivered > 0)
            .map(|s| s.duration.as_secs_f64())
            .sum();
        // `Sum for f64` starts from -0.0; renormalize the empty case so
        // a fully dark run reports +0.0.
        (lit + 0.0) / total
    }
}

/// Stream for `config.total_duration` while applying `schedule`,
/// re-composing around chain-killing faults when `config.recompose`.
#[allow(clippy::too_many_arguments)]
pub fn run_resilient(
    formats: &FormatRegistry,
    services: &ServiceRegistry,
    network: &mut Network,
    profiles: &ProfileSet,
    sender_host: NodeId,
    receiver_host: NodeId,
    schedule: &FailureSchedule,
    config: &ResilienceConfig,
) -> Result<ResilientRun> {
    run_resilient_traced(
        formats,
        services,
        network,
        profiles,
        sender_host,
        receiver_host,
        schedule,
        config,
        &NoopSink,
    )
}

/// [`run_resilient`] with the monitor's recovery actions — instant
/// failovers to pre-planned backups and full re-compositions — recorded
/// into `sink` at their virtual times, under request id 0 (one
/// resilient run is one long-lived session). With [`NoopSink`] this is
/// exactly `run_resilient`.
#[allow(clippy::too_many_arguments)]
pub fn run_resilient_traced<S: TelemetrySink>(
    formats: &FormatRegistry,
    services: &ServiceRegistry,
    network: &mut Network,
    profiles: &ProfileSet,
    sender_host: NodeId,
    receiver_host: NodeId,
    schedule: &FailureSchedule,
    config: &ResilienceConfig,
    sink: &S,
) -> Result<ResilientRun> {
    let mut session_trace = RequestTrace::new(sink, 0, 0);
    let profile = profiles.effective_satisfaction();
    let mut segments: Vec<SegmentReport> = Vec::new();
    let mut recompositions = 0usize;
    let mut recovery_gap: Option<SimTime> = None;

    // Compose and, when pre-planning is on, derive backup plans from the
    // same graph. With the ladder enabled, a rung that yields no plan —
    // or only a plan below the user's satisfaction floor (predicted
    // satisfaction 0, worthless to deliver) — falls through to the next,
    // more degraded rung.
    let rungs: &[DegradationRung] = if config.ladder {
        &DegradationRung::LADDER
    } else {
        &DegradationRung::LADDER[..1]
    };
    let compose_now = |network: &Network| -> Result<(
        Option<qosc_core::AdaptationPlan>,
        Vec<qosc_core::AdaptationPlan>,
        Option<DegradationRung>,
    )> {
        let composer = Composer {
            formats,
            services,
            network,
        };
        for &rung in rungs {
            let rung_profiles = degrade_profiles(profiles, rung);
            let composition =
                composer.compose(&rung_profiles, sender_host, receiver_host, &config.select)?;
            let Some(plan) = composition.plan else {
                continue;
            };
            if plan.predicted_satisfaction <= 0.0 {
                continue;
            }
            let mut backups = Vec::new();
            if config.preplan_backups {
                if let Some(chain) = &composition.selection.chain {
                    let rung_profile = rung_profiles.effective_satisfaction();
                    for alternate in qosc_core::select::alternates(
                        &composition.graph,
                        formats,
                        &rung_profile,
                        rung_profiles.user.budget_or_infinite(),
                        chain,
                        4,
                        &config.select,
                    )? {
                        backups.push(qosc_core::AdaptationPlan::from_chain(
                            &composition.graph,
                            formats,
                            &alternate.chain,
                        )?);
                    }
                }
            }
            return Ok((Some(plan), backups, Some(rung)));
        }
        Ok((None, Vec::new(), None))
    };

    let mut now = SimTime::ZERO;
    let mut failovers = 0usize;
    let mut gave_up = false;
    let (mut plan, mut backups, mut rung) = compose_now(network)?;
    let mut faults = schedule.events().to_vec();
    let mut pending_fault_at: Option<SimTime> = None; // time of the chain-killing fault
    let mut segment_index = 0u64;

    while now < config.total_duration {
        let next_fault_time = faults
            .first()
            .map(|&(t, _)| t)
            .unwrap_or(config.total_duration);
        let segment_end = next_fault_time.min(config.total_duration).max(now);

        match &plan {
            Some(active) if segment_end > now => {
                let segment_duration = SimTime(segment_end.as_micros() - now.as_micros());
                let session_config = SessionConfig {
                    duration: segment_duration,
                    seed: config.seed.wrapping_add(segment_index),
                    failures: FailureSchedule::new(),
                    fallback_fps: 10.0,
                };
                // A plan can be *unrealizable* even though selection
                // accepted it: the paper's Equa. 2 constrains each hop
                // independently, so two hops sharing one physical access
                // link can jointly overcommit it. Admission rejection is
                // how the pipeline surfaces that gap; the segment goes
                // dark rather than erroring the whole run.
                match run_session(network, services, active, &profile, &session_config) {
                    Ok(report) => {
                        if report.frames_delivered > 0 {
                            if let Some(fault_at) = pending_fault_at.take() {
                                recovery_gap
                                    .get_or_insert(SimTime(now.as_micros() - fault_at.as_micros()));
                            }
                        }
                        segments.push(SegmentReport {
                            start: now,
                            duration: segment_duration,
                            chain: active.steps.iter().map(|s| s.name.clone()).collect(),
                            predicted: active.predicted_satisfaction,
                            rung,
                            report,
                        });
                    }
                    Err(crate::PipelineError::AdmissionRejected(_)) => {
                        segments.push(SegmentReport {
                            start: now,
                            duration: segment_duration,
                            chain: Vec::new(),
                            predicted: 0.0,
                            rung: None,
                            report: SessionReport::default(),
                        });
                    }
                    Err(e) => return Err(e),
                }
            }
            _ if segment_end > now => {
                // Dark gap: no plan available.
                segments.push(SegmentReport {
                    start: now,
                    duration: SimTime(segment_end.as_micros() - now.as_micros()),
                    chain: Vec::new(),
                    predicted: 0.0,
                    rung: None,
                    report: SessionReport::default(),
                });
            }
            _ => {}
        }
        segment_index += 1;
        now = segment_end;

        // Apply the fault (if this segment ended on one).
        if let Some(&(t, fault)) = faults.first() {
            if t <= now {
                faults.remove(0);
                FailureSchedule::apply(fault, network);
                let chain_dead = match &plan {
                    Some(active) => plan_affected(network, active),
                    None => true,
                };
                if chain_dead {
                    pending_fault_at = Some(now);
                    // Instant switch-over to a surviving pre-planned
                    // backup, when one exists.
                    let backup = backups.iter().position(|b| !plan_affected(network, b));
                    if let Some(index) = backup {
                        let gap_end = now
                            .plus_micros(config.failover_timeout.as_micros())
                            .min(config.total_duration);
                        if gap_end > now {
                            segments.push(SegmentReport {
                                start: now,
                                duration: SimTime(gap_end.as_micros() - now.as_micros()),
                                chain: Vec::new(),
                                predicted: 0.0,
                                rung: None,
                                report: SessionReport::default(),
                            });
                            now = gap_end;
                        }
                        plan = Some(backups.remove(index));
                        failovers += 1;
                        session_trace.advance_to(now.as_micros());
                        session_trace.emit(
                            ROOT_SPAN,
                            EventKind::Failover {
                                attempt: failovers as u32,
                            },
                        );
                    } else if config.recompose && recompositions < config.max_recompositions {
                        // Detection delay: the stream is dark while the
                        // monitor notices.
                        let gap_end = now
                            .plus_micros(config.detection_timeout.as_micros())
                            .min(config.total_duration);
                        if gap_end > now {
                            segments.push(SegmentReport {
                                start: now,
                                duration: SimTime(gap_end.as_micros() - now.as_micros()),
                                chain: Vec::new(),
                                predicted: 0.0,
                                rung: None,
                                report: SessionReport::default(),
                            });
                            now = gap_end;
                        }
                        let (new_plan, new_backups, new_rung) = compose_now(network)?;
                        plan = new_plan;
                        backups = new_backups;
                        rung = new_rung;
                        recompositions += 1;
                        session_trace.advance_to(now.as_micros());
                        session_trace.emit(
                            ROOT_SPAN,
                            EventKind::Recomposed {
                                attempt: recompositions as u32,
                            },
                        );
                        if let Some(rung) = rung {
                            session_trace.emit(
                                ROOT_SPAN,
                                EventKind::CompositionFinished {
                                    rung: rung.label(),
                                    served: true,
                                    satisfaction_micros: plan
                                        .as_ref()
                                        .map(|p| (p.predicted_satisfaction * 1e6).round() as u64)
                                        .unwrap_or(0),
                                    attempts: recompositions as u32,
                                },
                            );
                        }
                    } else {
                        // Either recovery is disabled, or the
                        // re-composition budget is spent: stop trying.
                        if config.recompose {
                            gave_up = true;
                        }
                        plan = None;
                    }
                }
            }
        }
    }

    // Time-weighted satisfaction (gaps score zero).
    let total = config.total_duration.as_secs_f64().max(1e-9);
    let mean_satisfaction = segments
        .iter()
        .map(|s| s.report.measured_satisfaction * s.duration.as_secs_f64())
        .sum::<f64>()
        / total;

    Ok(ResilientRun {
        segments,
        recompositions,
        failovers,
        recovery_gap,
        gave_up,
        mean_satisfaction,
    })
}

/// Whether a fault set on `network` breaks the plan: a stage host is
/// failed, or some hop no longer has a route / its reserved rate.
/// Shared by the resilience monitor and the session engine's
/// [`ChaosWorld`](crate::session_world::ChaosWorld) liveness check.
pub fn plan_affected(network: &Network, plan: &qosc_core::AdaptationPlan) -> bool {
    for step in &plan.steps {
        if network.node_failed(step.host) {
            return true;
        }
    }
    for pair in plan.steps.windows(2) {
        match network.available_between(pair[0].host, pair[1].host) {
            Ok(available) => {
                // Small relative slack: the optimizer works to the same
                // boundary within bisection tolerance.
                if available * (1.0 + 1e-6) + 1e-6 < pair[1].input_bps {
                    return true;
                }
            }
            Err(_) => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailureEvent;
    use qosc_workload::paper;

    fn t7_host(scenario: &qosc_workload::Scenario) -> NodeId {
        scenario
            .network
            .topology()
            .node_by_name("host-T7")
            .expect("figure-6 names its hosts")
    }

    #[test]
    fn recomposes_after_chain_killing_fault() {
        let mut scenario = paper::figure6_scenario(true);
        let failed = t7_host(&scenario);
        let schedule =
            FailureSchedule::new().at(SimTime::from_secs(10), FailureEvent::NodeDown(failed));
        let config = ResilienceConfig {
            total_duration: SimTime::from_secs(30),
            ..ResilienceConfig::default()
        };
        let run = run_resilient(
            &scenario.formats,
            &scenario.services,
            &mut scenario.network,
            &scenario.profiles,
            scenario.sender_host,
            scenario.receiver_host,
            &schedule,
            &config,
        )
        .unwrap();
        assert_eq!(run.recompositions, 1);
        assert!(run.recovery_gap.is_some());
        assert!(run.recovery_gap.unwrap() <= SimTime::from_secs(2));
        // First segment rides T7; the post-fault segment falls back to
        // the T10 path at 18 fps.
        assert!(run.segments[0].chain.contains(&"T7".to_string()));
        let last_chain = &run.segments.last().unwrap().chain;
        assert!(
            last_chain.contains(&"T10".to_string()),
            "expected the T10 fallback, got {last_chain:?}"
        );
        assert!(run.mean_satisfaction > 0.4);
    }

    #[test]
    fn without_recomposition_the_stream_stays_dark() {
        let mut scenario = paper::figure6_scenario(true);
        let failed = t7_host(&scenario);
        let schedule =
            FailureSchedule::new().at(SimTime::from_secs(10), FailureEvent::NodeDown(failed));
        let config = ResilienceConfig {
            total_duration: SimTime::from_secs(30),
            recompose: false,
            ..ResilienceConfig::default()
        };
        let run = run_resilient(
            &scenario.formats,
            &scenario.services,
            &mut scenario.network,
            &scenario.profiles,
            scenario.sender_host,
            scenario.receiver_host,
            &schedule,
            &config,
        )
        .unwrap();
        assert_eq!(run.recompositions, 0);
        // Roughly: 10 s of 0.66 out of 30 s ≈ 0.22, and nothing after.
        assert!(run.mean_satisfaction < 0.3);
        assert!(run.segments.last().unwrap().chain.is_empty());
    }

    #[test]
    fn permanent_partition_hits_the_recomposition_bound_and_gives_up() {
        use qosc_media::{
            Axis, AxisDomain, BitrateModel, DomainVector, FormatSpec, MediaKind, VariantSpec,
        };
        use qosc_netsim::{Network, Node, Topology};
        use qosc_profiles::{
            ContentProfile, ContextProfile, ConversionSpec, DeviceProfile, HardwareCaps,
            NetworkProfile, ProfileSet, ServiceSpec, UserProfile,
        };
        use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
        use qosc_services::{ServiceRegistry, TranscoderDescriptor};

        let mut formats = qosc_media::FormatRegistry::new();
        let linear = BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        formats.register(FormatSpec::new("A", MediaKind::Video, linear));
        formats.register(FormatSpec::new("B", MediaKind::Video, linear));

        // Two disjoint paths, but the only transcoder lives on `proxy`:
        // once it dies, the surviving relay path cannot convert A → B
        // and every re-composition comes back empty.
        let mut topo = Topology::new();
        let server = topo.add_node(Node::unconstrained("server"));
        let proxy = topo.add_node(Node::unconstrained("proxy"));
        let relay = topo.add_node(Node::unconstrained("relay"));
        let client = topo.add_node(Node::unconstrained("client"));
        topo.connect_simple(server, proxy, 1e6).unwrap();
        topo.connect_simple(proxy, client, 1e6).unwrap();
        topo.connect_simple(server, relay, 1e6).unwrap();
        let relay_client = topo.connect_simple(relay, client, 1e6).unwrap();
        let mut network = Network::new(topo);

        let mut services = ServiceRegistry::new();
        let spec = ServiceSpec::new(
            "T",
            vec![ConversionSpec::new(
                "A",
                "B",
                DomainVector::new().with(
                    Axis::FrameRate,
                    AxisDomain::Continuous {
                        min: 0.0,
                        max: 30.0,
                    },
                ),
            )],
        );
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());

        let profiles = ProfileSet {
            user: UserProfile::new(
                "viewer",
                SatisfactionProfile::new().with(AxisPreference::new(
                    Axis::FrameRate,
                    SatisfactionFn::Linear {
                        min_acceptable: 0.0,
                        ideal: 30.0,
                    },
                )),
            ),
            content: ContentProfile::new(
                "clip",
                vec![VariantSpec {
                    format: "A".to_string(),
                    offered: DomainVector::new().with(
                        Axis::FrameRate,
                        AxisDomain::Continuous {
                            min: 0.0,
                            max: 30.0,
                        },
                    ),
                }],
            ),
            device: DeviceProfile::new("dev", vec!["B".to_string()], HardwareCaps::desktop()),
            context: ContextProfile::default(),
            network: NetworkProfile::lan(),
        };

        // The proxy dies for good at t = 5 s; later flaps on the relay
        // path keep prodding the monitor, which would re-compose on
        // every one of them without the bound.
        let mut schedule =
            FailureSchedule::new().at(SimTime::from_secs(5), FailureEvent::NodeDown(proxy));
        for t in [8u64, 11, 14, 17, 20] {
            schedule = schedule
                .at(SimTime::from_secs(t), FailureEvent::LinkDown(relay_client))
                .at(
                    SimTime::from_secs(t + 1),
                    FailureEvent::LinkUp(relay_client),
                );
        }
        let config = ResilienceConfig {
            max_recompositions: 2,
            ..ResilienceConfig::default()
        };
        let run = run_resilient(
            &formats,
            &services,
            &mut network,
            &profiles,
            server,
            client,
            &schedule,
            &config,
        )
        .unwrap();
        assert_eq!(
            run.recompositions, 2,
            "the bound caps re-composition attempts"
        );
        assert!(run.gave_up, "hitting the bound is reported");
        assert!(run.segments.last().unwrap().chain.is_empty());
        assert!(run.availability() < 0.5, "most of the run is dark");
        assert!(run.availability() > 0.0, "the pre-fault stream delivered");
    }

    #[test]
    fn unrelated_fault_keeps_the_chain() {
        let mut scenario = paper::figure6_scenario(true);
        let unrelated = scenario.network.topology().node_by_name("host-T9").unwrap();
        let schedule =
            FailureSchedule::new().at(SimTime::from_secs(10), FailureEvent::NodeDown(unrelated));
        let run = run_resilient(
            &scenario.formats,
            &scenario.services,
            &mut scenario.network,
            &scenario.profiles,
            scenario.sender_host,
            scenario.receiver_host,
            &schedule,
            &ResilienceConfig::default(),
        )
        .unwrap();
        assert_eq!(run.recompositions, 0);
        assert!(run.recovery_gap.is_none());
        for segment in &run.segments {
            assert!(segment.chain.contains(&"T7".to_string()));
        }
    }
}
