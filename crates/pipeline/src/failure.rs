//! Failure injection schedules.

use qosc_netsim::{LinkId, NodeId, SimTime};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureEvent {
    /// A node (and every service hosted on it) goes dark.
    NodeDown(NodeId),
    /// A node comes back.
    NodeUp(NodeId),
    /// A link is severed.
    LinkDown(LinkId),
    /// A link is restored.
    LinkUp(LinkId),
    /// Background traffic squeezes a link: utilization jumps to
    /// `permille / 1000` of capacity (permille keeps the event `Eq`,
    /// hashable, and bitwise reproducible).
    Squeeze {
        /// The squeezed link.
        link: LinkId,
        /// Background utilization in thousandths of capacity, `0..=1000`.
        permille: u16,
    },
    /// A squeeze window ends: background utilization returns to zero.
    Unsqueeze(LinkId),
}

/// A time-ordered schedule of faults.
#[derive(Debug, Clone, Default)]
pub struct FailureSchedule {
    events: Vec<(SimTime, FailureEvent)>,
}

impl FailureSchedule {
    /// An empty schedule.
    pub fn new() -> FailureSchedule {
        FailureSchedule::default()
    }

    /// Add an event; the schedule keeps itself time-sorted (stable).
    pub fn at(mut self, time: SimTime, event: FailureEvent) -> FailureSchedule {
        self.events.push((time, event));
        self.events.sort_by_key(|&(t, _)| t);
        self
    }

    /// Events in time order.
    pub fn events(&self) -> &[(SimTime, FailureEvent)] {
        &self.events
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Apply one event to the network.
    pub fn apply(event: FailureEvent, network: &mut qosc_netsim::Network) {
        match event {
            FailureEvent::NodeDown(n) => {
                let _ = network.fail_node(n);
            }
            FailureEvent::NodeUp(n) => network.restore_node(n),
            FailureEvent::LinkDown(l) => {
                let _ = network.fail_link(l);
            }
            FailureEvent::LinkUp(l) => network.restore_link(l),
            FailureEvent::Squeeze { link, permille } => {
                let utilization = f64::from(permille.min(1000)) / 1000.0;
                network.background_mut().set_utilization(link, utilization);
            }
            FailureEvent::Unsqueeze(link) => {
                network.background_mut().set_utilization(link, 0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_netsim::{Network, Node, Topology};

    #[test]
    fn schedule_sorts_by_time() {
        let mut topo = Topology::new();
        let n = topo.add_node(Node::unconstrained("n"));
        let schedule = FailureSchedule::new()
            .at(SimTime::from_secs(5), FailureEvent::NodeUp(n))
            .at(SimTime::from_secs(1), FailureEvent::NodeDown(n));
        assert_eq!(schedule.events()[0].0, SimTime::from_secs(1));
        assert_eq!(schedule.events()[1].0, SimTime::from_secs(5));
    }

    #[test]
    fn squeeze_shrinks_headroom_and_unsqueeze_restores_it() {
        let mut topo = Topology::new();
        let a = topo.add_node(Node::unconstrained("a"));
        let b = topo.add_node(Node::unconstrained("b"));
        let link = topo.connect_simple(a, b, 1_000.0).unwrap();
        let mut network = Network::new(topo);
        FailureSchedule::apply(
            FailureEvent::Squeeze {
                link,
                permille: 750,
            },
            &mut network,
        );
        assert!((network.link_headroom(link, true).unwrap() - 250.0).abs() < 1e-9);
        FailureSchedule::apply(FailureEvent::Unsqueeze(link), &mut network);
        assert!((network.link_headroom(link, true).unwrap() - 1_000.0).abs() < 1e-9);
        // Permille is clamped to 1000 (full squeeze, never negative).
        FailureSchedule::apply(
            FailureEvent::Squeeze {
                link,
                permille: 1_500,
            },
            &mut network,
        );
        assert_eq!(network.link_headroom(link, true).unwrap(), 0.0);
    }

    #[test]
    fn apply_toggles_node_state() {
        let mut topo = Topology::new();
        let n = topo.add_node(Node::unconstrained("n"));
        let mut network = Network::new(topo);
        FailureSchedule::apply(FailureEvent::NodeDown(n), &mut network);
        assert!(network.node_failed(n));
        FailureSchedule::apply(FailureEvent::NodeUp(n), &mut network);
        assert!(!network.node_failed(n));
    }
}
