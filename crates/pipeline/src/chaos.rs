//! Deterministic chaos generation.
//!
//! A resilience claim is only as good as the fault workload behind it,
//! and a fault workload is only *useful* if a failing run can be
//! replayed bit-for-bit. [`ChaosPlan::generate`] compiles a declarative
//! [`ChaosModel`] into two artifacts from a single `(chaos_seed,
//! intensity)` pair:
//!
//! * a [`FailureSchedule`] of network faults — node crash/revive with
//!   the link failures *correlated* to the crashed host (its access
//!   links go down at the same instant, the realistic shape of a host
//!   loss), link flap bursts, and background-bandwidth squeeze windows
//!   ([`FailureEvent::Squeeze`]) — fed straight into
//!   [`run_resilient`](crate::run_resilient);
//! * a time-ordered list of [`ChaosAction`]s — lease-expiry storms
//!   (service processes crashing and reviving) — replayed against a
//!   [`DiscoveryDriver`]/[`ServiceRegistry`] pair via
//!   [`ChaosPlan::drive_discovery`].
//!
//! The same `(topology, member_count, model, chaos_seed, intensity)`
//! always yields the same plan; changing the chaos seed changes the
//! fault sequence; raising the intensity knob scales every event count.

use crate::failure::{FailureEvent, FailureSchedule};
use qosc_netsim::{LinkId, NodeId, SimTime, Topology};
use qosc_services::{DiscoveryDriver, MemberId, ServiceRegistry};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Declarative fault model: event rates over the chaos horizon, fault
/// shapes, and the nodes the generator must never crash (the content
/// sender and the receiving client — the paper's composition problem is
/// undefined without its endpoints).
#[derive(Debug, Clone)]
pub struct ChaosModel {
    /// Horizon the plan covers; every event lands inside it.
    pub total_duration: SimTime,
    /// Node crashes per minute at intensity 1.0.
    pub crash_rate_per_min: f64,
    /// Crash downtime range, microseconds (node and its links revive
    /// together after a draw from this range).
    pub crash_downtime_us: (u64, u64),
    /// Link flap bursts per minute at intensity 1.0.
    pub flap_rate_per_min: f64,
    /// Down/up cycles per burst.
    pub flap_cycles: (u32, u32),
    /// One flap cycle's period range, microseconds (down for half of
    /// it, up for the other half).
    pub flap_period_us: (u64, u64),
    /// Bandwidth squeeze windows per minute at intensity 1.0.
    pub squeeze_rate_per_min: f64,
    /// Background-utilization range of a squeeze, thousandths.
    pub squeeze_permille: (u16, u16),
    /// Squeeze window length range, microseconds.
    pub squeeze_window_us: (u64, u64),
    /// Lease-expiry storms per minute at intensity 1.0.
    pub storm_rate_per_min: f64,
    /// Members crashed per storm.
    pub storm_size: (u32, u32),
    /// Member downtime range, microseconds, before the process revives
    /// and re-registers.
    pub storm_downtime_us: (u64, u64),
    /// *Grey* latency-sag windows per minute at intensity 1.0: the
    /// member stays alive and keeps renewing its lease, but serves at a
    /// multiple of its advertised latency. Defaults to 0.0 so plans
    /// generated before grey faults existed replay bit-identically.
    pub lag_rate_per_min: f64,
    /// Latency multiplication range during a lag window, permille
    /// (1500 = 1.5× advertised latency).
    pub lag_factor_permille: (u16, u16),
    /// Lag window length range, microseconds.
    pub lag_window_us: (u64, u64),
    /// *Grey* throughput-sag windows per minute at intensity 1.0: the
    /// member stays alive but delivers a fraction of its advertised
    /// throughput — the fault that is invisible to liveness checks.
    /// Defaults to 0.0 (see `lag_rate_per_min`).
    pub sag_rate_per_min: f64,
    /// Delivered-throughput range during a sag window, permille of
    /// advertised (300 = the service delivers 30%).
    pub sag_throughput_permille: (u16, u16),
    /// Sag window length range, microseconds.
    pub sag_window_us: (u64, u64),
    /// Nodes that must never crash (endpoints). Their links can still
    /// flap or be squeezed — a degraded path is a composition problem,
    /// a missing endpoint is not.
    pub protect: Vec<NodeId>,
}

impl Default for ChaosModel {
    fn default() -> ChaosModel {
        ChaosModel {
            total_duration: SimTime::from_secs(30),
            crash_rate_per_min: 4.0,
            crash_downtime_us: (2_000_000, 8_000_000),
            flap_rate_per_min: 4.0,
            flap_cycles: (1, 3),
            flap_period_us: (400_000, 1_600_000),
            squeeze_rate_per_min: 6.0,
            squeeze_permille: (500, 950),
            squeeze_window_us: (2_000_000, 6_000_000),
            storm_rate_per_min: 2.0,
            storm_size: (1, 3),
            storm_downtime_us: (3_000_000, 9_000_000),
            lag_rate_per_min: 0.0,
            lag_factor_permille: (1_500, 4_000),
            lag_window_us: (3_000_000, 8_000_000),
            sag_rate_per_min: 0.0,
            sag_throughput_permille: (200, 600),
            sag_window_us: (3_000_000, 8_000_000),
            protect: Vec::new(),
        }
    }
}

/// A discovery-plane fault: service processes crashing and reviving,
/// exercising lease expiry. Indices address the caller's member list
/// (see [`ChaosPlan::drive_discovery`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Member `member_index` silently stops renewing its lease.
    CrashMember(usize),
    /// Member `member_index` comes back and re-registers.
    ReviveMember(usize),
    /// Grey fault: the member starts serving at `factor_permille` of
    /// its advertised latency (1500 = 1.5× slower) while staying alive
    /// and routable.
    LagMember {
        /// Index into the caller's member list.
        index: usize,
        /// Latency multiplier, permille of advertised.
        factor_permille: u16,
    },
    /// The lag window ends; the member serves at advertised latency.
    UnlagMember(usize),
    /// Grey fault: the member delivers only `throughput_permille` of
    /// its advertised throughput while staying alive and routable —
    /// `plan_alive`/`plan_routable` keep answering `true`.
    SagMember {
        /// Index into the caller's member list.
        index: usize,
        /// Delivered throughput, permille of advertised.
        throughput_permille: u16,
    },
    /// The sag window ends; the member delivers full throughput.
    UnsagMember(usize),
}

/// Event counts of a generated plan, for scorecards and logs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosSummary {
    /// Node crashes (each also revives within the horizon).
    pub node_crashes: usize,
    /// Link faults emitted *because* their host crashed.
    pub correlated_link_faults: usize,
    /// Link flap down/up cycles.
    pub link_flaps: usize,
    /// Bandwidth squeeze windows.
    pub squeezes: usize,
    /// Lease-expiry storms.
    pub lease_storms: usize,
    /// Grey latency-sag windows.
    pub lag_windows: usize,
    /// Grey throughput-sag windows.
    pub sag_windows: usize,
    /// Total network fault events in the schedule.
    pub fault_events: usize,
    /// Total discovery actions.
    pub discovery_actions: usize,
}

/// A compiled chaos plan: the reproducible product of `(topology,
/// member_count, model, chaos_seed, intensity)`.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    faults: FailureSchedule,
    actions: Vec<(SimTime, ChaosAction)>,
    summary: ChaosSummary,
}

fn scaled_count(rate_per_min: f64, minutes: f64, intensity: f64) -> usize {
    (rate_per_min * minutes * intensity.max(0.0)).round() as usize
}

fn draw_range_u64(rng: &mut SmallRng, range: (u64, u64)) -> u64 {
    let (lo, hi) = (range.0.min(range.1), range.0.max(range.1));
    if lo == hi {
        lo
    } else {
        rng.random_range(lo..=hi)
    }
}

impl ChaosPlan {
    /// Compile `model` into a concrete plan. Same inputs, same plan —
    /// the generator draws every value from one `SmallRng` seeded with
    /// `chaos_seed`, in a fixed phase order (crashes, flaps, squeezes,
    /// storms). `intensity` scales the event count of every phase;
    /// `member_count` bounds the member indices storms may address
    /// (`0` disables storms).
    pub fn generate(
        topology: &Topology,
        member_count: usize,
        model: &ChaosModel,
        chaos_seed: u64,
        intensity: f64,
    ) -> ChaosPlan {
        let mut rng = SmallRng::seed_from_u64(chaos_seed);
        let horizon = model.total_duration.as_micros();
        let minutes = model.total_duration.as_secs_f64() / 60.0;
        let mut faults = FailureSchedule::new();
        let mut actions: Vec<(SimTime, ChaosAction)> = Vec::new();
        let mut summary = ChaosSummary::default();

        let crashable: Vec<NodeId> = topology
            .node_ids()
            .filter(|n| !model.protect.contains(n))
            .collect();
        let links: Vec<LinkId> = topology.link_ids().collect();
        let at = |micros: u64| SimTime(micros.min(horizon));

        // Phase 1: node crashes with correlated link failures. The
        // crashed host's access links drop at the same instant (the
        // schedule preserves insertion order across equal times: node
        // first, then its links) and everything revives together.
        if !crashable.is_empty() {
            for _ in 0..scaled_count(model.crash_rate_per_min, minutes, intensity) {
                let node = crashable[rng.random_range(0..crashable.len())];
                let start = rng.random_range(0..horizon.max(1));
                let end = start.saturating_add(draw_range_u64(&mut rng, model.crash_downtime_us));
                faults = faults.at(at(start), FailureEvent::NodeDown(node));
                for &(_, link) in topology.neighbors(node) {
                    faults = faults.at(at(start), FailureEvent::LinkDown(link));
                    summary.correlated_link_faults += 1;
                }
                faults = faults.at(at(end), FailureEvent::NodeUp(node));
                for &(_, link) in topology.neighbors(node) {
                    faults = faults.at(at(end), FailureEvent::LinkUp(link));
                }
                summary.node_crashes += 1;
            }
        }

        // Phase 2: link flap bursts — short down/up cycles on one link.
        if !links.is_empty() {
            for _ in 0..scaled_count(model.flap_rate_per_min, minutes, intensity) {
                let link = links[rng.random_range(0..links.len())];
                let cycles = rng.random_range(model.flap_cycles.0..=model.flap_cycles.1.max(1));
                let mut t = rng.random_range(0..horizon.max(1));
                for _ in 0..cycles {
                    let period = draw_range_u64(&mut rng, model.flap_period_us);
                    faults = faults.at(at(t), FailureEvent::LinkDown(link));
                    faults = faults.at(at(t + period / 2), FailureEvent::LinkUp(link));
                    t = t.saturating_add(period);
                    summary.link_flaps += 1;
                }
            }
        }

        // Phase 3: background-bandwidth squeeze windows.
        if !links.is_empty() {
            for _ in 0..scaled_count(model.squeeze_rate_per_min, minutes, intensity) {
                let link = links[rng.random_range(0..links.len())];
                let start = rng.random_range(0..horizon.max(1));
                let window = draw_range_u64(&mut rng, model.squeeze_window_us);
                let permille = rng
                    .random_range(model.squeeze_permille.0..=model.squeeze_permille.1.max(1))
                    .min(1000);
                faults = faults.at(at(start), FailureEvent::Squeeze { link, permille });
                faults = faults.at(at(start + window), FailureEvent::Unsqueeze(link));
                summary.squeezes += 1;
            }
        }

        // Phase 4: lease-expiry storms. Each storm crashes a handful of
        // members at one instant; every crash pairs with a later revive,
        // so the plan's net effect on membership is zero — what it
        // exercises is the staleness window and re-registration churn.
        if member_count > 0 {
            for _ in 0..scaled_count(model.storm_rate_per_min, minutes, intensity) {
                let start = rng.random_range(0..horizon.max(1));
                let size = rng.random_range(model.storm_size.0..=model.storm_size.1.max(1));
                for _ in 0..size {
                    let member = rng.random_range(0..member_count);
                    let end =
                        start.saturating_add(draw_range_u64(&mut rng, model.storm_downtime_us));
                    actions.push((at(start), ChaosAction::CrashMember(member)));
                    actions.push((at(end), ChaosAction::ReviveMember(member)));
                }
                summary.lease_storms += 1;
            }
        }

        // Phase 5: grey latency sags. A member keeps renewing its lease
        // and answering liveness, but serves at a multiple of its
        // advertised latency for a window — paired Lag/Unlag, the
        // Squeeze/Unsqueeze pattern on the discovery plane. Both grey
        // phases sit *after* the original four with default rate 0.0,
        // so a pre-grey `(seed, intensity)` pair draws the exact same
        // value sequence it always did.
        if member_count > 0 {
            for _ in 0..scaled_count(model.lag_rate_per_min, minutes, intensity) {
                let index = rng.random_range(0..member_count);
                let start = rng.random_range(0..horizon.max(1));
                let window = draw_range_u64(&mut rng, model.lag_window_us);
                let factor_permille = rng
                    .random_range(model.lag_factor_permille.0..=model.lag_factor_permille.1.max(1))
                    .max(1_000);
                actions.push((
                    at(start),
                    ChaosAction::LagMember {
                        index,
                        factor_permille,
                    },
                ));
                actions.push((at(start + window), ChaosAction::UnlagMember(index)));
                summary.lag_windows += 1;
            }
        }

        // Phase 6: grey throughput sags — the headline grey failure.
        // The member delivers a fraction of its advertised throughput
        // while `plan_alive`/`plan_routable` keep saying yes.
        if member_count > 0 {
            for _ in 0..scaled_count(model.sag_rate_per_min, minutes, intensity) {
                let index = rng.random_range(0..member_count);
                let start = rng.random_range(0..horizon.max(1));
                let window = draw_range_u64(&mut rng, model.sag_window_us);
                let throughput_permille = rng
                    .random_range(
                        model.sag_throughput_permille.0..=model.sag_throughput_permille.1.max(1),
                    )
                    .min(1_000);
                actions.push((
                    at(start),
                    ChaosAction::SagMember {
                        index,
                        throughput_permille,
                    },
                ));
                actions.push((at(start + window), ChaosAction::UnsagMember(index)));
                summary.sag_windows += 1;
            }
        }
        actions.sort_by_key(|&(t, _)| t);

        summary.fault_events = faults.events().len();
        summary.discovery_actions = actions.len();
        ChaosPlan {
            faults,
            actions,
            summary,
        }
    }

    /// The network-fault schedule, ready for
    /// [`run_resilient`](crate::run_resilient).
    pub fn schedule(&self) -> &FailureSchedule {
        &self.faults
    }

    /// The discovery-plane actions in time order.
    pub fn actions(&self) -> &[(SimTime, ChaosAction)] {
        &self.actions
    }

    /// Event counts.
    pub fn summary(&self) -> ChaosSummary {
        self.summary
    }

    /// Replay the discovery-plane actions against a live driver and
    /// registry: the driver ticks at each action time (renewing
    /// survivors, expiring the dead), then the action applies. Member
    /// indices address `members`; out-of-range indices are skipped.
    /// Returns the number of actions applied.
    pub fn drive_discovery(
        &self,
        driver: &mut DiscoveryDriver,
        registry: &mut ServiceRegistry,
        members: &[MemberId],
    ) -> usize {
        let mut applied = 0usize;
        for &(time, action) in &self.actions {
            driver.tick(registry, time);
            match action {
                ChaosAction::CrashMember(index) => {
                    if let Some(&member) = members.get(index) {
                        driver.crash(member);
                        applied += 1;
                    }
                }
                ChaosAction::ReviveMember(index) => {
                    if let Some(&member) = members.get(index) {
                        if driver.revive(registry, member, time).is_ok() {
                            applied += 1;
                        }
                    }
                }
                // Grey faults never touch the discovery plane — the
                // whole point is that leases keep renewing. They are
                // interpreted by `ChaosWorld` (delivery/latency models)
                // and skipped in this registry-only replay.
                ChaosAction::LagMember { .. }
                | ChaosAction::UnlagMember(_)
                | ChaosAction::SagMember { .. }
                | ChaosAction::UnsagMember(_) => {}
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::{DomainVector, FormatRegistry, MediaKind};
    use qosc_netsim::Node;
    use qosc_profiles::{ConversionSpec, ServiceSpec};
    use qosc_services::{DiscoveryConfig, TranscoderDescriptor};

    fn star_topology() -> (Topology, NodeId, Vec<NodeId>) {
        let mut topo = Topology::new();
        let hub = topo.add_node(Node::unconstrained("hub"));
        let leaves: Vec<NodeId> = (0..5)
            .map(|i| {
                let leaf = topo.add_node(Node::unconstrained(format!("leaf-{i}")));
                topo.connect_simple(hub, leaf, 1e6).unwrap();
                leaf
            })
            .collect();
        (topo, hub, leaves)
    }

    #[test]
    fn same_seed_reproduces_the_plan_and_a_new_seed_changes_it() {
        let (topo, _, _) = star_topology();
        let model = ChaosModel::default();
        let a = ChaosPlan::generate(&topo, 4, &model, 42, 0.75);
        let b = ChaosPlan::generate(&topo, 4, &model, 42, 0.75);
        assert_eq!(a.schedule().events(), b.schedule().events());
        assert_eq!(a.actions(), b.actions());
        assert_eq!(a.summary(), b.summary());

        let c = ChaosPlan::generate(&topo, 4, &model, 43, 0.75);
        assert_ne!(
            a.schedule().events(),
            c.schedule().events(),
            "a different chaos seed draws a different fault sequence"
        );
    }

    #[test]
    fn intensity_scales_the_event_counts() {
        let (topo, _, _) = star_topology();
        let model = ChaosModel::default();
        let low = ChaosPlan::generate(&topo, 4, &model, 7, 0.25).summary();
        let high = ChaosPlan::generate(&topo, 4, &model, 7, 1.0).summary();
        assert!(high.fault_events > low.fault_events);
        assert!(high.node_crashes >= low.node_crashes);
        assert!(high.squeezes >= low.squeezes);
        let zero = ChaosPlan::generate(&topo, 4, &model, 7, 0.0).summary();
        assert_eq!(zero.fault_events, 0);
        assert_eq!(zero.discovery_actions, 0);
    }

    #[test]
    fn node_crashes_correlate_their_host_links() {
        let (topo, _, _) = star_topology();
        let plan = ChaosPlan::generate(&topo, 0, &ChaosModel::default(), 11, 1.0);
        let events = plan.schedule().events();
        let mut saw_crash = false;
        for (i, &(t, event)) in events.iter().enumerate() {
            if let FailureEvent::NodeDown(node) = event {
                saw_crash = true;
                // Every incident link of the crashed host goes down at
                // the same instant, right after the node event.
                for (k, &(_, link)) in topo.neighbors(node).iter().enumerate() {
                    assert_eq!(
                        events[i + 1 + k],
                        (t, FailureEvent::LinkDown(link)),
                        "correlated link fault rides the crash instant"
                    );
                }
            }
        }
        assert!(saw_crash, "intensity 1.0 over 30 s produces crashes");
    }

    #[test]
    fn protected_nodes_never_crash_and_events_stay_in_horizon() {
        let (topo, hub, leaves) = star_topology();
        let model = ChaosModel {
            protect: vec![hub, leaves[0]],
            ..ChaosModel::default()
        };
        let plan = ChaosPlan::generate(&topo, 4, &model, 3, 1.0);
        for &(t, event) in plan.schedule().events() {
            assert!(t <= model.total_duration, "event inside the horizon");
            if let FailureEvent::NodeDown(node) = event {
                assert_ne!(node, hub, "protected hub never crashes");
                assert_ne!(node, leaves[0], "protected leaf never crashes");
            }
        }
        for &(t, _) in plan.actions() {
            assert!(t <= model.total_duration);
        }
    }

    #[test]
    fn grey_phases_default_off_and_leave_existing_plans_bit_identical() {
        let (topo, _, _) = star_topology();
        let baseline = ChaosModel::default();
        assert_eq!(baseline.lag_rate_per_min, 0.0);
        assert_eq!(baseline.sag_rate_per_min, 0.0);
        let grey = ChaosModel {
            lag_rate_per_min: 3.0,
            sag_rate_per_min: 3.0,
            ..ChaosModel::default()
        };
        let a = ChaosPlan::generate(&topo, 4, &baseline, 42, 1.0);
        let b = ChaosPlan::generate(&topo, 4, &grey, 42, 1.0);
        // Grey phases draw strictly after the original four, so the
        // fault schedule — and every pre-grey action — is untouched.
        assert_eq!(a.schedule().events(), b.schedule().events());
        assert!(a.summary().lag_windows == 0 && a.summary().sag_windows == 0);
        assert!(b.summary().lag_windows > 0 && b.summary().sag_windows > 0);
        let pre_grey = |plan: &ChaosPlan| {
            let mut v: Vec<(SimTime, ChaosAction)> = plan
                .actions()
                .iter()
                .copied()
                .filter(|(_, act)| {
                    matches!(
                        act,
                        ChaosAction::CrashMember(_) | ChaosAction::ReviveMember(_)
                    )
                })
                .collect();
            v.sort_by_key(|&(t, _)| t);
            v
        };
        assert_eq!(pre_grey(&a), pre_grey(&b));
    }

    #[test]
    fn grey_windows_are_seeded_and_intensity_scaled() {
        let (topo, _, _) = star_topology();
        let model = ChaosModel {
            sag_rate_per_min: 6.0,
            lag_rate_per_min: 4.0,
            ..ChaosModel::default()
        };
        let a = ChaosPlan::generate(&topo, 6, &model, 9, 1.0);
        let b = ChaosPlan::generate(&topo, 6, &model, 9, 1.0);
        assert_eq!(a.actions(), b.actions(), "same seed, same grey windows");
        let low = ChaosPlan::generate(&topo, 6, &model, 9, 0.25).summary();
        let high = a.summary();
        assert!(high.sag_windows > low.sag_windows);
        assert!(high.lag_windows >= low.lag_windows);
        // Every window is paired and bounded.
        let mut open_sags = 0i64;
        for &(t, action) in a.actions() {
            assert!(t <= model.total_duration);
            match action {
                ChaosAction::SagMember {
                    throughput_permille,
                    ..
                } => {
                    assert!((1..=1_000).contains(&throughput_permille));
                    open_sags += 1;
                }
                ChaosAction::UnsagMember(_) => open_sags -= 1,
                ChaosAction::LagMember {
                    factor_permille, ..
                } => assert!(factor_permille >= 1_000, "lag means slower, never faster"),
                _ => {}
            }
        }
        assert_eq!(open_sags, 0, "every sag window closes inside the horizon");
    }

    #[test]
    fn grey_actions_are_discovery_noops() {
        let mut topo = Topology::new();
        let host = topo.add_node(Node::unconstrained("host"));
        let mut formats = FormatRegistry::new();
        formats.register_abstract("in", MediaKind::Video);
        formats.register_abstract("out", MediaKind::Video);
        let mut registry = ServiceRegistry::new();
        let mut driver = DiscoveryDriver::new(DiscoveryConfig::default());
        let spec = ServiceSpec::new(
            "svc",
            vec![ConversionSpec::new("in", "out", DomainVector::new())],
        );
        let descriptor = TranscoderDescriptor::resolve(&spec, &formats, host).unwrap();
        let member = driver.join(&mut registry, descriptor, SimTime::ZERO);
        let model = ChaosModel {
            crash_rate_per_min: 0.0,
            flap_rate_per_min: 0.0,
            squeeze_rate_per_min: 0.0,
            storm_rate_per_min: 0.0,
            sag_rate_per_min: 10.0,
            lag_rate_per_min: 10.0,
            ..ChaosModel::default()
        };
        let plan = ChaosPlan::generate(&topo, 1, &model, 17, 1.0);
        assert!(plan.summary().sag_windows > 0);
        let applied = plan.drive_discovery(&mut driver, &mut registry, &[member]);
        assert_eq!(applied, 0, "grey faults never touch the registry");
        assert!(driver.is_advertised(&registry, member));
    }

    #[test]
    fn lease_storms_round_trip_through_discovery() {
        let (topo, host, _) = {
            let mut topo = Topology::new();
            let host = topo.add_node(Node::unconstrained("host"));
            (topo, host, ())
        };
        let mut formats = FormatRegistry::new();
        formats.register_abstract("in", MediaKind::Video);
        formats.register_abstract("out", MediaKind::Video);
        let mut registry = ServiceRegistry::new();
        let mut driver = DiscoveryDriver::new(DiscoveryConfig {
            ttl: SimTime::from_secs(2),
        });
        let members: Vec<MemberId> = (0..4)
            .map(|i| {
                let spec = ServiceSpec::new(
                    format!("svc-{i}"),
                    vec![ConversionSpec::new("in", "out", DomainVector::new())],
                );
                let descriptor = TranscoderDescriptor::resolve(&spec, &formats, host).unwrap();
                driver.join(&mut registry, descriptor, SimTime::ZERO)
            })
            .collect();

        let model = ChaosModel {
            storm_rate_per_min: 8.0,
            ..ChaosModel::default()
        };
        let plan = ChaosPlan::generate(&topo, members.len(), &model, 21, 1.0);
        assert!(plan.summary().lease_storms > 0);
        let applied = plan.drive_discovery(&mut driver, &mut registry, &members);
        assert!(applied > 0);

        // Every crash pairs with a revive inside the horizon, so after
        // settling the whole fleet is advertised again. A revive inside
        // the staleness window leaves the *old* advertisement live as an
        // orphan until its lease runs out, so settle one TTL past the
        // horizon: orphans expire, live members renew.
        driver.tick(
            &mut registry,
            model
                .total_duration
                .plus_micros(SimTime::from_secs(2).as_micros() + 1),
        );
        for &member in &members {
            assert!(driver.is_advertised(&registry, member));
        }
        assert_eq!(registry.live_count(), members.len());
    }
}
