//! Delivery measurement.

use qosc_media::{Axis, ParamVector};
use qosc_satisfaction::SatisfactionProfile;

/// What the receiver measured over one streaming session.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionReport {
    /// Frames the sender emitted.
    pub frames_sent: u64,
    /// Frames the receiver rendered.
    pub frames_delivered: u64,
    /// Frames lost to link loss, failed nodes or overload drops.
    pub frames_lost: u64,
    /// Wall-clock stream duration, seconds.
    pub duration_secs: f64,
    /// Delivered frame rate (frames delivered / duration).
    pub delivered_fps: f64,
    /// Mean end-to-end frame latency, microseconds.
    pub mean_latency_us: f64,
    /// Standard deviation of inter-arrival times, microseconds (jitter).
    pub jitter_us: f64,
    /// The configured parameters at the receiver stage, with the frame
    /// rate replaced by the measured rate.
    pub delivered_params: ParamVector,
    /// The user's satisfaction with `delivered_params` — the measured
    /// counterpart of the algorithm's predicted satisfaction.
    pub measured_satisfaction: f64,
}

impl SessionReport {
    /// Loss fraction in `[0, 1]`.
    pub fn loss_fraction(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            self.frames_lost as f64 / self.frames_sent as f64
        }
    }

    /// Fill the derived fields from raw counters and arrival samples.
    pub(crate) fn finalize(
        &mut self,
        profile: &SatisfactionProfile,
        planned_params: ParamVector,
        arrivals_us: &[u64],
        latencies_us: &[u64],
    ) {
        self.frames_lost = self.frames_sent.saturating_sub(self.frames_delivered);
        self.delivered_fps = if self.duration_secs > 0.0 {
            self.frames_delivered as f64 / self.duration_secs
        } else {
            0.0
        };
        self.mean_latency_us = mean(latencies_us);
        self.jitter_us = inter_arrival_stddev(arrivals_us);
        self.delivered_params = planned_params;
        if planned_params.get(Axis::FrameRate).is_some() {
            self.delivered_params
                .set(Axis::FrameRate, self.delivered_fps);
        }
        self.measured_satisfaction = profile.score(&self.delivered_params);
    }
}

fn mean(samples: &[u64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().map(|&x| x as f64).sum::<f64>() / samples.len() as f64
    }
}

fn inter_arrival_stddev(arrivals_us: &[u64]) -> f64 {
    if arrivals_us.len() < 3 {
        return 0.0;
    }
    let gaps: Vec<f64> = arrivals_us
        .windows(2)
        .map(|w| (w[1] - w[0]) as f64)
        .collect();
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let variance = gaps.iter().map(|g| (g - mean_gap).powi(2)).sum::<f64>() / gaps.len() as f64;
    variance.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_satisfaction::SatisfactionProfile;

    #[test]
    fn finalize_computes_metrics() {
        let profile = SatisfactionProfile::paper_table1();
        let mut report = SessionReport {
            frames_sent: 100,
            frames_delivered: 90,
            duration_secs: 3.0,
            ..SessionReport::default()
        };
        let planned = ParamVector::from_pairs([(Axis::FrameRate, 30.0)]);
        // Perfectly periodic arrivals → zero jitter.
        let arrivals: Vec<u64> = (0..90).map(|i| i * 33_333).collect();
        let latencies: Vec<u64> = vec![5_000; 90];
        report.finalize(&profile, planned, &arrivals, &latencies);
        assert_eq!(report.frames_lost, 10);
        assert!((report.delivered_fps - 30.0).abs() < 1e-9);
        assert!((report.mean_latency_us - 5_000.0).abs() < 1e-9);
        assert!(report.jitter_us < 1.0);
        assert!((report.loss_fraction() - 0.1).abs() < 1e-12);
        assert!((report.measured_satisfaction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jitter_detects_irregularity() {
        let regular: Vec<u64> = (0..10).map(|i| i * 1000).collect();
        let mut irregular = regular.clone();
        irregular[5] += 900;
        assert_eq!(inter_arrival_stddev(&regular), 0.0);
        assert!(inter_arrival_stddev(&irregular) > 100.0);
    }

    #[test]
    fn empty_session_is_safe() {
        let profile = SatisfactionProfile::paper_table1();
        let mut report = SessionReport::default();
        report.finalize(&profile, ParamVector::new(), &[], &[]);
        assert_eq!(report.delivered_fps, 0.0);
        assert_eq!(report.loss_fraction(), 0.0);
        assert_eq!(report.measured_satisfaction, 0.0);
    }
}
