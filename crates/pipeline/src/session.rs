//! Event-driven execution of one adaptation plan.
//!
//! The simulation is per-frame: the sender emits frames at the plan's
//! configured frame rate; each frame crosses every stage of the chain,
//! paying a trans-coding delay on the stage's host (proportional to the
//! stage's CPU demand against the host's capacity), then a serialization
//! delay at the reserved session rate plus the route's propagation delay
//! on the hop to the next stage; seeded Bernoulli loss applies per hop.
//! Frames that reach a failed node are dropped — failure injection is a
//! [`FailureSchedule`](crate::FailureSchedule) applied at simulation
//! time.

use crate::failure::FailureSchedule;
use crate::report::SessionReport;
use crate::{PipelineError, Result};
use qosc_core::AdaptationPlan;
use qosc_netsim::{EventQueue, Network, ReservationId, SimTime};
use qosc_satisfaction::SatisfactionProfile;
use qosc_services::ServiceRegistry;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Configuration of one streaming session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// How long the sender emits frames.
    pub duration: SimTime,
    /// RNG seed for loss and processing-noise draws.
    pub seed: u64,
    /// Faults injected during the session.
    pub failures: FailureSchedule,
    /// Frame rate fallback for plans without a frame-rate axis (page/
    /// image "tick" rate).
    pub fallback_fps: f64,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            duration: SimTime::from_secs(10),
            seed: 0,
            failures: FailureSchedule::new(),
            fallback_fps: 10.0,
        }
    }
}

#[derive(Debug)]
enum Event {
    Emit { frame: u64 },
    Arrive { frame: u64, stage: usize },
    Fault(crate::failure::FailureEvent),
}

struct Hop {
    rate_bps: f64,
    prop_delay_us: u64,
    loss: f64,
    alive: bool,
    from: qosc_netsim::NodeId,
    to: qosc_netsim::NodeId,
}

/// Run one session of `plan` over `network`.
///
/// Bandwidth is reserved per hop for the lifetime of the session
/// (released before returning); admission failure is an error. The
/// service registry provides per-stage CPU demand for trans-coding
/// delay.
pub fn run_session(
    network: &mut Network,
    services: &ServiceRegistry,
    plan: &AdaptationPlan,
    profile: &SatisfactionProfile,
    config: &SessionConfig,
) -> Result<SessionReport> {
    if plan.steps.len() < 2 {
        return Err(PipelineError::DegeneratePlan);
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Frame rate and per-stage frame sizes.
    let last = plan.steps.last().expect("≥2 steps");
    let fps = last
        .params
        .get(qosc_media::Axis::FrameRate)
        .filter(|f| *f > 0.0)
        .unwrap_or(config.fallback_fps);
    let frame_interval_us = (1e6 / fps).round() as u64;

    // Hops between consecutive stages; reserve the session rate.
    let mut hops: Vec<Hop> = Vec::with_capacity(plan.steps.len() - 1);
    let mut reservations: Vec<ReservationId> = Vec::new();
    for pair in plan.steps.windows(2) {
        let (from, to) = (&pair[0], &pair[1]);
        // The hop carries what the *downstream* stage is configured to
        // consume (Equa. 2: the edge into a service is constrained by the
        // service's own chosen parameters).
        let rate = to.input_bps.max(1.0);
        let route = network.route_between(from.host, to.host)?;
        let mut loss = 0.0f64;
        let mut survive = 1.0f64;
        for &link in &route.links {
            let spec = network.topology().link(link)?;
            survive *= 1.0 - spec.loss;
        }
        loss += 1.0 - survive;
        match network.reserve_between(from.host, to.host, rate) {
            Ok(id) => reservations.push(id),
            Err(e) => {
                for id in reservations {
                    let _ = network.release(id);
                }
                return Err(PipelineError::AdmissionRejected(e.to_string()));
            }
        }
        hops.push(Hop {
            rate_bps: rate,
            prop_delay_us: route.delay_us,
            loss,
            alive: true,
            from: from.host,
            to: to.host,
        });
    }

    // Per-stage processing throughput (bits/s the host can trans-code).
    // `None` means effectively instantaneous (endpoints, or unconstrained
    // hosts).
    let mut stage_throughput: Vec<Option<f64>> = Vec::with_capacity(plan.steps.len());
    for step in &plan.steps {
        let throughput = step.service.and_then(|id| {
            let descriptor = services.get(id).ok()?;
            let host_mips = network.topology().node(step.host).ok()?.cpu_mips;
            if !host_mips.is_finite() || descriptor.cpu_mips_per_mbps <= 0.0 {
                return None;
            }
            Some(host_mips / descriptor.cpu_mips_per_mbps * 1e6)
        });
        stage_throughput.push(throughput);
    }

    // Event loop.
    let mut queue: EventQueue<Event> = EventQueue::new();
    for &(time, fault) in config.failures.events() {
        queue.schedule(time, Event::Fault(fault));
    }
    queue.schedule(SimTime::ZERO, Event::Emit { frame: 0 });

    let frames_total = ((config.duration.as_secs_f64()) * fps).floor() as u64;
    let mut emit_time: Vec<u64> = Vec::new();
    let mut arrivals: Vec<u64> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut report = SessionReport::default();

    while let Some((now, event)) = queue.pop() {
        match event {
            Event::Emit { frame } => {
                if frame >= frames_total {
                    continue;
                }
                report.frames_sent += 1;
                emit_time.push(now.as_micros());
                queue.schedule(now, Event::Arrive { frame, stage: 0 });
                queue.schedule(
                    now.plus_micros(frame_interval_us),
                    Event::Emit { frame: frame + 1 },
                );
            }
            Event::Arrive { frame, stage } => {
                let step = &plan.steps[stage];
                if network.node_failed(step.host) {
                    continue; // frame dies on the failed stage
                }
                if stage + 1 == plan.steps.len() {
                    // Delivered.
                    arrivals.push(now.as_micros());
                    latencies.push(now.as_micros() - emit_time[frame as usize]);
                    report.frames_delivered += 1;
                    continue;
                }
                let hop = &hops[stage];
                if !hop.alive || network.node_failed(hop.to) {
                    continue;
                }
                // Trans-coding delay (with up to 10% seeded noise).
                let frame_bits = hop.rate_bps / fps;
                let processing_us = match stage_throughput[stage] {
                    Some(throughput) => {
                        let base = frame_bits / throughput * 1e6;
                        (base * (1.0 + rng.random_range(0.0..0.1))) as u64
                    }
                    None => 0,
                };
                // Loss on the hop.
                if hop.loss > 0.0 && rng.random_range(0.0..1.0) < hop.loss {
                    continue;
                }
                let serialization_us = (frame_bits / hop.rate_bps * 1e6) as u64;
                let arrival = now
                    .plus_micros(processing_us)
                    .plus_micros(serialization_us)
                    .plus_micros(hop.prop_delay_us);
                queue.schedule(
                    arrival,
                    Event::Arrive {
                        frame,
                        stage: stage + 1,
                    },
                );
            }
            Event::Fault(fault) => {
                FailureSchedule::apply(fault, network);
                // Re-evaluate hop viability under the new failure set.
                for hop in &mut hops {
                    hop.alive = network.available_between(hop.from, hop.to).is_ok();
                }
            }
        }
    }

    for id in reservations {
        let _ = network.release(id);
    }

    report.duration_secs = config.duration.as_secs_f64();
    report.finalize(profile, last.params, &arrivals, &latencies);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailureEvent;
    use qosc_core::SelectOptions;
    use qosc_workload::paper;

    fn figure6_session(config: &SessionConfig) -> (SessionReport, f64) {
        let mut scenario = paper::figure6_scenario(true);
        let composition = scenario.compose(&SelectOptions::default()).unwrap();
        let plan = composition.plan.unwrap();
        let predicted = plan.predicted_satisfaction;
        let profile = scenario.profiles.effective_satisfaction();
        let report = run_session(
            &mut scenario.network,
            &scenario.services,
            &plan,
            &profile,
            config,
        )
        .unwrap();
        (report, predicted)
    }

    #[test]
    fn clean_session_delivers_predicted_quality() {
        let (report, predicted) = figure6_session(&SessionConfig::default());
        assert!(report.frames_sent >= 199, "10 s at 20 fps");
        assert_eq!(report.frames_lost, 0);
        assert!(
            (report.measured_satisfaction - predicted).abs() < 0.02,
            "measured {} vs predicted {predicted}",
            report.measured_satisfaction
        );
        assert!(report.mean_latency_us > 0.0);
    }

    #[test]
    fn mid_session_failure_halves_delivery() {
        let mut scenario = paper::figure6_scenario(true);
        let composition = scenario.compose(&SelectOptions::default()).unwrap();
        let plan = composition.plan.unwrap();
        let profile = scenario.profiles.effective_satisfaction();
        // T7's host dies at t = 5 s of a 10 s stream.
        let t7_host = plan.steps[1].host;
        let config = SessionConfig {
            failures: FailureSchedule::new()
                .at(SimTime::from_secs(5), FailureEvent::NodeDown(t7_host)),
            ..SessionConfig::default()
        };
        let report = run_session(
            &mut scenario.network,
            &scenario.services,
            &plan,
            &profile,
            &config,
        )
        .unwrap();
        let delivered_fraction = report.frames_delivered as f64 / report.frames_sent as f64;
        assert!(
            (0.4..0.6).contains(&delivered_fraction),
            "expected roughly half the frames, got {delivered_fraction}"
        );
        assert!(report.measured_satisfaction < 0.5);
    }

    #[test]
    fn degenerate_plan_rejected() {
        let mut scenario = paper::figure6_scenario(true);
        let profile = scenario.profiles.effective_satisfaction();
        let plan = AdaptationPlan {
            steps: vec![],
            predicted_satisfaction: 0.0,
            total_cost: 0.0,
        };
        let services = qosc_services::ServiceRegistry::new();
        assert!(matches!(
            run_session(
                &mut scenario.network,
                &services,
                &plan,
                &profile,
                &SessionConfig::default()
            ),
            Err(PipelineError::DegeneratePlan)
        ));
    }

    #[test]
    fn sessions_are_deterministic() {
        let (a, _) = figure6_session(&SessionConfig::default());
        let (b, _) = figure6_session(&SessionConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn constrained_cpu_adds_transcoding_latency() {
        use qosc_core::{Composer, SelectOptions};
        use qosc_netsim::Topology;
        use qosc_profiles::{
            ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, ProfileSet, UserProfile,
        };
        use qosc_services::{catalog, TranscoderDescriptor};

        let run_with_cpu = |cpu_mips: f64| -> f64 {
            let formats = qosc_media::FormatRegistry::with_builtins();
            let mut topo = Topology::new();
            let server = topo.add_node(qosc_netsim::Node::unconstrained("server"));
            let proxy = topo.add_node(qosc_netsim::Node::new("proxy", cpu_mips, 8e9));
            let client = topo.add_node(qosc_netsim::Node::unconstrained("client"));
            topo.connect_simple(server, proxy, 100e6).unwrap();
            topo.connect_simple(proxy, client, 1e6).unwrap();
            let mut network = qosc_netsim::Network::new(topo);
            let mut services = qosc_services::ServiceRegistry::new();
            for spec in catalog::full_catalog() {
                services.register_static(
                    TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap(),
                );
            }
            let profiles = ProfileSet {
                user: UserProfile::demo("cpu-test"),
                content: ContentProfile::demo_video("clip"),
                device: DeviceProfile::demo_pda(),
                context: ContextProfile::default(),
                network: NetworkProfile::broadband(),
            };
            let composer = Composer {
                formats: &formats,
                services: &services,
                network: &network,
            };
            let plan = composer
                .compose(&profiles, server, client, &SelectOptions::default())
                .unwrap()
                .plan
                .expect("solvable");
            let profile = profiles.effective_satisfaction();
            run_session(
                &mut network,
                &services,
                &plan,
                &profile,
                &SessionConfig::default(),
            )
            .unwrap()
            .mean_latency_us
        };

        let weak = run_with_cpu(40.0);
        let strong = run_with_cpu(100_000.0);
        assert!(
            weak > strong * 1.2,
            "a starved proxy CPU should add visible trans-coding latency: weak {weak} µs vs strong {strong} µs"
        );
    }

    #[test]
    fn reservations_are_released() {
        let mut scenario = paper::figure6_scenario(true);
        let composition = scenario.compose(&SelectOptions::default()).unwrap();
        let plan = composition.plan.unwrap();
        let profile = scenario.profiles.effective_satisfaction();
        run_session(
            &mut scenario.network,
            &scenario.services,
            &plan,
            &profile,
            &SessionConfig::default(),
        )
        .unwrap();
        assert_eq!(scenario.network.active_reservations(), 0);
    }
}
