//! # qosc-pipeline
//!
//! Executes the plans produced by `qosc-core` as simulated streaming
//! sessions, closing the loop the paper's abstract promises: "a framework
//! for trans-coding multimedia streams [using] self-organizing, resilient
//! data distribution".
//!
//! * [`session`] — an event-driven, per-frame simulation of one
//!   [`AdaptationPlan`](qosc_core::AdaptationPlan): the sender emits
//!   frames at the configured rate, each trans-coding stage adds
//!   processing delay proportional to its CPU demand, each network hop
//!   adds serialization + propagation delay and seeded loss, and the
//!   receiver measures what actually arrived,
//! * [`report`] — delivery metrics and the *measured* satisfaction,
//!   comparable against the algorithm's *predicted* satisfaction,
//! * [`failure`] — a schedule of node/link failures to inject,
//! * [`chaos`] — the deterministic chaos generator: a declarative
//!   [`ChaosModel`] compiled into correlated network faults and
//!   lease-expiry storms, bitwise reproducible from `(chaos_seed,
//!   intensity)`,
//! * [`resilience`] — the self-organizing part: stream, detect starvation
//!   caused by an injected failure, re-compose on the surviving graph,
//!   resume, and report the recovery gap,
//! * [`session_world`] — the chaos-driven world for `qosc-core`'s
//!   steady-state session engine: network faults, discovery churn and
//!   lease expiry fire as the engine's world events and break live
//!   plans mid-session.

pub mod chaos;
pub mod failure;
pub mod report;
pub mod resilience;
pub mod session;
pub mod session_world;

pub use chaos::{ChaosAction, ChaosModel, ChaosPlan, ChaosSummary};
pub use failure::{FailureEvent, FailureSchedule};
pub use qosc_broker::{BandwidthBroker, FlowSpec, SharingPolicy};
pub use report::SessionReport;
pub use resilience::{
    plan_affected, run_resilient, run_resilient_traced, ResilienceConfig, ResilientRun,
    SegmentReport,
};
pub use session::{run_session, SessionConfig};
pub use session_world::{ChaosWorld, DeliveryCacheStats, WorldBuildError, WorldOp};

/// Errors produced by this crate.
#[derive(Debug)]
pub enum PipelineError {
    /// Propagated composition error.
    Core(qosc_core::CoreError),
    /// Propagated network error.
    Net(qosc_netsim::NetError),
    /// The plan has fewer than two steps (no sender→receiver pair).
    DegeneratePlan,
    /// Session admission failed (bandwidth reservation rejected).
    AdmissionRejected(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Core(e) => write!(f, "composition error: {e}"),
            PipelineError::Net(e) => write!(f, "network error: {e}"),
            PipelineError::DegeneratePlan => write!(f, "plan has no stages to execute"),
            PipelineError::AdmissionRejected(detail) => {
                write!(f, "session admission rejected: {detail}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Core(e) => Some(e),
            PipelineError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qosc_core::CoreError> for PipelineError {
    fn from(e: qosc_core::CoreError) -> PipelineError {
        PipelineError::Core(e)
    }
}

impl From<qosc_netsim::NetError> for PipelineError {
    fn from(e: qosc_netsim::NetError) -> PipelineError {
        PipelineError::Net(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PipelineError>;
