//! The chaos-driven [`SessionWorld`] for the steady-state session
//! engine.
//!
//! `qosc-core`'s session engine is world-agnostic: it asks its world
//! for a composer, for scheduled mutation times, and whether a served
//! plan is still alive. [`ChaosWorld`] is the pipeline's answer — it
//! owns a [`Network`] and a soft-state [`ServiceRegistry`] behind a
//! [`DiscoveryDriver`], and replays
//!
//! * network faults ([`FailureEvent`] — node crashes with correlated
//!   link failures, flaps, bandwidth squeezes),
//! * discovery churn ([`ChaosAction`] — lease-expiry storms), and
//! * bare settle points ([`WorldOp::Settle`] — a discovery tick with no
//!   fault, so lease expiry itself can break a chain mid-session)
//!
//! as the engine's world events. Every application first ticks the
//! discovery driver to the event's virtual time (renewing survivors,
//! expiring the dead — the exact order
//! [`ChaosPlan::drive_discovery`](crate::ChaosPlan::drive_discovery)
//! uses), then applies the operation. A plan is alive while every
//! service it references is still advertised and the network still
//! carries it ([`plan_affected`](crate::resilience::plan_affected)).

use crate::chaos::{ChaosAction, ChaosPlan};
use crate::failure::{FailureEvent, FailureSchedule};
use crate::resilience::plan_affected;
use qosc_core::{AdaptationPlan, Composer, SessionWorld};
use qosc_media::FormatRegistry;
use qosc_netsim::{Network, SimTime};
use qosc_services::{
    DiscoveryConfig, DiscoveryDriver, MemberId, ServiceRegistry, TranscoderDescriptor,
};

/// One scheduled world mutation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorldOp {
    /// Apply a network fault.
    Fault(FailureEvent),
    /// Apply a discovery-plane action (member crash/revive).
    Action(ChaosAction),
    /// Tick the discovery driver only: renew survivors, expire stale
    /// leases. Scheduling one just past `crash time + TTL` makes lease
    /// expiry itself a mid-session chain killer.
    Settle,
}

/// A mutable world under a chaos schedule, implementing
/// [`SessionWorld`] for [`run_sessions`](qosc_core::run_sessions).
///
/// Construction order matters for determinism the same way it does for
/// the chaos generator: join members first, then schedule events. At
/// equal virtual times events apply in scheduling order (the engine
/// preserves insertion order), which is how a node crash keeps its
/// correlated link faults adjacent.
#[derive(Debug)]
pub struct ChaosWorld<'a> {
    formats: &'a FormatRegistry,
    services: ServiceRegistry,
    network: Network,
    driver: DiscoveryDriver,
    members: Vec<MemberId>,
    events: Vec<(u64, WorldOp)>,
    times: Vec<u64>,
}

impl<'a> ChaosWorld<'a> {
    /// A world over `network` with an empty service fleet.
    pub fn new(
        formats: &'a FormatRegistry,
        network: Network,
        discovery: DiscoveryConfig,
    ) -> ChaosWorld<'a> {
        ChaosWorld {
            formats,
            services: ServiceRegistry::new(),
            network,
            driver: DiscoveryDriver::new(discovery),
            members: Vec::new(),
            events: Vec::new(),
            times: Vec::new(),
        }
    }

    /// Join a service instance at virtual time 0. Returns its member
    /// id; the member's *index* (join order) is what
    /// [`ChaosAction`] addresses.
    pub fn join(&mut self, descriptor: TranscoderDescriptor) -> MemberId {
        let member = self
            .driver
            .join(&mut self.services, descriptor, SimTime::ZERO);
        self.members.push(member);
        member
    }

    /// Members in join order.
    pub fn members(&self) -> &[MemberId] {
        &self.members
    }

    /// Schedule one operation at `at_us`.
    pub fn schedule(&mut self, at_us: u64, op: WorldOp) {
        self.events.push((at_us, op));
        self.times.push(at_us);
    }

    /// Schedule a network fault.
    pub fn schedule_fault(&mut self, at_us: u64, event: FailureEvent) {
        self.schedule(at_us, WorldOp::Fault(event));
    }

    /// Schedule a discovery action.
    pub fn schedule_action(&mut self, at_us: u64, action: ChaosAction) {
        self.schedule(at_us, WorldOp::Action(action));
    }

    /// Schedule a bare discovery tick (lease-expiry checkpoint).
    pub fn schedule_settle(&mut self, at_us: u64) {
        self.schedule(at_us, WorldOp::Settle);
    }

    /// Load a compiled [`ChaosPlan`]: its network faults and discovery
    /// actions merge into one time-ordered schedule (stable — faults
    /// keep their node-then-links adjacency, and at equal instants
    /// faults apply before discovery actions, matching
    /// [`run_resilient`](crate::run_resilient)'s order of network fault
    /// first, discovery churn second).
    pub fn load_plan(&mut self, plan: &ChaosPlan) {
        let mut merged: Vec<(u64, WorldOp)> = plan
            .schedule()
            .events()
            .iter()
            .map(|&(t, e)| (t.as_micros(), WorldOp::Fault(e)))
            .chain(
                plan.actions()
                    .iter()
                    .map(|&(t, a)| (t.as_micros(), WorldOp::Action(a))),
            )
            .collect();
        merged.sort_by_key(|&(t, _)| t);
        for (t, op) in merged {
            self.schedule(t, op);
        }
    }

    /// The current network state.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The current registry state.
    pub fn services(&self) -> &ServiceRegistry {
        &self.services
    }
}

impl SessionWorld for ChaosWorld<'_> {
    fn composer(&self) -> Composer<'_> {
        Composer {
            formats: self.formats,
            services: &self.services,
            network: &self.network,
        }
    }

    fn plan_alive(&self, plan: &AdaptationPlan) -> bool {
        for step in &plan.steps {
            if let Some(id) = step.service {
                if !self.services.is_available(id) {
                    return false;
                }
            }
        }
        !plan_affected(&self.network, plan)
    }

    fn world_event_times(&self) -> &[u64] {
        &self.times
    }

    fn apply_world_event(&mut self, index: usize) {
        let (t, op) = self.events[index];
        // Discovery time advances to every event, fault or not — the
        // same tick-then-act order as ChaosPlan::drive_discovery.
        self.driver.tick(&mut self.services, SimTime(t));
        match op {
            WorldOp::Fault(event) => FailureSchedule::apply(event, &mut self.network),
            WorldOp::Action(ChaosAction::CrashMember(i)) => {
                if let Some(&member) = self.members.get(i) {
                    self.driver.crash(member);
                }
            }
            WorldOp::Action(ChaosAction::ReviveMember(i)) => {
                if let Some(&member) = self.members.get(i) {
                    let _ = self.driver.revive(&mut self.services, member, SimTime(t));
                }
            }
            WorldOp::Settle => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosModel;
    use qosc_core::{
        run_sessions, ArrivalMeta, CompositionRequest, PriorityClass, SelectOptions,
        SessionEngineConfig, SessionRequest,
    };
    use qosc_netsim::{LinkId, Node, NodeId, Topology};
    use qosc_profiles::{
        ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, ProfileSet, UserProfile,
    };
    use qosc_services::catalog;

    struct Fixture {
        formats: FormatRegistry,
    }

    struct Hosts {
        server: NodeId,
        proxy: NodeId,
        client: NodeId,
        last_hop: LinkId,
    }

    fn fixture() -> Fixture {
        Fixture {
            formats: FormatRegistry::with_builtins(),
        }
    }

    /// server —100M— proxy —1M— client, with the full transcoder
    /// catalog joined on the proxy through the discovery driver.
    fn world(f: &Fixture) -> (ChaosWorld<'_>, Hosts) {
        let mut topo = Topology::new();
        let server = topo.add_node(Node::unconstrained("server"));
        let proxy = topo.add_node(Node::unconstrained("proxy"));
        let client = topo.add_node(Node::unconstrained("client"));
        topo.connect_simple(server, proxy, 100e6).unwrap();
        let last_hop = topo.connect_simple(proxy, client, 1e6).unwrap();
        let mut world = ChaosWorld::new(&f.formats, Network::new(topo), DiscoveryConfig::default());
        for spec in catalog::full_catalog() {
            world.join(TranscoderDescriptor::resolve(&spec, &f.formats, proxy).unwrap());
        }
        (
            world,
            Hosts {
                server,
                proxy,
                client,
                last_hop,
            },
        )
    }

    fn profiles() -> ProfileSet {
        ProfileSet {
            user: UserProfile::demo("user-0"),
            content: ContentProfile::demo_video("clip"),
            device: DeviceProfile::demo_pda(),
            context: ContextProfile::default(),
            network: NetworkProfile::broadband(),
        }
    }

    fn session(h: &Hosts, arrival_us: u64, hold_us: u64) -> SessionRequest {
        SessionRequest {
            request: CompositionRequest {
                profiles: profiles(),
                sender_host: h.server,
                receiver_host: h.client,
            },
            arrival: ArrivalMeta {
                arrival_us,
                priority: PriorityClass::Standard,
                service_cost_us: 1_000,
                deadline_budget_us: None,
            },
            hold_us,
        }
    }

    #[test]
    fn lease_expiry_after_crash_kills_plan_liveness() {
        let f = fixture();
        let (mut w, h) = world(&f);
        let composition = w
            .composer()
            .compose(&profiles(), h.server, h.client, &SelectOptions::default())
            .unwrap();
        let plan = composition.plan.expect("demo scenario composes a chain");
        assert!(
            plan.steps.iter().any(|s| s.service.is_some()),
            "the PDA chain rides a transcoder"
        );
        assert!(w.plan_alive(&plan));

        let crash_us = 1_000_000;
        let member_count = w.members().len();
        for i in 0..member_count {
            w.schedule_action(crash_us, ChaosAction::CrashMember(i));
        }
        let ttl = DiscoveryConfig::default().ttl.as_micros();
        w.schedule_settle(crash_us + ttl + 1);

        // Crashes alone stop renewal; the leases are still live.
        for i in 0..member_count {
            w.apply_world_event(i);
        }
        assert!(w.plan_alive(&plan), "leases outlive the crash until TTL");
        // The settle tick past the TTL expires them.
        w.apply_world_event(member_count);
        assert!(!w.plan_alive(&plan));
        assert_eq!(w.services().live_count(), 0);
    }

    #[test]
    fn network_fault_kills_plan_liveness_without_touching_leases() {
        let f = fixture();
        let (mut w, h) = world(&f);
        let plan = w
            .composer()
            .compose(&profiles(), h.server, h.client, &SelectOptions::default())
            .unwrap()
            .plan
            .unwrap();
        assert!(w.plan_alive(&plan));
        w.schedule_fault(500_000, FailureEvent::NodeDown(h.proxy));
        w.apply_world_event(0);
        assert!(!w.plan_alive(&plan), "the proxy hosts every stage");
        assert_ne!(w.services().live_count(), 0, "leases are untouched");
    }

    #[test]
    fn load_plan_yields_a_time_sorted_schedule() {
        let f = fixture();
        let mut topo = Topology::new();
        let a = topo.add_node(Node::unconstrained("a"));
        let b = topo.add_node(Node::unconstrained("b"));
        topo.connect_simple(a, b, 1e6).unwrap();
        let chaos = ChaosPlan::generate(&topo, 4, &ChaosModel::default(), 7, 1.0);
        let (mut w, _) = world(&f);
        w.load_plan(&chaos);
        let times = w.world_event_times();
        assert_eq!(
            times.len(),
            chaos.schedule().events().len() + chaos.actions().len()
        );
        assert!(times.windows(2).all(|t| t[0] <= t[1]));
    }

    #[test]
    fn squeeze_mid_session_forces_recomposition() {
        let f = fixture();
        let (mut w, h) = world(&f);
        // Choke the last hop to 95% background load at 1s, release at
        // 2s; sessions hold for 3s and must re-compose through it.
        w.schedule_fault(
            1_000_000,
            FailureEvent::Squeeze {
                link: h.last_hop,
                permille: 950,
            },
        );
        w.schedule_fault(2_000_000, FailureEvent::Unsqueeze(h.last_hop));
        let reqs: Vec<SessionRequest> = (0..2).map(|_| session(&h, 0, 3_000_000)).collect();
        let config = SessionEngineConfig {
            admission: None,
            tick_us: 250_000,
            ..SessionEngineConfig::default()
        };
        let report = run_sessions(&mut w, &reqs, &config, &qosc_telemetry::NoopSink);
        assert!(report.counters.partitions_exactly());
        assert!(
            report.recompositions() >= 1,
            "the squeeze must break at least one live plan"
        );
        for outcome in &report.outcomes {
            // Every re-composition adopts a plan (or closes), so the
            // rung history has one entry per adoption.
            assert_eq!(
                outcome.rung_history.len() as u32,
                1 + outcome.recompositions,
            );
        }
    }
}
