//! The chaos-driven [`SessionWorld`] for the steady-state session
//! engine.
//!
//! `qosc-core`'s session engine is world-agnostic: it asks its world
//! for a composer, for scheduled mutation times, and whether a served
//! plan is still alive. [`ChaosWorld`] is the pipeline's answer — it
//! owns a [`Network`] and a soft-state [`ServiceRegistry`] behind a
//! [`DiscoveryDriver`], and replays
//!
//! * network faults ([`FailureEvent`] — node crashes with correlated
//!   link failures, flaps, bandwidth squeezes),
//! * discovery churn ([`ChaosAction`] — lease-expiry storms), and
//! * bare settle points ([`WorldOp::Settle`] — a discovery tick with no
//!   fault, so lease expiry itself can break a chain mid-session)
//!
//! as the engine's world events. Every application first ticks the
//! discovery driver to the event's virtual time (renewing survivors,
//! expiring the dead — the exact order
//! [`ChaosPlan::drive_discovery`](crate::ChaosPlan::drive_discovery)
//! uses), then applies the operation. A plan is alive while every
//! service it references is still advertised and the network still
//! carries it ([`plan_affected`](crate::resilience::plan_affected)).

use crate::chaos::{ChaosAction, ChaosPlan};
use crate::failure::{FailureEvent, FailureSchedule};
use crate::resilience::plan_affected;
use parking_lot::Mutex;
use qosc_broker::{BandwidthBroker, FlowSpec, SharingPolicy};
use qosc_core::{AdaptationPlan, Composer, SessionWorld};
use qosc_media::FormatRegistry;
use qosc_netsim::{LinkId, NetError, Network, NodeId, SimTime};
use qosc_profiles::ServiceSpec;
use qosc_services::{
    DiscoveryConfig, DiscoveryDriver, MemberId, QosObservation, ServiceError, ServiceId,
    ServiceRegistry, ShardedServiceRegistry, TranscoderDescriptor, QOS_PPM,
};
use std::collections::HashMap;

/// Typed construction failure for chaos-world topologies and fleets —
/// what a scorecard bin reports instead of an `unwrap` panic when a
/// link declaration or a service spec is invalid.
#[derive(Debug)]
pub enum WorldBuildError {
    /// Topology or routing construction failed (bad link parameters,
    /// unknown nodes, no route).
    Net(NetError),
    /// A service spec did not resolve against the format registry.
    Service(ServiceError),
}

impl std::fmt::Display for WorldBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldBuildError::Net(e) => write!(f, "world topology construction failed: {e}"),
            WorldBuildError::Service(e) => write!(f, "service fleet construction failed: {e}"),
        }
    }
}

impl std::error::Error for WorldBuildError {}

impl From<NetError> for WorldBuildError {
    fn from(e: NetError) -> WorldBuildError {
        WorldBuildError::Net(e)
    }
}

impl From<ServiceError> for WorldBuildError {
    fn from(e: ServiceError) -> WorldBuildError {
        WorldBuildError::Service(e)
    }
}

/// One scheduled world mutation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorldOp {
    /// Apply a network fault.
    Fault(FailureEvent),
    /// Apply a discovery-plane action (member crash/revive).
    Action(ChaosAction),
    /// Tick the discovery driver only: renew survivors, expire stale
    /// leases. Scheduling one just past `crash time + TTL` makes lease
    /// expiry itself a mid-session chain killer.
    Settle,
}

/// A mutable world under a chaos schedule, implementing
/// [`SessionWorld`] for [`run_sessions`](qosc_core::run_sessions).
///
/// Construction order matters for determinism the same way it does for
/// the chaos generator: join members first, then schedule events. At
/// equal virtual times events apply in scheduling order (the engine
/// preserves insertion order), which is how a node crash keeps its
/// correlated link faults adjacent.
/// Per-member grey-fault state: 1000 permille means "as advertised".
/// Grey faults degrade *behaviour* while leaving every liveness signal
/// intact, so this state is invisible to `plan_alive`/`plan_routable`
/// by design — only `delivery_ppm`, `observed_latency_us`, and
/// `observe_service` see it.
#[derive(Debug, Clone, Copy)]
struct GreyState {
    /// Latency multiplier, permille of advertised (≥ 1000).
    lag_factor_permille: u16,
    /// Delivered throughput, permille of advertised (≤ 1000).
    sag_throughput_permille: u16,
}

impl Default for GreyState {
    fn default() -> GreyState {
        GreyState {
            lag_factor_permille: 1_000,
            sag_throughput_permille: 1_000,
        }
    }
}

/// How a flow's peak crossing rate maps to its registered demand window:
/// `max_bps = required × REFILL_HEADROOM` lets an uncontended session be
/// granted surplus above real time so its playout buffer can refill
/// (capped downstream by the ABR `max_fill_ppm`), and
/// `min_bps = required / MIN_SHARE_DIV` is the guaranteed floor.
const REFILL_HEADROOM: u64 = 2;
const MIN_SHARE_DIV: u64 = 4;

/// Hit/miss/refresh counters of the per-session delivery memo —
/// scorecards use `hits > 0` as proof the cache is actually exercised.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryCacheStats {
    /// Full memo hits (plan shape and grant both unchanged).
    pub hits: u64,
    /// Grant-only refreshes: the broker reallocated, the memoized plan
    /// shape (routes, required rate, sag cap) was reused and only the
    /// cheap grant division re-ran.
    pub refreshes: u64,
    /// Full recomputes (new plan generation, world event, or demand
    /// change).
    pub misses: u64,
}

/// One session's memoized delivery state. The key splits in two: the
/// *shape* part (`plan_gen`, `mutation`, `net_version`, `demand_bps`)
/// guards the expensive route walk, while `epoch` guards only the cheap
/// grant-dependent division — a broker reallocation invalidates the ppm
/// without re-walking routes.
#[derive(Debug, Clone, Copy)]
struct DeliveryCacheEntry {
    plan_gen: u32,
    mutation: u64,
    net_version: u64,
    demand_bps: u64,
    epoch: u64,
    ppm: u64,
    routable: bool,
    required_bps: u64,
    sag_cap_ppm: u64,
}

#[derive(Debug, Default)]
struct DeliveryCache {
    entries: HashMap<u64, DeliveryCacheEntry>,
    stats: DeliveryCacheStats,
}

/// Shard count of the world's registry. Session worlds are bounded
/// fleets (tens of members), so a small fixed fan-out keeps per-shard
/// epochs meaningful without per-world tuning.
const WORLD_SHARDS: u32 = 8;

#[derive(Debug)]
pub struct ChaosWorld<'a> {
    formats: &'a FormatRegistry,
    /// World churn routes through the sharded wrapper so per-shard
    /// epochs stay truthful; composition reads `services.flat()`.
    services: ShardedServiceRegistry,
    network: Network,
    driver: DiscoveryDriver,
    members: Vec<MemberId>,
    /// Parallel to `members`: the grey-fault state of each instance.
    grey: Vec<GreyState>,
    /// Advertised per-stage processing latency, virtual µs — the base
    /// a lag window multiplies.
    nominal_latency_us: u64,
    events: Vec<(u64, WorldOp)>,
    times: Vec<u64>,
    /// Cross-session bandwidth broker. `None` (the default) leaves
    /// every delivery answer on the per-plan worst-hop path —
    /// bit-identical to the pre-broker engine.
    broker: Option<BandwidthBroker>,
    /// Bumps on every applied world event (and on sharing-mode
    /// changes); part of the delivery memo key.
    world_mutations: u64,
    /// Per-session delivery memo, exercised only when a broker is
    /// attached. Interior mutability because `session_delivery_ppm`
    /// takes `&self` from many engine workers (`parking_lot::Mutex`
    /// keeps `ChaosWorld: Sync`).
    delivery_cache: Mutex<DeliveryCache>,
}

impl<'a> ChaosWorld<'a> {
    /// A world over `network` with an empty service fleet.
    pub fn new(
        formats: &'a FormatRegistry,
        network: Network,
        discovery: DiscoveryConfig,
    ) -> ChaosWorld<'a> {
        ChaosWorld {
            formats,
            services: ShardedServiceRegistry::new(WORLD_SHARDS),
            network,
            driver: DiscoveryDriver::new(discovery),
            members: Vec::new(),
            grey: Vec::new(),
            nominal_latency_us: 20_000,
            events: Vec::new(),
            times: Vec::new(),
            broker: None,
            world_mutations: 0,
            delivery_cache: Mutex::new(DeliveryCache::default()),
        }
    }

    /// Attach (or detach) the cross-session bandwidth broker. With
    /// `Some(policy)` the session engine's flows are arbitrated by that
    /// policy and delivery answers come from per-session grants; with
    /// `None` the world behaves exactly as it did before brokering
    /// existed. Call before the run starts.
    pub fn set_sharing(&mut self, policy: Option<SharingPolicy>) {
        self.broker = policy.map(BandwidthBroker::new);
        self.world_mutations += 1;
        self.delivery_cache.lock().entries.clear();
        if self.broker.is_some() {
            self.refresh_broker_capacities();
        }
    }

    /// The attached broker, if any.
    pub fn broker(&self) -> Option<&BandwidthBroker> {
        self.broker.as_ref()
    }

    /// Counters of the per-session delivery memo.
    pub fn delivery_cache_stats(&self) -> DeliveryCacheStats {
        self.delivery_cache.lock().stats
    }

    /// Re-read every directed link's current headroom (capacity minus
    /// background utilization minus frame-replay reservations) into the
    /// broker and rebalance. Runs at attach time and after every world
    /// event — a Squeeze lands here as shrunken effective capacity.
    fn refresh_broker_capacities(&mut self) {
        let caps: Vec<(LinkId, bool, u64)> = self
            .network
            .topology()
            .link_ids()
            .flat_map(|link| [true, false].into_iter().map(move |dir| (link, dir)))
            .map(|(link, dir)| {
                let headroom = self.network.link_headroom(link, dir).unwrap_or(0.0);
                (link, dir, headroom.max(0.0).floor() as u64)
            })
            .collect();
        let Some(broker) = self.broker.as_mut() else {
            return;
        };
        for (link, dir, cap) in caps {
            broker.set_capacity(link, dir, cap);
        }
        broker.rebalance();
    }

    /// The directed links a plan crosses and its peak crossing rate in
    /// bps (final hop floored by the session's own demand). A flow is
    /// registered at its peak rate on every hop — conservative for the
    /// lower-rate crossings, but one rate per flow keeps the
    /// water-filling kernel exact and integer.
    fn flow_shape(&self, plan: &AdaptationPlan, demand_bps: u64) -> (Vec<(LinkId, bool)>, u64) {
        let hop_count = plan.steps.len().saturating_sub(1);
        let mut hops = Vec::new();
        let mut required = 0f64;
        for (k, pair) in plan.steps.windows(2).enumerate() {
            if pair[0].host == pair[1].host {
                continue;
            }
            let Ok(route) = self.network.route_between(pair[0].host, pair[1].host) else {
                continue;
            };
            hops.extend(route.directed_hops(self.network.topology()));
            let mut rate = pair[1].input_bps;
            if k + 1 == hop_count {
                rate = rate.max(demand_bps as f64);
            }
            required = required.max(rate);
        }
        (hops, required.max(1.0).round() as u64)
    }

    /// Worst grey throughput sag across the plan's services, as a ppm
    /// delivery cap (`u64::MAX` when every member is healthy).
    fn plan_sag_cap(&self, plan: &AdaptationPlan) -> u64 {
        let mut cap = u64::MAX;
        for step in &plan.steps {
            if let Some(id) = step.service {
                if let Some(index) = self.grey_index(id) {
                    let sag = u64::from(self.grey[index].sag_throughput_permille);
                    if sag < 1_000 {
                        cap = cap.min(sag * 1_000);
                    }
                }
            }
        }
        cap
    }

    /// Join a service instance at virtual time 0. Returns its member
    /// id; the member's *index* (join order) is what
    /// [`ChaosAction`] addresses.
    pub fn join(&mut self, descriptor: TranscoderDescriptor) -> MemberId {
        let member = self
            .driver
            .join(&mut self.services, descriptor, SimTime::ZERO);
        self.members.push(member);
        self.grey.push(GreyState::default());
        member
    }

    /// Resolve `spec` against the world's format registry and join the
    /// resulting instance on `host`, surfacing resolution failures as
    /// a typed [`WorldBuildError`] instead of panicking — the
    /// construction path scorecard bins should use.
    pub fn try_join_spec(
        &mut self,
        spec: &ServiceSpec,
        host: NodeId,
    ) -> Result<MemberId, WorldBuildError> {
        let descriptor = TranscoderDescriptor::resolve(spec, self.formats, host)?;
        Ok(self.join(descriptor))
    }

    /// Members in join order.
    pub fn members(&self) -> &[MemberId] {
        &self.members
    }

    /// Schedule one operation at `at_us`.
    pub fn schedule(&mut self, at_us: u64, op: WorldOp) {
        self.events.push((at_us, op));
        self.times.push(at_us);
    }

    /// Schedule a network fault.
    pub fn schedule_fault(&mut self, at_us: u64, event: FailureEvent) {
        self.schedule(at_us, WorldOp::Fault(event));
    }

    /// Schedule a discovery action.
    pub fn schedule_action(&mut self, at_us: u64, action: ChaosAction) {
        self.schedule(at_us, WorldOp::Action(action));
    }

    /// Schedule a bare discovery tick (lease-expiry checkpoint).
    pub fn schedule_settle(&mut self, at_us: u64) {
        self.schedule(at_us, WorldOp::Settle);
    }

    /// Load a compiled [`ChaosPlan`]: its network faults and discovery
    /// actions merge into one time-ordered schedule (stable — faults
    /// keep their node-then-links adjacency, and at equal instants
    /// faults apply before discovery actions, matching
    /// [`run_resilient`](crate::run_resilient)'s order of network fault
    /// first, discovery churn second).
    pub fn load_plan(&mut self, plan: &ChaosPlan) {
        let mut merged: Vec<(u64, WorldOp)> = plan
            .schedule()
            .events()
            .iter()
            .map(|&(t, e)| (t.as_micros(), WorldOp::Fault(e)))
            .chain(
                plan.actions()
                    .iter()
                    .map(|&(t, a)| (t.as_micros(), WorldOp::Action(a))),
            )
            .collect();
        merged.sort_by_key(|&(t, _)| t);
        for (t, op) in merged {
            self.schedule(t, op);
        }
    }

    /// The current network state.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The current registry state (the flat ground truth).
    pub fn services(&self) -> &ServiceRegistry {
        self.services.flat()
    }

    /// The sharded registry wrapper the world's churn routes through —
    /// exposes per-shard epochs and summary frontiers.
    pub fn sharded_services(&self) -> &ShardedServiceRegistry {
        &self.services
    }

    /// Mutable registry access — lets experiments tune quarantine and
    /// probation policy before a run.
    pub fn services_mut(&mut self) -> &mut ShardedServiceRegistry {
        &mut self.services
    }

    /// Replace the advertised per-stage processing latency that
    /// [`observed_latency_us`](SessionWorld::observed_latency_us)
    /// multiplies under lag windows (defaults to 20 ms).
    pub fn set_nominal_latency_us(&mut self, nominal_us: u64) {
        self.nominal_latency_us = nominal_us;
    }

    /// The member index holding service id `id` *right now*. Ids are
    /// per-incarnation: after a crash/revive cycle the old id resolves
    /// to nothing, which keeps observations from leaking across
    /// incarnations.
    fn grey_index(&self, id: ServiceId) -> Option<usize> {
        let member = self.driver.member_of(id)?;
        self.members.iter().position(|&m| m == member)
    }
}

impl SessionWorld for ChaosWorld<'_> {
    fn composer(&self) -> Composer<'_> {
        Composer {
            formats: self.formats,
            services: self.services.flat(),
            network: &self.network,
        }
    }

    fn plan_alive(&self, plan: &AdaptationPlan) -> bool {
        for step in &plan.steps {
            if let Some(id) = step.service {
                if !self.services.flat().is_available(id) {
                    return false;
                }
            }
        }
        !plan_affected(&self.network, plan)
    }

    /// Hard liveness only: hosts up, services advertised, routes
    /// intact. A bandwidth squeeze does *not* fail this — buffer-aware
    /// sessions observe it through [`delivery_ppm`](Self::delivery_ppm)
    /// as a draining buffer instead.
    fn plan_routable(&self, plan: &AdaptationPlan) -> bool {
        for step in &plan.steps {
            if let Some(id) = step.service {
                if !self.services.flat().is_available(id) {
                    return false;
                }
            }
            if self.network.node_failed(step.host) {
                return false;
            }
        }
        for pair in plan.steps.windows(2) {
            if pair[0].host == pair[1].host {
                continue;
            }
            if self
                .network
                .route_between(pair[0].host, pair[1].host)
                .is_err()
            {
                return false;
            }
        }
        true
    }

    /// Achieved delivery rate: the worst hop's `available / required`
    /// ratio in parts-per-million. `required` is each hop's planned
    /// crossing rate; the final hop is floored by the session's own
    /// bitrate demand so an under-provisioned plan cannot hide behind
    /// a tiny last edge. An unroutable hop delivers nothing, and an
    /// unroutable *plan* delivers nothing even when every hop is
    /// same-host (the dead-host edge case that used to report
    /// `u64::MAX`): `delivery_ppm == 0 ⇔ !plan_routable` for hard
    /// faults, so the ABR fill model can never divide by a
    /// routable-but-zero plan. The one legitimate asymmetry left is a
    /// full bandwidth squeeze — delivery 0 while routable — which is a
    /// soft fault by definition.
    ///
    /// Grey throughput sags scale the result too: a step served by a
    /// sagging member caps the whole plan at its delivered fraction,
    /// whatever the network says — a sick transcoder on a fat link is
    /// still sick.
    fn delivery_ppm(&self, plan: &AdaptationPlan, demand_bps: u64) -> u64 {
        if !self.plan_routable(plan) {
            return 0;
        }
        let hops = plan.steps.len().saturating_sub(1);
        let mut worst = u64::MAX;
        for (k, pair) in plan.steps.windows(2).enumerate() {
            if pair[0].host == pair[1].host {
                continue;
            }
            let mut required = pair[1].input_bps;
            if k + 1 == hops {
                required = required.max(demand_bps as f64);
            }
            if required <= 0.0 {
                continue;
            }
            match self.network.available_between(pair[0].host, pair[1].host) {
                Ok(available) => {
                    let ratio = (available / required) * 1e6;
                    let ppm = if ratio.is_finite() && ratio > 0.0 {
                        ratio.min(u64::MAX as f64) as u64
                    } else {
                        0
                    };
                    worst = worst.min(ppm);
                }
                Err(_) => return 0,
            }
        }
        for step in &plan.steps {
            if let Some(id) = step.service {
                if let Some(index) = self.grey_index(id) {
                    let sag = u64::from(self.grey[index].sag_throughput_permille);
                    if sag < 1_000 {
                        worst = worst.min(sag * 1_000);
                    }
                }
            }
        }
        worst
    }

    /// Observed end-to-end processing latency of the plan's service
    /// stages: advertised nominal latency per stage, multiplied by any
    /// active lag window. Grey lag shows up here (and in
    /// [`observe_service`](SessionWorld::observe_service)) while every
    /// liveness answer stays green.
    fn observed_latency_us(&self, plan: &AdaptationPlan) -> u64 {
        let mut total = 0u64;
        for step in &plan.steps {
            if let Some(id) = step.service {
                let factor = self
                    .grey_index(id)
                    .map(|i| u64::from(self.grey[i].lag_factor_permille))
                    .unwrap_or(1_000);
                total = total.saturating_add(self.nominal_latency_us * factor / 1_000);
            }
        }
        total
    }

    /// One normalized QoS sample for a live service: its delivered
    /// throughput and latency as ratios of advertised. Healthy members
    /// report exactly [`QosObservation::nominal`]; ids from dead
    /// incarnations report nothing.
    fn observe_service(&self, service: ServiceId) -> Option<QosObservation> {
        let index = self.grey_index(service)?;
        let state = self.grey[index];
        Some(QosObservation {
            throughput_ppm: u64::from(state.sag_throughput_permille) * 1_000,
            latency_factor_ppm: (u64::from(state.lag_factor_permille) * 1_000).max(QOS_PPM),
        })
    }

    fn probate_service(&mut self, service: ServiceId, observed_ppm: u64, now_us: u64) -> bool {
        self.services
            .probate(service, observed_ppm, SimTime(now_us))
    }

    fn probe_service(&mut self, service: ServiceId, now_us: u64) -> bool {
        self.services.probe_success(service, SimTime(now_us))
    }

    fn report_service_failure(&mut self, service: ServiceId, now_us: u64) {
        // Dead or already-quarantined ids are documented no-ops — many
        // sessions can report the same member in one instant.
        let _ = self.services.report_failure(service, SimTime(now_us));
    }

    fn world_event_times(&self) -> &[u64] {
        &self.times
    }

    fn apply_world_event(&mut self, index: usize) {
        self.world_mutations += 1;
        let (t, op) = self.events[index];
        // Discovery time advances to every event, fault or not — the
        // same tick-then-act order as ChaosPlan::drive_discovery. A
        // quarantine whose cooldown has passed releases on the same
        // cadence; without failure reports this is a silent no-op, so
        // detection-off runs are bit-identical to the pre-SLA engine.
        self.driver.tick(&mut self.services, SimTime(t));
        self.services.release_quarantines(SimTime(t));
        match op {
            WorldOp::Fault(event) => FailureSchedule::apply(event, &mut self.network),
            WorldOp::Action(ChaosAction::CrashMember(i)) => {
                if let Some(&member) = self.members.get(i) {
                    self.driver.crash(member);
                }
            }
            WorldOp::Action(ChaosAction::ReviveMember(i)) => {
                if let Some(&member) = self.members.get(i) {
                    let _ = self.driver.revive(&mut self.services, member, SimTime(t));
                }
            }
            WorldOp::Action(ChaosAction::LagMember {
                index,
                factor_permille,
            }) => {
                if let Some(state) = self.grey.get_mut(index) {
                    state.lag_factor_permille = factor_permille.max(1_000);
                }
            }
            WorldOp::Action(ChaosAction::UnlagMember(i)) => {
                if let Some(state) = self.grey.get_mut(i) {
                    state.lag_factor_permille = 1_000;
                }
            }
            WorldOp::Action(ChaosAction::SagMember {
                index,
                throughput_permille,
            }) => {
                if let Some(state) = self.grey.get_mut(index) {
                    state.sag_throughput_permille = throughput_permille.min(1_000);
                }
            }
            WorldOp::Action(ChaosAction::UnsagMember(i)) => {
                if let Some(state) = self.grey.get_mut(i) {
                    state.sag_throughput_permille = 1_000;
                }
            }
            WorldOp::Settle => {}
        }
        // Whatever the event did to effective capacity (Squeeze,
        // Unsqueeze, node/link failures and restores), the broker sees
        // it on the same instant and reallocates before any session
        // reacts.
        if self.broker.is_some() {
            self.refresh_broker_capacities();
        }
    }

    fn register_session_flow(
        &mut self,
        session: u64,
        plan: &AdaptationPlan,
        demand_bps: u64,
        weight: u32,
    ) {
        if self.broker.is_none() {
            return;
        }
        let (hops, required) = self.flow_shape(plan, demand_bps);
        let max_bps = required.saturating_mul(REFILL_HEADROOM);
        let min_bps = required / MIN_SHARE_DIV;
        let broker = self.broker.as_mut().expect("checked above");
        broker.register(FlowSpec {
            session,
            min_bps,
            max_bps,
            weight,
            hops,
        });
    }

    fn deregister_session_flow(&mut self, session: u64) {
        if let Some(broker) = self.broker.as_mut() {
            broker.deregister(session);
        }
    }

    fn grant_epoch(&self) -> u64 {
        self.broker.as_ref().map_or(0, |b| b.epoch())
    }

    /// Brokered delivery: the session's granted rate over its plan's
    /// peak required rate, in ppm — in place of the shared-fate
    /// worst-hop division — memoized per session. Hard-unroutable plans
    /// still deliver 0 and grey sags still cap the result, so every
    /// invariant of [`delivery_ppm`](Self::delivery_ppm) carries over.
    fn session_delivery_ppm(
        &self,
        session: u64,
        plan_gen: u32,
        plan: &AdaptationPlan,
        demand_bps: u64,
    ) -> u64 {
        let Some(broker) = self.broker.as_ref() else {
            return self.delivery_ppm(plan, demand_bps);
        };
        if broker.flow(session).is_none() {
            // Not yet registered (e.g. a probe before adoption): answer
            // shared-fate rather than starving the session.
            return self.delivery_ppm(plan, demand_bps);
        }
        let epoch = broker.epoch();
        let net_version = self.network.version();
        {
            let mut cache = self.delivery_cache.lock();
            let DeliveryCache { entries, stats } = &mut *cache;
            if let Some(entry) = entries.get_mut(&session) {
                if entry.plan_gen == plan_gen
                    && entry.mutation == self.world_mutations
                    && entry.net_version == net_version
                    && entry.demand_bps == demand_bps
                {
                    if entry.epoch == epoch {
                        stats.hits += 1;
                        return entry.ppm;
                    }
                    // Broker reallocation: invalidate only the
                    // grant-dependent part.
                    let ppm = granted_ppm(
                        broker,
                        session,
                        entry.routable,
                        entry.required_bps,
                        entry.sag_cap_ppm,
                    );
                    entry.epoch = epoch;
                    entry.ppm = ppm;
                    stats.refreshes += 1;
                    return ppm;
                }
            }
        }
        // Full recompute outside the lock: routability and the route
        // walk dominate.
        let routable = self.plan_routable(plan);
        let (_, required_bps) = self.flow_shape(plan, demand_bps);
        let sag_cap_ppm = self.plan_sag_cap(plan);
        let ppm = granted_ppm(broker, session, routable, required_bps, sag_cap_ppm);
        let mut cache = self.delivery_cache.lock();
        cache.entries.insert(
            session,
            DeliveryCacheEntry {
                plan_gen,
                mutation: self.world_mutations,
                net_version,
                demand_bps,
                epoch,
                ppm,
                routable,
                required_bps,
                sag_cap_ppm,
            },
        );
        cache.stats.misses += 1;
        ppm
    }
}

/// The grant-dependent half of a brokered delivery answer: granted
/// rate over required rate in ppm, zeroed for unroutable plans, capped
/// by the worst grey sag.
fn granted_ppm(
    broker: &BandwidthBroker,
    session: u64,
    routable: bool,
    required_bps: u64,
    sag_cap_ppm: u64,
) -> u64 {
    if !routable {
        return 0;
    }
    let grant = broker.grant(session).unwrap_or(0);
    let ppm = grant.saturating_mul(1_000_000) / required_bps.max(1);
    ppm.min(sag_cap_ppm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosModel;
    use qosc_core::{
        run_sessions, ArrivalMeta, CompositionRequest, PriorityClass, SelectOptions,
        SessionEngineConfig, SessionRequest,
    };
    use qosc_netsim::{LinkId, Node, NodeId, Topology};
    use qosc_profiles::{
        ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, ProfileSet, UserProfile,
    };
    use qosc_services::catalog;

    struct Fixture {
        formats: FormatRegistry,
    }

    struct Hosts {
        server: NodeId,
        proxy: NodeId,
        client: NodeId,
        last_hop: LinkId,
    }

    fn fixture() -> Fixture {
        Fixture {
            formats: FormatRegistry::with_builtins(),
        }
    }

    /// server —100M— proxy —1M— client, with the full transcoder
    /// catalog joined on the proxy through the discovery driver.
    fn world(f: &Fixture) -> (ChaosWorld<'_>, Hosts) {
        let mut topo = Topology::new();
        let server = topo.add_node(Node::unconstrained("server"));
        let proxy = topo.add_node(Node::unconstrained("proxy"));
        let client = topo.add_node(Node::unconstrained("client"));
        topo.connect_simple(server, proxy, 100e6).unwrap();
        let last_hop = topo.connect_simple(proxy, client, 1e6).unwrap();
        let mut world = ChaosWorld::new(&f.formats, Network::new(topo), DiscoveryConfig::default());
        for spec in catalog::full_catalog() {
            world.join(TranscoderDescriptor::resolve(&spec, &f.formats, proxy).unwrap());
        }
        (
            world,
            Hosts {
                server,
                proxy,
                client,
                last_hop,
            },
        )
    }

    fn profiles() -> ProfileSet {
        ProfileSet {
            user: UserProfile::demo("user-0"),
            content: ContentProfile::demo_video("clip"),
            device: DeviceProfile::demo_pda(),
            context: ContextProfile::default(),
            network: NetworkProfile::broadband(),
        }
    }

    fn session(h: &Hosts, arrival_us: u64, hold_us: u64) -> SessionRequest {
        SessionRequest {
            request: CompositionRequest {
                profiles: profiles(),
                sender_host: h.server,
                receiver_host: h.client,
            },
            arrival: ArrivalMeta {
                arrival_us,
                priority: PriorityClass::Standard,
                service_cost_us: 1_000,
                deadline_budget_us: None,
            },
            hold_us,
            demand_bps: 0,
        }
    }

    #[test]
    fn lease_expiry_after_crash_kills_plan_liveness() {
        let f = fixture();
        let (mut w, h) = world(&f);
        let composition = w
            .composer()
            .compose(&profiles(), h.server, h.client, &SelectOptions::default())
            .unwrap();
        let plan = composition.plan.expect("demo scenario composes a chain");
        assert!(
            plan.steps.iter().any(|s| s.service.is_some()),
            "the PDA chain rides a transcoder"
        );
        assert!(w.plan_alive(&plan));

        let crash_us = 1_000_000;
        let member_count = w.members().len();
        for i in 0..member_count {
            w.schedule_action(crash_us, ChaosAction::CrashMember(i));
        }
        let ttl = DiscoveryConfig::default().ttl.as_micros();
        w.schedule_settle(crash_us + ttl + 1);

        // Crashes alone stop renewal; the leases are still live.
        for i in 0..member_count {
            w.apply_world_event(i);
        }
        assert!(w.plan_alive(&plan), "leases outlive the crash until TTL");
        // The settle tick past the TTL expires them.
        w.apply_world_event(member_count);
        assert!(!w.plan_alive(&plan));
        assert_eq!(w.services().live_count(), 0);
    }

    #[test]
    fn network_fault_kills_plan_liveness_without_touching_leases() {
        let f = fixture();
        let (mut w, h) = world(&f);
        let plan = w
            .composer()
            .compose(&profiles(), h.server, h.client, &SelectOptions::default())
            .unwrap()
            .plan
            .unwrap();
        assert!(w.plan_alive(&plan));
        w.schedule_fault(500_000, FailureEvent::NodeDown(h.proxy));
        w.apply_world_event(0);
        assert!(!w.plan_alive(&plan), "the proxy hosts every stage");
        assert_ne!(w.services().live_count(), 0, "leases are untouched");
    }

    #[test]
    fn load_plan_yields_a_time_sorted_schedule() {
        let f = fixture();
        let mut topo = Topology::new();
        let a = topo.add_node(Node::unconstrained("a"));
        let b = topo.add_node(Node::unconstrained("b"));
        topo.connect_simple(a, b, 1e6).unwrap();
        let chaos = ChaosPlan::generate(&topo, 4, &ChaosModel::default(), 7, 1.0);
        let (mut w, _) = world(&f);
        w.load_plan(&chaos);
        let times = w.world_event_times();
        assert_eq!(
            times.len(),
            chaos.schedule().events().len() + chaos.actions().len()
        );
        assert!(times.windows(2).all(|t| t[0] <= t[1]));
    }

    #[test]
    fn squeeze_degrades_delivery_without_failing_routability() {
        let f = fixture();
        let (mut w, h) = world(&f);
        let plan = w
            .composer()
            .compose(&profiles(), h.server, h.client, &SelectOptions::default())
            .unwrap()
            .plan
            .unwrap();
        assert!(w.plan_alive(&plan));
        assert!(w.plan_routable(&plan));
        let healthy = w.delivery_ppm(&plan, 0);
        assert!(
            healthy >= 1_000_000,
            "a freshly composed plan keeps up: {healthy} ppm"
        );
        // Choke the last hop to 95% background load: the plan dies
        // under the bandwidth check but stays routable, and delivery
        // drops below real time.
        w.schedule_fault(
            1_000_000,
            FailureEvent::Squeeze {
                link: h.last_hop,
                permille: 950,
            },
        );
        w.apply_world_event(0);
        assert!(!w.plan_alive(&plan), "squeeze breaks the soft liveness");
        assert!(w.plan_routable(&plan), "squeeze keeps hard liveness");
        let squeezed = w.delivery_ppm(&plan, 0);
        assert!(
            squeezed < healthy && squeezed < 1_000_000,
            "squeezed delivery falls behind playback: {squeezed} ppm"
        );
        // A demand floor above the squeezed edge lowers the ratio
        // further.
        assert!(w.delivery_ppm(&plan, 10_000_000) < squeezed.max(1));
    }

    #[test]
    fn hard_faults_fail_routability_too() {
        let f = fixture();
        let (mut w, h) = world(&f);
        let plan = w
            .composer()
            .compose(&profiles(), h.server, h.client, &SelectOptions::default())
            .unwrap()
            .plan
            .unwrap();
        w.schedule_fault(500_000, FailureEvent::NodeDown(h.proxy));
        w.apply_world_event(0);
        assert!(!w.plan_routable(&plan), "a dead host is a hard fault");
        assert_eq!(w.delivery_ppm(&plan, 0), 0, "nothing is delivered");
    }

    #[test]
    fn delivery_and_routability_agree_on_dead_hosts_even_same_host_plans() {
        let f = fixture();
        let (mut w, h) = world(&f);
        let mut plan = w
            .composer()
            .compose(&profiles(), h.server, h.client, &SelectOptions::default())
            .unwrap()
            .plan
            .unwrap();
        // Collapse every stage onto the proxy: no cross-host hop is
        // left, the shape that used to slip past the hop loop and
        // report u64::MAX delivery from a dead host.
        for step in &mut plan.steps {
            step.host = h.proxy;
        }
        assert!(w.plan_routable(&plan));
        assert!(w.delivery_ppm(&plan, 0) > 0);
        w.schedule_fault(500_000, FailureEvent::NodeDown(h.proxy));
        w.apply_world_event(0);
        assert!(!w.plan_routable(&plan));
        assert_eq!(
            w.delivery_ppm(&plan, 0),
            0,
            "delivery_ppm == 0 must hold whenever a hard fault kills routability"
        );
    }

    #[test]
    fn sag_degrades_delivery_while_every_liveness_signal_stays_green() {
        let f = fixture();
        let (mut w, h) = world(&f);
        let plan = w
            .composer()
            .compose(&profiles(), h.server, h.client, &SelectOptions::default())
            .unwrap()
            .plan
            .unwrap();
        let sick = plan.steps.iter().find_map(|s| s.service).unwrap();
        let index = w
            .members()
            .iter()
            .position(|&m| w.driver.member_of(sick) == Some(m))
            .unwrap();
        assert_eq!(
            w.observe_service(sick),
            Some(QosObservation::nominal()),
            "healthy members observe as advertised"
        );

        w.schedule_action(
            1_000_000,
            ChaosAction::SagMember {
                index,
                throughput_permille: 300,
            },
        );
        w.apply_world_event(0);
        // The whole point of a grey failure: liveness stays green…
        assert!(w.plan_alive(&plan), "sag is invisible to soft liveness");
        assert!(w.plan_routable(&plan), "and to hard liveness");
        // …while behaviour collapses.
        assert_eq!(w.delivery_ppm(&plan, 0), 300_000, "30% of advertised");
        let obs = w.observe_service(sick).unwrap();
        assert_eq!(obs.throughput_ppm, 300_000);
        assert_eq!(obs.latency_factor_ppm, 1_000_000);
        // Recovery restores full delivery.
        w.schedule_action(2_000_000, ChaosAction::UnsagMember(index));
        w.apply_world_event(1);
        assert!(w.delivery_ppm(&plan, 0) >= 1_000_000);
        assert_eq!(w.observe_service(sick), Some(QosObservation::nominal()));
    }

    #[test]
    fn lag_inflates_observed_latency_without_touching_delivery() {
        let f = fixture();
        let (mut w, h) = world(&f);
        let plan = w
            .composer()
            .compose(&profiles(), h.server, h.client, &SelectOptions::default())
            .unwrap()
            .plan
            .unwrap();
        let sick = plan.steps.iter().find_map(|s| s.service).unwrap();
        let index = w
            .members()
            .iter()
            .position(|&m| w.driver.member_of(sick) == Some(m))
            .unwrap();
        let stages = plan.steps.iter().filter(|s| s.service.is_some()).count() as u64;
        w.set_nominal_latency_us(10_000);
        assert_eq!(w.observed_latency_us(&plan), stages * 10_000);
        let healthy_delivery = w.delivery_ppm(&plan, 0);

        w.schedule_action(
            1_000_000,
            ChaosAction::LagMember {
                index,
                factor_permille: 3_000,
            },
        );
        w.apply_world_event(0);
        assert!(w.plan_alive(&plan) && w.plan_routable(&plan));
        assert_eq!(
            w.observed_latency_us(&plan),
            (stages - 1) * 10_000 + 30_000,
            "the lagged stage runs 3x slow"
        );
        assert_eq!(w.delivery_ppm(&plan, 0), healthy_delivery);
        let obs = w.observe_service(sick).unwrap();
        assert_eq!(obs.latency_factor_ppm, 3_000_000);
        assert_eq!(obs.throughput_ppm, 1_000_000);
    }

    #[test]
    fn world_probation_hooks_route_to_the_registry() {
        let f = fixture();
        let (mut w, h) = world(&f);
        let plan = w
            .composer()
            .compose(&profiles(), h.server, h.client, &SelectOptions::default())
            .unwrap()
            .plan
            .unwrap();
        let sick = plan.steps.iter().find_map(|s| s.service).unwrap();
        assert!(w.probate_service(sick, 300_000, 1_000_000));
        assert!(w.services().is_probated(sick));
        assert!(w.plan_alive(&plan), "probation never kills liveness");
        assert!(!w.services().selection_penalties().is_empty());
        // Half-open probes clear it after the configured count of
        // distinct instants.
        let needed = w.services().probation_config().probe_successes;
        for k in 0..needed as u64 {
            w.probe_service(sick, 2_000_000 + k);
        }
        assert!(!w.services().is_probated(sick));
    }

    #[test]
    fn try_join_spec_surfaces_resolution_errors() {
        let f = fixture();
        let (mut w, h) = world(&f);
        let joined_before = w.members().len();
        let mut bogus = catalog::full_catalog().remove(0);
        bogus.conversions[0].input = "no-such-format".to_string();
        let err = w.try_join_spec(&bogus, h.proxy).unwrap_err();
        assert!(
            matches!(err, WorldBuildError::Service(_)),
            "resolution failures are typed, got {err}"
        );
        assert!(!err.to_string().is_empty());
        assert_eq!(w.members().len(), joined_before, "nothing joined");
        // A valid spec joins through the same path.
        let spec = catalog::full_catalog().remove(0);
        let member = w.try_join_spec(&spec, h.proxy).unwrap();
        assert_eq!(w.members().len(), joined_before + 1);
        assert_eq!(w.members()[joined_before], member);
    }

    #[test]
    fn broker_splits_a_bottleneck_and_squeeze_shrinks_grants() {
        let f = fixture();
        let (mut w, h) = world(&f);
        w.set_sharing(Some(SharingPolicy::WeightedMaxMin));
        let plan = w
            .composer()
            .compose(&profiles(), h.server, h.client, &SelectOptions::default())
            .unwrap()
            .plan
            .unwrap();
        // Two equal-weight sessions pinned to the same plan shape share
        // the 1 Mbps last hop.
        w.register_session_flow(0, &plan, 0, 2);
        w.register_session_flow(1, &plan, 0, 2);
        let broker = w.broker().expect("sharing is on");
        let (g0, g1) = (broker.grant(0).unwrap(), broker.grant(1).unwrap());
        assert_eq!(g0, g1, "equal weights over one bottleneck split evenly");
        assert!(g0 + g1 <= 1_000_000, "grants fit the 1 Mbps edge");
        assert!(g0 > 0);
        let epoch_before = broker.epoch();

        // Squeeze the last hop to 95% background load: the same-instant
        // capacity refresh must shrink both grants and bump the epoch.
        w.schedule_fault(
            1_000_000,
            FailureEvent::Squeeze {
                link: h.last_hop,
                permille: 950,
            },
        );
        w.apply_world_event(0);
        let broker = w.broker().unwrap();
        assert!(broker.epoch() > epoch_before, "reallocation is visible");
        let squeezed = broker.grant(0).unwrap();
        assert!(squeezed < g0, "grants shrink under the squeeze");
        // The 5% residual is below the two sessions' guaranteed floors,
        // so each collapses to exactly its min (floors are never
        // preempted, even oversubscribed — admission's job to prevent).
        assert_eq!(squeezed, broker.flow(0).unwrap().min_bps);
        // Departure frees the share without touching the survivor's
        // floor (preemption-free reallocation).
        w.deregister_session_flow(1);
        let broker = w.broker().unwrap();
        assert!(broker.grant(1).is_none());
        assert!(broker.grant(0).unwrap() >= squeezed);
    }

    #[test]
    fn brokered_delivery_memo_hits_and_refreshes() {
        let f = fixture();
        let (mut w, h) = world(&f);
        w.set_sharing(Some(SharingPolicy::WeightedMaxMin));
        let plan = w
            .composer()
            .compose(&profiles(), h.server, h.client, &SelectOptions::default())
            .unwrap()
            .plan
            .unwrap();
        w.register_session_flow(0, &plan, 0, 2);
        let first = w.session_delivery_ppm(0, 0, &plan, 0);
        assert!(first > 0, "an uncontended brokered session delivers");
        let second = w.session_delivery_ppm(0, 0, &plan, 0);
        assert_eq!(first, second);
        let stats = w.delivery_cache_stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));

        // A reallocation (new flow on the shared edge) invalidates only
        // the grant-dependent half: the next answer is a refresh, not a
        // route re-walk, and reflects the halved grant.
        w.register_session_flow(1, &plan, 0, 2);
        let contended = w.session_delivery_ppm(0, 0, &plan, 0);
        assert!(contended < first, "contention halves the grant");
        let stats = w.delivery_cache_stats();
        assert_eq!(
            (stats.misses, stats.hits, stats.refreshes),
            (1, 1, 1),
            "epoch-only change takes the refresh path"
        );
    }

    #[test]
    fn without_sharing_the_broker_paths_stay_cold() {
        let f = fixture();
        let (mut w, h) = world(&f);
        let plan = w
            .composer()
            .compose(&profiles(), h.server, h.client, &SelectOptions::default())
            .unwrap()
            .plan
            .unwrap();
        assert_eq!(w.grant_epoch(), 0, "no broker, no epochs");
        w.register_session_flow(0, &plan, 0, 2);
        assert!(w.broker().is_none(), "registration is a no-op");
        assert_eq!(
            w.session_delivery_ppm(0, 0, &plan, 0),
            w.delivery_ppm(&plan, 0),
            "per-session delivery falls back to shared-fate"
        );
        let stats = w.delivery_cache_stats();
        assert_eq!(stats, DeliveryCacheStats::default(), "memo never touched");
        // Turning sharing on and off again restores the cold path.
        w.set_sharing(Some(SharingPolicy::Fcfs));
        assert!(w.broker().is_some());
        w.set_sharing(None);
        assert_eq!(w.grant_epoch(), 0);
        assert_eq!(
            w.session_delivery_ppm(0, 0, &plan, 0),
            w.delivery_ppm(&plan, 0)
        );
    }

    #[test]
    fn squeeze_mid_session_forces_recomposition() {
        let f = fixture();
        let (mut w, h) = world(&f);
        // Choke the last hop to 95% background load at 1s, release at
        // 2s; sessions hold for 3s and must re-compose through it.
        w.schedule_fault(
            1_000_000,
            FailureEvent::Squeeze {
                link: h.last_hop,
                permille: 950,
            },
        );
        w.schedule_fault(2_000_000, FailureEvent::Unsqueeze(h.last_hop));
        let reqs: Vec<SessionRequest> = (0..2).map(|_| session(&h, 0, 3_000_000)).collect();
        let config = SessionEngineConfig {
            admission: None,
            tick_us: 250_000,
            ..SessionEngineConfig::default()
        };
        let report = run_sessions(&mut w, &reqs, &config, &qosc_telemetry::NoopSink);
        assert!(report.counters.partitions_exactly());
        assert!(
            report.recompositions() >= 1,
            "the squeeze must break at least one live plan"
        );
        for outcome in &report.outcomes {
            // Every re-composition adopts a plan (or closes), so the
            // rung history has one entry per adoption.
            assert_eq!(
                outcome.rung_history.len() as u32,
                1 + outcome.recompositions,
            );
        }
    }
}
