//! Cross-session bandwidth broker.
//!
//! The paper's `Bandwidth_AvailableBetween` (Equa. 2) reasoning is strictly
//! per-request: each chain grabs link capacity first-come first-served, so a
//! thousand concurrent sessions through one backbone link collapse the
//! satisfaction tail. This crate adds the missing cross-session arbiter: a
//! deterministic, preemption-free broker that knows every live session's
//! demand window `(min_bps, max_bps)`, its priority-class weight, and the
//! directed links its plan is pinned to, and computes a weighted max-min
//! fair allocation by integer water-filling over the link-flow incidence.
//!
//! Design points:
//!
//! - **All arithmetic is integer `u64` bps** with saturating operations and
//!   deterministic tie-breaks (flows by session id, links by
//!   `(LinkId, direction)`), so allocations are bit-identical across runs,
//!   worker counts and flow-registration orders.
//! - **Preemption-free departures.** When a flow leaves, its released
//!   bandwidth is redistributed by water-filling *upward from the surviving
//!   grants*: no survivor's grant ever decreases. Arrivals and capacity
//!   changes trigger a full rebalance (a newcomer must be able to squeeze
//!   incumbents down to their fair share — that is fairness, not
//!   preemption).
//! - **Epoch counter.** `epoch()` bumps only when the published grants
//!   actually change, so consumers (the session event loop) can cheaply
//!   detect reallocations and re-evaluate ladder rungs without
//!   re-composing.
//!
//! The greedy first-come first-served baseline lives behind the same API
//! ([`SharingPolicy::Fcfs`]) so benchmarks compare both under identical
//! event sequences.

use qosc_netsim::LinkId;
use qosc_telemetry::MetricsRegistry;
use std::collections::{BTreeMap, BTreeSet};

/// A directed traversal of one link: `(link, forward?)` — the same encoding
/// `Route::directed_hops` produces.
pub type DirectedLink = (LinkId, bool);

/// One session's registered demand, pinned to its plan's route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpec {
    /// Session identifier (index into the session table); the deterministic
    /// tie-break key.
    pub session: u64,
    /// Guaranteed floor in bps (granted before any water-filling; callers
    /// must keep admission honest so floors stay feasible).
    pub min_bps: u64,
    /// Demand ceiling in bps — the flow is frozen at this cap once reached.
    pub max_bps: u64,
    /// Priority-class weight (e.g. interactive 4, standard 2, background 1).
    /// Zero is treated as one.
    pub weight: u32,
    /// Directed links the flow crosses; duplicates count multiply (a flow
    /// crossing a link twice consumes twice its rate there).
    pub hops: Vec<DirectedLink>,
}

impl FlowSpec {
    fn weight_u64(&self) -> u64 {
        u64::from(self.weight.max(1))
    }
}

/// Allocation discipline used on every recompute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingPolicy {
    /// Greedy first-come first-served: replay registration order, grant each
    /// flow `min(max_bps, bottleneck residual)`. The paper's implicit
    /// baseline.
    Fcfs,
    /// Weighted max-min fairness via integer water-filling with iterative
    /// bottleneck-link freezing.
    WeightedMaxMin,
}

/// The broker: capacities + registered flows + published grants.
#[derive(Debug, Clone)]
pub struct BandwidthBroker {
    policy: SharingPolicy,
    /// Effective capacity per directed link (bps). Links absent from this
    /// map are unconstrained.
    capacity: BTreeMap<DirectedLink, u64>,
    /// Flows keyed by session id; `seq` preserves registration order for
    /// the FCFS policy (re-pins keep the original sequence number).
    flows: BTreeMap<u64, (u64, FlowSpec)>,
    next_seq: u64,
    grants: BTreeMap<u64, u64>,
    epoch: u64,
    reallocations: u64,
}

impl BandwidthBroker {
    pub fn new(policy: SharingPolicy) -> BandwidthBroker {
        BandwidthBroker {
            policy,
            capacity: BTreeMap::new(),
            flows: BTreeMap::new(),
            next_seq: 0,
            grants: BTreeMap::new(),
            epoch: 0,
            reallocations: 0,
        }
    }

    pub fn policy(&self) -> SharingPolicy {
        self.policy
    }

    /// Stage an effective-capacity update for one directed link. Does not
    /// recompute: callers batch capacity changes (e.g. one chaos event can
    /// squeeze many links) and then call [`BandwidthBroker::rebalance`].
    pub fn set_capacity(&mut self, link: LinkId, forward: bool, capacity_bps: u64) {
        self.capacity.insert((link, forward), capacity_bps);
    }

    /// Register (or re-pin) a session's flow, then rebalance from scratch.
    /// A re-pin replaces the previous spec but keeps the original FCFS
    /// sequence number, so rung switches don't launder queue position.
    pub fn register(&mut self, flow: FlowSpec) {
        let seq = match self.flows.get(&flow.session) {
            Some((seq, _)) => *seq,
            None => {
                let s = self.next_seq;
                self.next_seq += 1;
                s
            }
        };
        self.flows.insert(flow.session, (seq, flow));
        self.recompute(Floors::None);
    }

    /// Remove a departing session's flow. The released bandwidth is
    /// redistributed preemption-free: survivors are water-filled upward
    /// from their current grants, so no survivor's grant decreases.
    pub fn deregister(&mut self, session: u64) -> bool {
        if self.flows.remove(&session).is_none() {
            return false;
        }
        self.recompute(Floors::PreviousGrants);
        true
    }

    /// Full rebalance against the current capacities (arrivals and
    /// capacity changes rebalance from the registered floors only).
    pub fn rebalance(&mut self) {
        self.recompute(Floors::None);
    }

    /// Granted rate in bps for a session, if it has a registered flow.
    pub fn grant(&self, session: u64) -> Option<u64> {
        self.grants.get(&session).copied()
    }

    /// The registered spec for a session, if any.
    pub fn flow(&self, session: u64) -> Option<&FlowSpec> {
        self.flows.get(&session).map(|(_, f)| f)
    }

    /// Bumps every time the published grants map changes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of recomputes that actually changed at least one grant.
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// All current grants (session → bps), in session-id order.
    pub fn grants(&self) -> &BTreeMap<u64, u64> {
        &self.grants
    }

    /// Publish per-class gauges and the reallocation counter.
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        registry
            .counter("qosc_broker_reallocations_total")
            .store(self.reallocations);
        registry
            .gauge("qosc_broker_flows")
            .set(self.flows.len() as i64);
        let mut by_weight: BTreeMap<u64, u64> = BTreeMap::new();
        for (session, (_, flow)) in &self.flows {
            let granted = self.grants.get(session).copied().unwrap_or(0);
            *by_weight.entry(flow.weight_u64()).or_insert(0) += granted;
        }
        for (weight, total) in by_weight {
            registry
                .gauge(&format!("qosc_broker_granted_bps_weight_{weight}"))
                .set(total.min(i64::MAX as u64) as i64);
        }
    }

    fn recompute(&mut self, floors: Floors) {
        let next = match self.policy {
            SharingPolicy::Fcfs => self.compute_fcfs(),
            SharingPolicy::WeightedMaxMin => {
                let flows: Vec<&FlowSpec> = self.flows.values().map(|(_, f)| f).collect();
                let floor_of = |f: &FlowSpec| match floors {
                    Floors::None => f.min_bps.min(f.max_bps),
                    Floors::PreviousGrants => self
                        .grants
                        .get(&f.session)
                        .copied()
                        .unwrap_or(0)
                        .max(f.min_bps)
                        .min(f.max_bps),
                };
                waterfill(&flows, &self.capacity, floor_of)
            }
        };
        if next != self.grants {
            self.grants = next;
            self.epoch += 1;
            self.reallocations += 1;
        }
    }

    fn compute_fcfs(&self) -> BTreeMap<u64, u64> {
        let mut order: Vec<(&u64, &(u64, FlowSpec))> = self.flows.iter().collect();
        order.sort_by_key(|(_, (seq, _))| *seq);
        let mut residual = self.capacity.clone();
        let mut grants = BTreeMap::new();
        for (session, (_, flow)) in order {
            // Multiplicity-aware bottleneck: crossing a link c times caps
            // the rate at residual / c there.
            let mut crossings: BTreeMap<DirectedLink, u64> = BTreeMap::new();
            for hop in &flow.hops {
                *crossings.entry(*hop).or_insert(0) += 1;
            }
            let mut avail = flow.max_bps;
            for (hop, count) in &crossings {
                if let Some(r) = residual.get(hop) {
                    avail = avail.min(r / count);
                }
            }
            grants.insert(*session, avail);
            for hop in &flow.hops {
                if let Some(r) = residual.get_mut(hop) {
                    *r = r.saturating_sub(avail);
                }
            }
        }
        grants
    }
}

/// Which floor each flow water-fills upward from.
#[derive(Debug, Clone, Copy)]
enum Floors {
    /// Registered `min_bps` — full rebalance (arrival / capacity change).
    None,
    /// `max(previous grant, min_bps)` — preemption-free departure.
    PreviousGrants,
}

/// Integer weighted max-min water-filling.
///
/// Tier 1 grants every flow its floor (saturating the residuals — admission
/// keeps floors feasible, the kernel stays total regardless). Tier 2 then
/// raises all unfrozen flows in lock-step proportional to weight: each round
/// computes the per-link level `floor(residual / Σ weights crossing)`, takes
/// the global minimum `λ`, freezes cap-limited flows (remaining headroom
/// `≤ λ·w`) at their cap, otherwise freezes every flow crossing the
/// bottleneck link (lowest `(LinkId, direction)` on ties) at exactly `λ·w`.
/// No sub-weight remainder is distributed, so the result is independent of
/// flow order; the waste per saturated link is below the link's weight sum.
fn waterfill(
    flows: &[&FlowSpec],
    capacity: &BTreeMap<DirectedLink, u64>,
    floor_of: impl Fn(&FlowSpec) -> u64,
) -> BTreeMap<u64, u64> {
    let mut grants: BTreeMap<u64, u64> = BTreeMap::new();
    let mut residual = capacity.clone();
    let mut order: Vec<usize> = (0..flows.len()).collect();
    order.sort_by_key(|&i| flows[i].session);

    // Tier 1: floors.
    for &i in &order {
        let flow = flows[i];
        let floor = floor_of(flow).min(flow.max_bps);
        grants.insert(flow.session, floor);
        for hop in &flow.hops {
            if let Some(r) = residual.get_mut(hop) {
                *r = r.saturating_sub(floor);
            }
        }
    }

    // Tier 2: water-fill the headroom above the floors. Per-link state is
    // maintained incrementally (each flow is frozen exactly once), keeping a
    // recompute at O(flows·hops + rounds·links).
    let mut active: Vec<usize> = Vec::new();
    let mut weight_sum: BTreeMap<DirectedLink, u64> = BTreeMap::new();
    for &i in &order {
        let flow = flows[i];
        if grants[&flow.session] >= flow.max_bps {
            continue;
        }
        let constrained = flow.hops.iter().any(|h| residual.contains_key(h));
        if !constrained {
            // No shared link on the path: grant the full demand.
            grants.insert(flow.session, flow.max_bps);
            continue;
        }
        for hop in &flow.hops {
            if residual.contains_key(hop) {
                *weight_sum.entry(*hop).or_insert(0) += flow.weight_u64();
            }
        }
        active.push(i);
    }

    while !active.is_empty() {
        // Global water level and bottleneck link (first achiever in
        // ascending (LinkId, direction) order wins ties).
        let mut level = u64::MAX;
        let mut bottleneck: Option<DirectedLink> = None;
        for (link, w) in &weight_sum {
            if *w == 0 {
                continue;
            }
            let l = residual.get(link).copied().unwrap_or(0) / w;
            if l < level {
                level = l;
                bottleneck = Some(*link);
            }
        }
        let Some(bottleneck) = bottleneck else { break };

        // Cap-limited flows freeze first (at their cap, which is at or
        // below the level share); only if none exist does the bottleneck
        // link freeze its crossers at exactly λ·w.
        let mut frozen: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&i| {
                let f = flows[i];
                f.max_bps - grants[&f.session] <= level.saturating_mul(f.weight_u64())
            })
            .collect();
        if frozen.is_empty() {
            frozen = active
                .iter()
                .copied()
                .filter(|&i| flows[i].hops.contains(&bottleneck))
                .collect();
        }
        debug_assert!(!frozen.is_empty());

        let frozen_set: BTreeSet<usize> = frozen.iter().copied().collect();
        for &i in &frozen {
            let flow = flows[i];
            let headroom = flow.max_bps - grants[&flow.session];
            let extra = headroom.min(level.saturating_mul(flow.weight_u64()));
            *grants.get_mut(&flow.session).expect("granted in tier 1") += extra;
            for hop in &flow.hops {
                if let Some(r) = residual.get_mut(hop) {
                    *r = r.saturating_sub(extra);
                }
                if let Some(w) = weight_sum.get_mut(hop) {
                    *w = w.saturating_sub(flow.weight_u64());
                }
            }
        }
        active.retain(|i| !frozen_set.contains(i));
    }

    grants
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_netsim::{Node, Topology};

    fn line_topology(links: usize) -> (Topology, Vec<LinkId>) {
        let mut topo = Topology::new();
        let mut prev = topo.add_node(Node::unconstrained("n0"));
        let mut ids = Vec::new();
        for i in 0..links {
            let next = topo.add_node(Node::unconstrained(format!("n{}", i + 1)));
            ids.push(topo.connect_simple(prev, next, 1e9).expect("connect"));
            prev = next;
        }
        (topo, ids)
    }

    fn flow(session: u64, min: u64, max: u64, weight: u32, hops: Vec<DirectedLink>) -> FlowSpec {
        FlowSpec {
            session,
            min_bps: min,
            max_bps: max,
            weight,
            hops,
        }
    }

    #[test]
    fn equal_weights_split_a_single_bottleneck_evenly() {
        let (_topo, ids) = line_topology(1);
        let l = ids[0];
        let mut broker = BandwidthBroker::new(SharingPolicy::WeightedMaxMin);
        broker.set_capacity(l, true, 9_000);
        for s in 0..3 {
            broker.register(flow(s, 0, 100_000, 1, vec![(l, true)]));
        }
        for s in 0..3 {
            assert_eq!(broker.grant(s), Some(3_000));
        }
    }

    #[test]
    fn weights_shape_the_split() {
        let (_topo, ids) = line_topology(1);
        let l = ids[0];
        let mut broker = BandwidthBroker::new(SharingPolicy::WeightedMaxMin);
        broker.set_capacity(l, true, 7_000);
        broker.register(flow(0, 0, 100_000, 4, vec![(l, true)]));
        broker.register(flow(1, 0, 100_000, 2, vec![(l, true)]));
        broker.register(flow(2, 0, 100_000, 1, vec![(l, true)]));
        assert_eq!(broker.grant(0), Some(4_000));
        assert_eq!(broker.grant(1), Some(2_000));
        assert_eq!(broker.grant(2), Some(1_000));
    }

    #[test]
    fn capped_flow_releases_its_share_to_the_rest() {
        let (_topo, ids) = line_topology(1);
        let l = ids[0];
        let mut broker = BandwidthBroker::new(SharingPolicy::WeightedMaxMin);
        broker.set_capacity(l, true, 12_000);
        broker.register(flow(0, 0, 2_000, 1, vec![(l, true)]));
        broker.register(flow(1, 0, 100_000, 1, vec![(l, true)]));
        broker.register(flow(2, 0, 100_000, 1, vec![(l, true)]));
        assert_eq!(broker.grant(0), Some(2_000));
        assert_eq!(broker.grant(1), Some(5_000));
        assert_eq!(broker.grant(2), Some(5_000));
    }

    #[test]
    fn mins_are_granted_before_water_filling() {
        let (_topo, ids) = line_topology(1);
        let l = ids[0];
        let mut broker = BandwidthBroker::new(SharingPolicy::WeightedMaxMin);
        broker.set_capacity(l, true, 10_000);
        broker.register(flow(0, 8_000, 100_000, 1, vec![(l, true)]));
        broker.register(flow(1, 0, 100_000, 1, vec![(l, true)]));
        // Session 0 keeps its floor; the 2k headroom splits 1k/1k.
        assert_eq!(broker.grant(0), Some(9_000));
        assert_eq!(broker.grant(1), Some(1_000));
    }

    #[test]
    fn multi_link_bottleneck_freezing_redistributes() {
        // L1 cap 10k carries {A, B}; L2 cap 6k carries {B, C}. Max-min:
        // B and C freeze at 3k on L2, then A takes the 7k left on L1.
        let (_topo, ids) = line_topology(2);
        let (l1, l2) = (ids[0], ids[1]);
        let mut broker = BandwidthBroker::new(SharingPolicy::WeightedMaxMin);
        broker.set_capacity(l1, true, 10_000);
        broker.set_capacity(l2, true, 6_000);
        broker.register(flow(0, 0, 100_000, 1, vec![(l1, true)]));
        broker.register(flow(1, 0, 100_000, 1, vec![(l1, true), (l2, true)]));
        broker.register(flow(2, 0, 100_000, 1, vec![(l2, true)]));
        assert_eq!(broker.grant(1), Some(3_000));
        assert_eq!(broker.grant(2), Some(3_000));
        assert_eq!(broker.grant(0), Some(7_000));
    }

    #[test]
    fn departure_is_preemption_free() {
        // Same shape as above; when C leaves, a from-scratch max-min would
        // cut A from 7k to 5k (B rises to 5k on L1). The broker instead
        // water-fills upward from the surviving grants: A keeps 7k, B rises
        // only into capacity nobody holds.
        let (_topo, ids) = line_topology(2);
        let (l1, l2) = (ids[0], ids[1]);
        let mut broker = BandwidthBroker::new(SharingPolicy::WeightedMaxMin);
        broker.set_capacity(l1, true, 10_000);
        broker.set_capacity(l2, true, 6_000);
        broker.register(flow(0, 0, 100_000, 1, vec![(l1, true)]));
        broker.register(flow(1, 0, 100_000, 1, vec![(l1, true), (l2, true)]));
        broker.register(flow(2, 0, 100_000, 1, vec![(l2, true)]));
        assert!(broker.deregister(2));
        assert_eq!(broker.grant(0), Some(7_000));
        assert_eq!(broker.grant(1), Some(3_000));
        // The next arrival rebalances from scratch.
        broker.register(flow(3, 0, 100_000, 1, vec![(l2, true)]));
        assert_eq!(broker.grant(0), Some(7_000));
        assert_eq!(broker.grant(1), Some(3_000));
        assert_eq!(broker.grant(3), Some(3_000));
    }

    #[test]
    fn fcfs_is_registration_ordered() {
        let (_topo, ids) = line_topology(1);
        let l = ids[0];
        let mut broker = BandwidthBroker::new(SharingPolicy::Fcfs);
        broker.set_capacity(l, true, 10_000);
        broker.register(flow(7, 0, 8_000, 1, vec![(l, true)]));
        broker.register(flow(1, 0, 8_000, 1, vec![(l, true)]));
        broker.register(flow(3, 0, 8_000, 1, vec![(l, true)]));
        // First registrant wins regardless of session id.
        assert_eq!(broker.grant(7), Some(8_000));
        assert_eq!(broker.grant(1), Some(2_000));
        assert_eq!(broker.grant(3), Some(0));
        // A re-pin keeps queue position: session 7 lowering its demand
        // frees capacity for session 1, not for itself.
        broker.register(flow(7, 0, 4_000, 1, vec![(l, true)]));
        assert_eq!(broker.grant(7), Some(4_000));
        assert_eq!(broker.grant(1), Some(6_000));
        assert_eq!(broker.grant(3), Some(0));
    }

    #[test]
    fn epoch_bumps_only_on_actual_grant_changes() {
        let (_topo, ids) = line_topology(1);
        let l = ids[0];
        let mut broker = BandwidthBroker::new(SharingPolicy::WeightedMaxMin);
        broker.set_capacity(l, true, 10_000);
        broker.register(flow(0, 0, 4_000, 1, vec![(l, true)]));
        let e = broker.epoch();
        // Uncontended second flow: its arrival changes the grants map (new
        // entry) but must not disturb session 0.
        broker.register(flow(1, 0, 4_000, 1, vec![(l, true)]));
        assert_eq!(broker.grant(0), Some(4_000));
        assert!(broker.epoch() > e);
        let e = broker.epoch();
        // Identical re-pin: no grant changes, no epoch bump.
        broker.register(flow(1, 0, 4_000, 1, vec![(l, true)]));
        assert_eq!(broker.epoch(), e);
        // Squeeze then rebalance: grants drop, epoch bumps.
        broker.set_capacity(l, true, 6_000);
        broker.rebalance();
        assert!(broker.epoch() > e);
        assert_eq!(broker.grant(0), Some(3_000));
        assert_eq!(broker.grant(1), Some(3_000));
    }

    #[test]
    fn duplicate_hops_count_multiply() {
        let (_topo, ids) = line_topology(1);
        let l = ids[0];
        let mut broker = BandwidthBroker::new(SharingPolicy::WeightedMaxMin);
        broker.set_capacity(l, true, 12_000);
        // Session 0 crosses the link twice: rate g consumes 2g there.
        broker.register(flow(0, 0, 100_000, 1, vec![(l, true), (l, true)]));
        broker.register(flow(1, 0, 100_000, 1, vec![(l, true)]));
        // Weight sum on the link is 2+1 = 3 → level 4k; both freeze there:
        // session 0 at 4k (consuming 8k), session 1 at 4k.
        assert_eq!(broker.grant(0), Some(4_000));
        assert_eq!(broker.grant(1), Some(4_000));
    }

    #[test]
    fn metrics_export_publishes_class_gauges() {
        let (_topo, ids) = line_topology(1);
        let l = ids[0];
        let mut broker = BandwidthBroker::new(SharingPolicy::WeightedMaxMin);
        broker.set_capacity(l, true, 6_000);
        broker.register(flow(0, 0, 100_000, 4, vec![(l, true)]));
        broker.register(flow(1, 0, 100_000, 2, vec![(l, true)]));
        let registry = MetricsRegistry::new();
        broker.export_metrics(&registry);
        assert_eq!(registry.gauge_value("qosc_broker_flows"), Some(2));
        assert_eq!(
            registry.gauge_value("qosc_broker_granted_bps_weight_4"),
            Some(4_000)
        );
        assert_eq!(
            registry.gauge_value("qosc_broker_granted_bps_weight_2"),
            Some(2_000)
        );
        assert!(registry.counter_value("qosc_broker_reallocations_total") >= Some(1));
    }
}
