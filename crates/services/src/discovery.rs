//! The discovery loop: intermediaries keeping their advertisements
//! alive.
//!
//! In the paper's middleware picture (JINI/SLP), every intermediary
//! periodically re-announces its services; the directory forgets
//! whatever stops announcing. [`DiscoveryDriver`] is that loop in
//! simulation form: it tracks a set of *members* (service instances that
//! *should* be advertised), renews their leases each tick, lets a test
//! or experiment crash and revive members, and reconciles the registry —
//! a crashed member's advertisement dies at lease expiry with no other
//! coordination, which is precisely the "self-organizing" property.

use crate::descriptor::{ServiceId, TranscoderDescriptor};
use crate::registry::ServiceRegistry;
use crate::sharded::ShardedServiceRegistry;
use crate::Result;
use qosc_netsim::SimTime;

/// The registry surface the discovery loop drives: soft-state
/// registration and lease maintenance.
///
/// Implemented by the flat [`ServiceRegistry`] and by the
/// [`ShardedServiceRegistry`] wrapper, so a world can route its churn
/// through per-shard epochs (keeping cache revalidation O(touched
/// shards)) without the driver knowing which flavor it talks to.
pub trait RegistryOps {
    /// Register an advertisement with a lease.
    fn register(
        &mut self,
        descriptor: TranscoderDescriptor,
        now: SimTime,
        ttl_us: u64,
    ) -> ServiceId;
    /// Renew an advertisement's lease.
    fn renew(&mut self, id: ServiceId, now: SimTime, ttl_us: u64) -> Result<()>;
    /// Expire stale leases, returning the expired ids.
    fn expire_leases(&mut self, now: SimTime) -> Vec<ServiceId>;
    /// Whether `id` is currently advertised.
    fn is_live(&self, id: ServiceId) -> bool;
}

impl RegistryOps for ServiceRegistry {
    fn register(
        &mut self,
        descriptor: TranscoderDescriptor,
        now: SimTime,
        ttl_us: u64,
    ) -> ServiceId {
        ServiceRegistry::register(self, descriptor, now, ttl_us)
    }

    fn renew(&mut self, id: ServiceId, now: SimTime, ttl_us: u64) -> Result<()> {
        ServiceRegistry::renew(self, id, now, ttl_us)
    }

    fn expire_leases(&mut self, now: SimTime) -> Vec<ServiceId> {
        ServiceRegistry::expire_leases(self, now)
    }

    fn is_live(&self, id: ServiceId) -> bool {
        ServiceRegistry::is_live(self, id)
    }
}

impl RegistryOps for ShardedServiceRegistry {
    fn register(
        &mut self,
        descriptor: TranscoderDescriptor,
        now: SimTime,
        ttl_us: u64,
    ) -> ServiceId {
        ShardedServiceRegistry::register(self, descriptor, now, ttl_us)
    }

    fn renew(&mut self, id: ServiceId, now: SimTime, ttl_us: u64) -> Result<()> {
        ShardedServiceRegistry::renew(self, id, now, ttl_us)
    }

    fn expire_leases(&mut self, now: SimTime) -> Vec<ServiceId> {
        ShardedServiceRegistry::expire_leases(self, now)
    }

    fn is_live(&self, id: ServiceId) -> bool {
        self.flat().is_live(id)
    }
}

/// Handle to one tracked member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemberId(usize);

/// Lease timing.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryConfig {
    /// Lease time-to-live granted on registration/renewal.
    pub ttl: SimTime,
}

impl Default for DiscoveryConfig {
    fn default() -> DiscoveryConfig {
        DiscoveryConfig {
            ttl: SimTime::from_secs(10),
        }
    }
}

#[derive(Debug)]
struct Member {
    descriptor: TranscoderDescriptor,
    registration: Option<ServiceId>,
    alive: bool,
}

/// Drives lease renewal for a fleet of service instances.
#[derive(Debug, Default)]
pub struct DiscoveryDriver {
    config: DiscoveryConfig,
    members: Vec<Member>,
}

impl DiscoveryDriver {
    /// A driver with the given lease configuration.
    pub fn new(config: DiscoveryConfig) -> DiscoveryDriver {
        DiscoveryDriver {
            config,
            members: Vec::new(),
        }
    }

    /// Track (and register) a new member.
    pub fn join<R: RegistryOps>(
        &mut self,
        registry: &mut R,
        descriptor: TranscoderDescriptor,
        now: SimTime,
    ) -> MemberId {
        let id = registry.register(descriptor.clone(), now, self.config.ttl.as_micros());
        self.members.push(Member {
            descriptor,
            registration: Some(id),
            alive: true,
        });
        MemberId(self.members.len() - 1)
    }

    /// Crash a member: it silently stops renewing. Its advertisement
    /// stays visible until the lease runs out — exactly the staleness
    /// window soft-state discovery trades for decentralization.
    pub fn crash(&mut self, member: MemberId) {
        if let Some(m) = self.members.get_mut(member.0) {
            m.alive = false;
        }
    }

    /// Revive a crashed member: it re-registers immediately (a fresh
    /// process on the same host).
    pub fn revive<R: RegistryOps>(
        &mut self,
        registry: &mut R,
        member: MemberId,
        now: SimTime,
    ) -> Result<()> {
        let ttl = self.config.ttl.as_micros();
        if let Some(m) = self.members.get_mut(member.0) {
            if !m.alive {
                m.alive = true;
                m.registration = Some(registry.register(m.descriptor.clone(), now, ttl));
            }
        }
        Ok(())
    }

    /// One discovery tick at time `now`: every alive member renews (a
    /// member whose old advertisement already expired re-registers), and
    /// stale leases are expired. Returns the number of advertisements
    /// that expired this tick.
    pub fn tick<R: RegistryOps>(&mut self, registry: &mut R, now: SimTime) -> usize {
        let ttl = self.config.ttl.as_micros();
        for m in &mut self.members {
            if !m.alive {
                continue;
            }
            let needs_reregister = match m.registration {
                Some(id) => registry.renew(id, now, ttl).is_err(),
                None => true,
            };
            if needs_reregister {
                m.registration = Some(registry.register(m.descriptor.clone(), now, ttl));
            }
        }
        registry.expire_leases(now).len()
    }

    /// Whether `member` currently has a live advertisement.
    pub fn is_advertised<R: RegistryOps>(&self, registry: &R, member: MemberId) -> bool {
        self.members
            .get(member.0)
            .and_then(|m| m.registration)
            .map(|id| registry.is_live(id))
            .unwrap_or(false)
    }

    /// Number of tracked members (alive or crashed).
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The current advertisement id for `member`, if any. After a
    /// revive this is a *fresh* [`ServiceId`] — advertisement ids are
    /// per-incarnation, not per-member.
    pub fn registration(&self, member: MemberId) -> Option<ServiceId> {
        self.members.get(member.0).and_then(|m| m.registration)
    }

    /// The member whose *current* advertisement is `id`, if any. Stale
    /// ids from previous incarnations resolve to `None`, which is
    /// exactly what observers want: observations about a dead
    /// incarnation must not be attributed to its successor.
    pub fn member_of(&self, id: ServiceId) -> Option<MemberId> {
        self.members
            .iter()
            .position(|m| m.registration == Some(id))
            .map(MemberId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::{DomainVector, FormatRegistry, MediaKind};
    use qosc_netsim::{Node, Topology};
    use qosc_profiles::{ConversionSpec, ServiceSpec};

    fn descriptor(formats: &mut FormatRegistry) -> TranscoderDescriptor {
        formats.register_abstract("in", MediaKind::Video);
        formats.register_abstract("out", MediaKind::Video);
        let mut topo = Topology::new();
        let host = topo.add_node(Node::unconstrained("host"));
        let spec = ServiceSpec::new(
            "svc",
            vec![ConversionSpec::new("in", "out", DomainVector::new())],
        );
        TranscoderDescriptor::resolve(&spec, formats, host).unwrap()
    }

    #[test]
    fn alive_members_survive_ticks() {
        let mut formats = FormatRegistry::new();
        let mut registry = ServiceRegistry::new();
        let mut driver = DiscoveryDriver::new(DiscoveryConfig {
            ttl: SimTime::from_secs(5),
        });
        let member = driver.join(&mut registry, descriptor(&mut formats), SimTime::ZERO);
        for t in 1..=20 {
            driver.tick(&mut registry, SimTime::from_secs(t));
            assert!(driver.is_advertised(&registry, member), "t = {t}");
        }
        assert_eq!(registry.live_count(), 1);
    }

    #[test]
    fn crashed_member_expires_at_ttl() {
        let mut formats = FormatRegistry::new();
        let mut registry = ServiceRegistry::new();
        let mut driver = DiscoveryDriver::new(DiscoveryConfig {
            ttl: SimTime::from_secs(5),
        });
        let member = driver.join(&mut registry, descriptor(&mut formats), SimTime::ZERO);
        driver.crash(member);
        // Still visible inside the staleness window…
        driver.tick(&mut registry, SimTime::from_secs(3));
        assert!(driver.is_advertised(&registry, member));
        // …gone after the lease runs out, with no explicit deregistration.
        let expired = driver.tick(&mut registry, SimTime::from_secs(6));
        assert_eq!(expired, 1);
        assert!(!driver.is_advertised(&registry, member));
        assert_eq!(registry.live_count(), 0);
    }

    #[test]
    fn revival_reregisters() {
        let mut formats = FormatRegistry::new();
        let mut registry = ServiceRegistry::new();
        let mut driver = DiscoveryDriver::new(DiscoveryConfig {
            ttl: SimTime::from_secs(5),
        });
        let member = driver.join(&mut registry, descriptor(&mut formats), SimTime::ZERO);
        driver.crash(member);
        driver.tick(&mut registry, SimTime::from_secs(10));
        assert_eq!(registry.live_count(), 0);
        driver
            .revive(&mut registry, member, SimTime::from_secs(11))
            .unwrap();
        assert!(driver.is_advertised(&registry, member));
        driver.tick(&mut registry, SimTime::from_secs(12));
        assert_eq!(registry.live_count(), 1);
    }

    #[test]
    fn reviving_an_alive_member_is_a_no_op() {
        let mut formats = FormatRegistry::new();
        let mut registry = ServiceRegistry::new();
        let mut driver = DiscoveryDriver::new(DiscoveryConfig::default());
        let member = driver.join(&mut registry, descriptor(&mut formats), SimTime::ZERO);
        driver
            .revive(&mut registry, member, SimTime::from_secs(1))
            .unwrap();
        assert_eq!(registry.live_count(), 1, "no duplicate advertisement");
        assert_eq!(driver.member_count(), 1);
    }
}
