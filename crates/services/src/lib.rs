//! # qosc-services
//!
//! Trans-coding services for the `qosc` reproduction of *"A QoS-based
//! Service Composition for Content Adaptation"* (ICDE 2007).
//!
//! * [`TranscoderDescriptor`] — the runtime form of a service: resolved
//!   format ids, an output-quality domain per conversion, resource
//!   requirements, a price model, and the network node it runs on,
//! * [`ServiceRegistry`] — the discovery substrate. The paper points at
//!   JINI / SLP / WSDL; we implement the semantics composition needs:
//!   registration with SLP-style leases (TTL), renewal, expiry, and
//!   format-indexed lookup ("which services accept format F?"),
//! * [`catalog`] — a library of realistic service specs (JPEG→GIF colour
//!   reduction, HTML→WML, MPEG-2→H.263 down-coding, PCM→MP3, video→key
//!   frames, …) matching the adaptations the paper's introduction lists,
//! * [`host`] — CPU/memory admission against the intermediary's node
//!   resources (Section 3, intermediary profile).

pub mod catalog;
pub mod descriptor;
pub mod discovery;
pub mod host;
pub mod qos;
pub mod registry;
pub mod sharded;

pub use descriptor::{Conversion, ServiceId, TranscoderDescriptor};
pub use discovery::{DiscoveryConfig, DiscoveryDriver, MemberId, RegistryOps};
pub use host::{AdmissionId, HostResources};
pub use qos::{QosEstimator, QosEstimatorConfig, QosObservation, SlaVerdict, SlaWatchdog, QOS_PPM};
pub use registry::{ProbationConfig, QuarantineConfig, RegistryEvent, ServiceRegistry};
pub use sharded::{PairKey, ShardRouter, ShardedServiceRegistry};

use qosc_netsim::NodeId;

/// Errors produced by this crate.
#[derive(Debug)]
pub enum ServiceError {
    /// A service spec referenced an unknown format name.
    Media(qosc_media::MediaError),
    /// A profile-level validation error surfaced during resolution.
    Profile(qosc_profiles::ProfileError),
    /// A service id was used after deregistration/expiry.
    UnknownService(ServiceId),
    /// Admission would exceed a node's CPU or memory capacity.
    InsufficientResources {
        /// The node that could not host the work.
        node: NodeId,
        /// Human-readable description of the shortfall.
        detail: String,
    },
    /// An admission id was released twice or never existed.
    UnknownAdmission(AdmissionId),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Media(e) => write!(f, "media error: {e}"),
            ServiceError::Profile(e) => write!(f, "profile error: {e}"),
            ServiceError::UnknownService(id) => write!(f, "unknown service {id:?}"),
            ServiceError::InsufficientResources { node, detail } => {
                write!(f, "node {node:?} lacks resources: {detail}")
            }
            ServiceError::UnknownAdmission(id) => write!(f, "unknown admission {id:?}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Media(e) => Some(e),
            ServiceError::Profile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qosc_media::MediaError> for ServiceError {
    fn from(e: qosc_media::MediaError) -> ServiceError {
        ServiceError::Media(e)
    }
}

impl From<qosc_profiles::ProfileError> for ServiceError {
    fn from(e: qosc_profiles::ProfileError) -> ServiceError {
        ServiceError::Profile(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServiceError>;
