//! A catalog of realistic trans-coding service descriptions.
//!
//! The paper's introduction motivates exactly these adaptations: "text
//! summarization, format change, reduction of image quality, removal of
//! redundant information, audio to text conversion, video to key frame or
//! video to text conversion", plus the web-content classics "conversion
//! of HTML pages to WML pages, conversion of jpeg images to black and
//! white gif images". Each function returns a wire
//! [`ServiceSpec`](qosc_profiles::ServiceSpec) against the built-in
//! format names of
//! [`FormatRegistry::with_builtins`](qosc_media::FormatRegistry::with_builtins).
//!
//! Resource and price figures are plausible 2007-era magnitudes; what
//! matters to the reproduction is their *relative* order (video work ≫
//! image work ≫ text work).

use qosc_media::{Axis, AxisDomain, DomainVector};
use qosc_profiles::{ConversionSpec, PriceModel, ServiceSpec};

fn video_domain(max_fps: f64, max_pixels: f64, max_depth: f64) -> DomainVector {
    DomainVector::new()
        .with(
            Axis::FrameRate,
            AxisDomain::Continuous {
                min: 1.0,
                max: max_fps,
            },
        )
        .with(
            Axis::PixelCount,
            AxisDomain::Continuous {
                min: 4_800.0,
                max: max_pixels,
            },
        )
        .with(
            Axis::ColorDepth,
            AxisDomain::Continuous {
                min: 4.0,
                max: max_depth,
            },
        )
}

fn image_domain(max_pixels: f64, max_depth: f64) -> DomainVector {
    DomainVector::new()
        .with(
            Axis::PixelCount,
            AxisDomain::Continuous {
                min: 1_024.0,
                max: max_pixels,
            },
        )
        .with(
            Axis::ColorDepth,
            AxisDomain::Continuous {
                min: 1.0,
                max: max_depth,
            },
        )
}

fn audio_domain(rates: &[f64], max_channels: f64) -> DomainVector {
    DomainVector::new()
        .with(Axis::SampleRate, AxisDomain::Discrete(rates.to_vec()))
        .with(
            Axis::Channels,
            AxisDomain::Discrete((1..=max_channels as i64).map(|c| c as f64).collect()),
        )
        .with(Axis::SampleDepth, AxisDomain::Discrete(vec![8.0, 16.0]))
}

fn text_domain(max_fidelity: f64) -> DomainVector {
    DomainVector::new().with(
        Axis::Fidelity,
        AxisDomain::Continuous {
            min: 5.0,
            max: max_fidelity,
        },
    )
}

/// MPEG-2 → H.263 down-coder (the mobile video workhorse).
pub fn mpeg2_to_h263() -> ServiceSpec {
    ServiceSpec::new(
        "mpeg2-to-h263",
        vec![ConversionSpec::new(
            "video/mpeg2",
            "video/h263",
            video_domain(30.0, 101_376.0, 24.0), // up to CIF
        )],
    )
    .with_resources(120.0, 256e6)
    .with_price(PriceModel {
        per_second: 0.002,
        per_mbit: 0.001,
    })
}

/// MPEG-2 → MPEG-1 re-encoder (compatibility down-coding).
pub fn mpeg2_to_mpeg1() -> ServiceSpec {
    ServiceSpec::new(
        "mpeg2-to-mpeg1",
        vec![ConversionSpec::new(
            "video/mpeg2",
            "video/mpeg1",
            video_domain(30.0, 307_200.0, 24.0),
        )],
    )
    .with_resources(90.0, 192e6)
    .with_price(PriceModel {
        per_second: 0.0015,
        per_mbit: 0.001,
    })
}

/// MPEG-1 → H.261 down-coder (legacy conferencing formats).
pub fn mpeg1_to_h261() -> ServiceSpec {
    ServiceSpec::new(
        "mpeg1-to-h261",
        vec![ConversionSpec::new(
            "video/mpeg1",
            "video/h261",
            video_domain(30.0, 101_376.0, 12.0),
        )],
    )
    .with_resources(70.0, 128e6)
    .with_price(PriceModel {
        per_second: 0.001,
        per_mbit: 0.0005,
    })
}

/// In-format video quality reducer (frame-rate / resolution dropper):
/// "removal of redundant information".
pub fn video_reducer() -> ServiceSpec {
    ServiceSpec::new(
        "video-reducer",
        vec![
            ConversionSpec::new(
                "video/mpeg2",
                "video/mpeg2",
                video_domain(30.0, 307_200.0, 24.0),
            ),
            ConversionSpec::new(
                "video/mpeg1",
                "video/mpeg1",
                video_domain(30.0, 307_200.0, 24.0),
            ),
        ],
    )
    .with_resources(40.0, 96e6)
    .with_price(PriceModel {
        per_second: 0.0008,
        per_mbit: 0.0004,
    })
}

/// JPEG → GIF with colour-depth reduction — the paper's own two-stage
/// example ("trans-coding a 256-color depth jpeg image to a 2-color depth
/// gif image").
pub fn jpeg_to_gif() -> ServiceSpec {
    ServiceSpec::new(
        "jpeg-to-gif",
        vec![ConversionSpec::new(
            "image/jpeg",
            "image/gif",
            image_domain(786_432.0, 8.0),
        )],
    )
    .with_resources(20.0, 64e6)
    .with_price(PriceModel {
        per_second: 0.0004,
        per_mbit: 0.0002,
    })
}

/// In-format JPEG colour/resolution reducer ("reduction of image
/// quality") — stage one of the paper's combinatorial example.
pub fn jpeg_color_reducer() -> ServiceSpec {
    ServiceSpec::new(
        "jpeg-color-reducer",
        vec![ConversionSpec::new(
            "image/jpeg",
            "image/jpeg",
            image_domain(2_073_600.0, 24.0),
        )],
    )
    .with_resources(15.0, 48e6)
    .with_price(PriceModel {
        per_second: 0.0003,
        per_mbit: 0.0002,
    })
}

/// HTML → WML conversion for WAP devices.
pub fn html_to_wml() -> ServiceSpec {
    ServiceSpec::new(
        "html-to-wml",
        vec![ConversionSpec::new(
            "text/html",
            "text/wml",
            text_domain(60.0),
        )],
    )
    .with_resources(5.0, 16e6)
    .with_price(PriceModel {
        per_second: 0.0001,
        per_mbit: 0.0001,
    })
}

/// Text summarizer (in-format fidelity reduction).
pub fn text_summarizer() -> ServiceSpec {
    ServiceSpec::new(
        "text-summarizer",
        vec![ConversionSpec::new(
            "text/html",
            "text/html",
            text_domain(50.0),
        )],
    )
    .with_resources(8.0, 32e6)
    .with_price(PriceModel {
        per_second: 0.0002,
        per_mbit: 0.0001,
    })
}

/// PCM → MP3 encoder.
pub fn pcm_to_mp3() -> ServiceSpec {
    ServiceSpec::new(
        "pcm-to-mp3",
        vec![ConversionSpec::new(
            "audio/pcm",
            "audio/mp3",
            audio_domain(&[8_000.0, 22_050.0, 44_100.0], 2.0),
        )],
    )
    .with_resources(30.0, 64e6)
    .with_price(PriceModel {
        per_second: 0.0005,
        per_mbit: 0.0003,
    })
}

/// MP3 → AMR narrow-band re-encoder for cellular handsets.
pub fn mp3_to_amr() -> ServiceSpec {
    ServiceSpec::new(
        "mp3-to-amr",
        vec![ConversionSpec::new(
            "audio/mp3",
            "audio/amr",
            audio_domain(&[8_000.0], 1.0),
        )],
    )
    .with_resources(25.0, 48e6)
    .with_price(PriceModel {
        per_second: 0.0004,
        per_mbit: 0.0002,
    })
}

/// Video → key-frame extraction ("video to key frame conversion").
pub fn video_to_keyframes() -> ServiceSpec {
    ServiceSpec::new(
        "video-to-keyframes",
        vec![ConversionSpec::new(
            "video/mpeg2",
            "image/jpeg",
            image_domain(307_200.0, 24.0),
        )],
    )
    .with_resources(60.0, 128e6)
    .with_price(PriceModel {
        per_second: 0.001,
        per_mbit: 0.0005,
    })
}

/// Video → text transcript ("video to text conversion").
pub fn video_to_text() -> ServiceSpec {
    ServiceSpec::new(
        "video-to-text",
        vec![ConversionSpec::new(
            "video/mpeg2",
            "text/html",
            text_domain(40.0),
        )],
    )
    .with_resources(200.0, 512e6)
    .with_price(PriceModel {
        per_second: 0.004,
        per_mbit: 0.002,
    })
}

/// Audio → text transcript ("audio to text conversion").
pub fn audio_to_text() -> ServiceSpec {
    ServiceSpec::new(
        "audio-to-text",
        vec![ConversionSpec::new(
            "audio/pcm",
            "text/html",
            text_domain(40.0),
        )],
    )
    .with_resources(150.0, 384e6)
    .with_price(PriceModel {
        per_second: 0.003,
        per_mbit: 0.002,
    })
}

/// The full catalog, in a stable order.
pub fn full_catalog() -> Vec<ServiceSpec> {
    vec![
        mpeg2_to_h263(),
        mpeg2_to_mpeg1(),
        mpeg1_to_h261(),
        video_reducer(),
        jpeg_to_gif(),
        jpeg_color_reducer(),
        html_to_wml(),
        text_summarizer(),
        pcm_to_mp3(),
        mp3_to_amr(),
        video_to_keyframes(),
        video_to_text(),
        audio_to_text(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::TranscoderDescriptor;
    use qosc_media::FormatRegistry;
    use qosc_netsim::{Node, Topology};

    #[test]
    fn every_catalog_entry_validates() {
        for spec in full_catalog() {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn every_catalog_entry_resolves_against_builtins() {
        let formats = FormatRegistry::with_builtins();
        let mut topo = Topology::new();
        let node = topo.add_node(Node::unconstrained("proxy"));
        for spec in full_catalog() {
            TranscoderDescriptor::resolve(&spec, &formats, node)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn names_are_unique() {
        let catalog = full_catalog();
        for (i, a) in catalog.iter().enumerate() {
            for b in &catalog[..i] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn video_work_costs_more_than_text_work() {
        assert!(mpeg2_to_h263().cpu_mips_per_mbps > html_to_wml().cpu_mips_per_mbps);
        assert!(
            video_to_text().price.per_second > text_summarizer().price.per_second,
            "recognition is the most expensive service"
        );
    }

    #[test]
    fn paper_two_stage_image_chain_connects() {
        // jpeg-color-reducer (jpeg→jpeg) feeds jpeg-to-gif (jpeg→gif):
        // the paper's 256-color jpeg → 2-color gif two-stage example.
        let reducer = jpeg_color_reducer();
        let converter = jpeg_to_gif();
        assert_eq!(reducer.output_formats(), vec!["image/jpeg"]);
        assert_eq!(converter.input_formats(), vec!["image/jpeg"]);
    }
}
