//! Observed-QoS estimation: the grey-failure detector.
//!
//! The paper composes over *advertised* per-service QoS and assumes
//! services deliver it. Every fault the registry models natively is
//! binary — a lease expires, a breaker opens — so a service that stays
//! alive while silently delivering half its advertised throughput is
//! invisible: `is_available` says yes and sessions quietly starve.
//! This module closes that loop (ENVISION's QoE feedback, Toni et
//! al.'s measured-not-declared representation sets):
//!
//! * [`QosObservation`] — one normalized sample of how a service is
//!   *actually* performing, expressed as ratios against its advertised
//!   QoS (PPM = exactly as advertised). Normalizing at the source
//!   means the estimator never needs the advertised numbers plumbed
//!   through.
//! * [`QosEstimator`] — a deterministic per-service estimator on the
//!   virtual clock: integer EWMA (shift arithmetic, no floats) plus a
//!   windowed quantile over the last few samples. Fed from session
//!   progress ticks.
//! * [`SlaWatchdog`] — flags a service when its estimated QoS sits
//!   below `advertised × tolerance` for a dwell window. Flagging is
//!   edge-triggered: one [`SlaVerdict::Violation`] per degradation
//!   episode, so callers can probate without re-triggering every tick.
//!
//! Everything here is integer arithmetic over explicit sample streams:
//! two watchdogs fed the same observations in the same order reach the
//! same verdicts on any machine, which is what keeps the session
//! engine's digests worker-invariant.

use crate::descriptor::ServiceId;
use std::collections::BTreeMap;

/// Fixed-point unit scale: 1_000_000 = exactly as advertised.
pub const QOS_PPM: u64 = 1_000_000;

/// Hard cap on the quantile window so the estimator never allocates.
const MAX_WINDOW: usize = 32;

/// One normalized observation of a service's delivered QoS.
///
/// Both fields are ratios against the advertised value, in parts per
/// million. `throughput_ppm < QOS_PPM` means the service is delivering
/// less than it advertised; `latency_factor_ppm > QOS_PPM` means it is
/// slower than it advertised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosObservation {
    /// Delivered / advertised throughput, PPM.
    pub throughput_ppm: u64,
    /// Observed / advertised latency, PPM.
    pub latency_factor_ppm: u64,
}

impl QosObservation {
    /// A sample of a service performing exactly as advertised.
    pub fn nominal() -> QosObservation {
        QosObservation {
            throughput_ppm: QOS_PPM,
            latency_factor_ppm: QOS_PPM,
        }
    }
}

/// Tuning for [`QosEstimator`] and [`SlaWatchdog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosEstimatorConfig {
    /// EWMA smoothing as a right shift: `alpha = 1 / 2^shift`.
    pub ewma_shift: u32,
    /// Quantile window length in samples (capped at 32).
    pub window: usize,
    /// Which quantile of the window the watchdog compares, permille
    /// (250 = lower quartile: robust to a single outlier sample but
    /// still pessimistic, the right bias for an SLA check).
    pub quantile_permille: u32,
    /// Violation threshold on delivered throughput: flag when the
    /// windowed quantile drops below this ratio of advertised, PPM.
    pub throughput_tolerance_ppm: u64,
    /// Violation threshold on latency: flag when the EWMA latency
    /// factor exceeds this ratio of advertised, PPM.
    pub latency_tolerance_ppm: u64,
    /// How long the estimate must sit below tolerance before the
    /// watchdog flags, virtual µs. Absorbs one-tick blips.
    pub dwell_us: u64,
    /// Samples required before the watchdog trusts the estimator at
    /// all (a cold estimator must not flag on its first bad tick).
    pub min_samples: u32,
}

impl Default for QosEstimatorConfig {
    fn default() -> QosEstimatorConfig {
        QosEstimatorConfig {
            ewma_shift: 2,
            window: 8,
            quantile_permille: 250,
            throughput_tolerance_ppm: 800_000,
            latency_tolerance_ppm: 2_000_000,
            dwell_us: 750_000,
            min_samples: 4,
        }
    }
}

/// Deterministic per-service QoS estimator: integer EWMA + windowed
/// quantile, no floats, no allocation after construction.
#[derive(Debug, Clone)]
pub struct QosEstimator {
    /// EWMA of delivered throughput ratio, PPM. Seeded by the first
    /// sample.
    ewma_throughput_ppm: u64,
    /// EWMA of the latency factor, PPM.
    ewma_latency_ppm: u64,
    /// Ring buffer of recent throughput samples for the quantile.
    window: [u64; MAX_WINDOW],
    head: usize,
    len: usize,
    /// Total samples ever observed.
    samples: u64,
    /// `Some(t)`: the estimate has been below tolerance since `t` µs.
    below_since_us: Option<u64>,
}

impl QosEstimator {
    /// An estimator with no samples yet.
    pub fn new() -> QosEstimator {
        QosEstimator {
            ewma_throughput_ppm: QOS_PPM,
            ewma_latency_ppm: QOS_PPM,
            window: [QOS_PPM; MAX_WINDOW],
            head: 0,
            len: 0,
            samples: 0,
            below_since_us: None,
        }
    }

    /// Fold one observation in. Integer EWMA: the first sample seeds
    /// the average, later samples move it by `delta >> shift`
    /// (arithmetic shift, so the estimate converges from both sides
    /// without float rounding).
    pub fn observe(&mut self, obs: QosObservation, config: &QosEstimatorConfig) {
        let shift = config.ewma_shift.min(31);
        if self.samples == 0 {
            self.ewma_throughput_ppm = obs.throughput_ppm;
            self.ewma_latency_ppm = obs.latency_factor_ppm;
        } else {
            self.ewma_throughput_ppm =
                ewma_step(self.ewma_throughput_ppm, obs.throughput_ppm, shift);
            self.ewma_latency_ppm = ewma_step(self.ewma_latency_ppm, obs.latency_factor_ppm, shift);
        }
        let window = config.window.clamp(1, MAX_WINDOW);
        self.window[self.head] = obs.throughput_ppm;
        self.head = (self.head + 1) % window;
        self.len = (self.len + 1).min(window);
        self.samples += 1;
    }

    /// Smoothed delivered-throughput ratio, PPM.
    pub fn throughput_ppm(&self) -> u64 {
        self.ewma_throughput_ppm
    }

    /// Smoothed latency factor, PPM.
    pub fn latency_factor_ppm(&self) -> u64 {
        self.ewma_latency_ppm
    }

    /// Samples observed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The `q_permille` quantile of the throughput window (0 = min,
    /// 1000 = max). Sorts a fixed-size copy: deterministic and
    /// allocation-free.
    pub fn windowed_quantile_ppm(&self, q_permille: u32) -> u64 {
        if self.len == 0 {
            return QOS_PPM;
        }
        let mut sorted = [0u64; MAX_WINDOW];
        sorted[..self.len].copy_from_slice(&self.window[..self.len]);
        sorted[..self.len].sort_unstable();
        let rank = (q_permille as usize * (self.len - 1)).div_ceil(1000);
        sorted[rank.min(self.len - 1)]
    }

    /// Whether the current estimate violates the configured tolerance.
    /// Throughput is judged by the windowed quantile (robust to one
    /// outlier), latency by the EWMA.
    pub fn violating(&self, config: &QosEstimatorConfig) -> bool {
        if self.samples < config.min_samples as u64 {
            return false;
        }
        self.windowed_quantile_ppm(config.quantile_permille) < config.throughput_tolerance_ppm
            || self.ewma_latency_ppm > config.latency_tolerance_ppm
    }
}

impl Default for QosEstimator {
    fn default() -> QosEstimator {
        QosEstimator::new()
    }
}

/// One EWMA update: `ewma += (sample - ewma) >> shift` in signed
/// arithmetic (arithmetic shift rounds toward −∞, so a degraded sample
/// always moves the estimate and the update is exactly reversible in
/// tests).
fn ewma_step(ewma: u64, sample: u64, shift: u32) -> u64 {
    let delta = (sample as i128 - ewma as i128) >> shift;
    u64::try_from((ewma as i128 + delta).max(0)).unwrap_or(0)
}

/// The watchdog's answer to one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlaVerdict {
    /// The sample itself met tolerance (usable as a half-open probe
    /// success for a probated service).
    Healthy,
    /// Below tolerance, but inside the dwell window (or already
    /// flagged): no action yet.
    Degraded,
    /// The estimate has been below tolerance for a full dwell window
    /// and this service was not yet flagged — the edge on which the
    /// caller should probate. Carries the smoothed throughput estimate
    /// for the effective-QoS blend.
    Violation {
        /// EWMA delivered-throughput ratio at the moment of flagging.
        observed_ppm: u64,
    },
}

/// SLA watchdog over a fleet: one [`QosEstimator`] per service, flag
/// state, and the dwell logic. Iteration is `BTreeMap`-ordered, so any
/// walk over the watchdog is deterministic.
#[derive(Debug, Clone, Default)]
pub struct SlaWatchdog {
    config: QosEstimatorConfig,
    estimators: BTreeMap<ServiceId, QosEstimator>,
}

impl SlaWatchdog {
    /// A watchdog with the given tuning.
    pub fn new(config: QosEstimatorConfig) -> SlaWatchdog {
        SlaWatchdog {
            config,
            estimators: BTreeMap::new(),
        }
    }

    /// The active tuning.
    pub fn config(&self) -> &QosEstimatorConfig {
        &self.config
    }

    /// Feed one observation for `service` at virtual time `now_us` and
    /// judge it. [`SlaVerdict::Violation`] fires at most once per
    /// degradation episode; [`Self::clear`] re-arms it.
    pub fn observe(&mut self, service: ServiceId, obs: QosObservation, now_us: u64) -> SlaVerdict {
        let est = self.estimators.entry(service).or_default();
        est.observe(obs, &self.config);
        let sample_healthy = obs.throughput_ppm >= self.config.throughput_tolerance_ppm
            && obs.latency_factor_ppm <= self.config.latency_tolerance_ppm;
        if est.violating(&self.config) {
            match est.below_since_us {
                None => {
                    est.below_since_us = Some(now_us);
                    SlaVerdict::Degraded
                }
                Some(u64::MAX) => SlaVerdict::Degraded,
                Some(since) if now_us.saturating_sub(since) >= self.config.dwell_us => {
                    // Flagged: pin `below_since_us` so the episode
                    // reports Violation exactly once (clear() re-arms).
                    est.below_since_us = Some(u64::MAX);
                    SlaVerdict::Violation {
                        observed_ppm: est.throughput_ppm(),
                    }
                }
                Some(_) => SlaVerdict::Degraded,
            }
        } else {
            if est.below_since_us != Some(u64::MAX) {
                // A recovered estimate inside the dwell window re-arms
                // immediately; a flagged service stays flagged until
                // the caller clears it (probation owns recovery).
                est.below_since_us = None;
            }
            if sample_healthy {
                SlaVerdict::Healthy
            } else {
                SlaVerdict::Degraded
            }
        }
    }

    /// Whether `service` is currently flagged (a violation fired and
    /// has not been cleared).
    pub fn is_flagged(&self, service: ServiceId) -> bool {
        self.estimators
            .get(&service)
            .map(|e| e.below_since_us == Some(u64::MAX))
            .unwrap_or(false)
    }

    /// Drop the flag and reset `service`'s estimator — called when
    /// probation clears so the next episode starts cold.
    pub fn clear(&mut self, service: ServiceId) {
        self.estimators.remove(&service);
    }

    /// The current smoothed throughput estimate for `service`, if any
    /// samples exist.
    pub fn observed_ppm(&self, service: ServiceId) -> Option<u64> {
        self.estimators.get(&service).map(|e| e.throughput_ppm())
    }

    /// Flagged services in id order.
    pub fn flagged(&self) -> impl Iterator<Item = ServiceId> + '_ {
        self.estimators
            .iter()
            .filter(|(_, e)| e.below_since_us == Some(u64::MAX))
            .map(|(&id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sagging(ppm: u64) -> QosObservation {
        QosObservation {
            throughput_ppm: ppm,
            latency_factor_ppm: QOS_PPM,
        }
    }

    #[test]
    fn ewma_converges_toward_the_sample_stream() {
        let config = QosEstimatorConfig::default();
        let mut est = QosEstimator::new();
        est.observe(sagging(QOS_PPM), &config);
        for _ in 0..64 {
            est.observe(sagging(400_000), &config);
        }
        assert!(
            est.throughput_ppm() <= 401_000,
            "EWMA must converge: {}",
            est.throughput_ppm()
        );
        for _ in 0..64 {
            est.observe(sagging(QOS_PPM), &config);
        }
        assert!(est.throughput_ppm() >= 999_000, "and converge back up");
    }

    #[test]
    fn quantile_is_robust_to_one_outlier() {
        let config = QosEstimatorConfig::default();
        let mut est = QosEstimator::new();
        for _ in 0..7 {
            est.observe(sagging(QOS_PPM), &config);
        }
        est.observe(sagging(0), &config);
        // Lower quartile of [0, 1M × 7] is still 1M: one bad sample
        // does not trip the tolerance check.
        assert_eq!(est.windowed_quantile_ppm(250), QOS_PPM);
        assert_eq!(est.windowed_quantile_ppm(0), 0, "min still sees it");
    }

    #[test]
    fn watchdog_flags_after_dwell_and_only_once() {
        let config = QosEstimatorConfig {
            dwell_us: 1_000,
            min_samples: 2,
            ..QosEstimatorConfig::default()
        };
        let mut dog = SlaWatchdog::new(config);
        let id = ServiceId(0);
        let mut violations = 0;
        for tick in 0..20u64 {
            let verdict = dog.observe(id, sagging(300_000), tick * 250);
            if let SlaVerdict::Violation { observed_ppm } = verdict {
                violations += 1;
                assert!(observed_ppm < 800_000);
                assert!(
                    tick * 250 >= 1_000,
                    "dwell must elapse before flagging (tick {tick})"
                );
            }
        }
        assert_eq!(violations, 1, "edge-triggered: one violation per episode");
        assert!(dog.is_flagged(id));
        // Healthy samples do not unflag by themselves…
        assert_eq!(
            dog.observe(id, sagging(QOS_PPM), 10_000),
            SlaVerdict::Degraded
        );
        // …until enough healthy samples pull the estimator back over
        // tolerance; then the verdict turns Healthy while the flag
        // stands (probation owns recovery).
        for t in 0..16u64 {
            dog.observe(id, sagging(QOS_PPM), 11_000 + t * 250);
        }
        assert_eq!(
            dog.observe(id, sagging(QOS_PPM), 20_000),
            SlaVerdict::Healthy
        );
        assert!(dog.is_flagged(id), "flag outlives recovery until cleared");
        dog.clear(id);
        assert!(!dog.is_flagged(id));
    }

    #[test]
    fn cold_estimator_never_flags() {
        let config = QosEstimatorConfig {
            dwell_us: 0,
            ..QosEstimatorConfig::default()
        };
        let mut dog = SlaWatchdog::new(config);
        let id = ServiceId(7);
        for tick in 0..3u64 {
            assert_ne!(
                dog.observe(id, sagging(0), tick),
                SlaVerdict::Violation { observed_ppm: 0 },
                "min_samples gates the first ticks"
            );
        }
    }

    #[test]
    fn latency_drift_alone_trips_the_watchdog() {
        let config = QosEstimatorConfig {
            dwell_us: 0,
            min_samples: 1,
            ..QosEstimatorConfig::default()
        };
        let mut dog = SlaWatchdog::new(config);
        let id = ServiceId(3);
        let slow = QosObservation {
            throughput_ppm: QOS_PPM,
            latency_factor_ppm: 3_000_000,
        };
        let mut flagged = false;
        for tick in 0..8u64 {
            if matches!(dog.observe(id, slow, tick), SlaVerdict::Violation { .. }) {
                flagged = true;
            }
        }
        assert!(
            flagged,
            "a 3x latency sag must flag even at full throughput"
        );
    }

    #[test]
    fn identical_streams_reach_identical_verdicts() {
        let config = QosEstimatorConfig::default();
        let stream: Vec<QosObservation> = (0..40)
            .map(|i| sagging(if i % 3 == 0 { 500_000 } else { 700_000 }))
            .collect();
        let mut a = SlaWatchdog::new(config);
        let mut b = SlaWatchdog::new(config);
        let id = ServiceId(1);
        for (i, obs) in stream.iter().enumerate() {
            let va = a.observe(id, *obs, i as u64 * 250);
            let vb = b.observe(id, *obs, i as u64 * 250);
            assert_eq!(va, vb, "sample {i}");
        }
        assert_eq!(a.observed_ppm(id), b.observed_ppm(id));
    }
}
