//! The sharded registry: per-shard event logs, epochs, and summary
//! frontiers for two-level composition.
//!
//! Klein et al. decompose QoS-aware composition into per-partition
//! sub-problems stitched together through aggregated QoS summaries.
//! [`ShardedServiceRegistry`] is the in-process version of that
//! partitioning: it wraps a single flat [`ServiceRegistry`] (which
//! remains the ground truth for service ids, registration order, and
//! availability — so flat consumers like the session engine keep
//! working unchanged through [`flat`](ShardedServiceRegistry::flat)),
//! and overlays:
//!
//! * a **shard assignment** per service, fixed at registration by a
//!   [`ShardRouter`] keyed on the service's primary input format — so
//!   a format cluster's services co-locate in one shard,
//! * a **per-shard event log** with its own monotone epoch and its own
//!   compaction watermark, mirroring the flat log's semantics: the
//!   shard epoch moves exactly when a mutation touches a service of
//!   that shard, which is what lets cache revalidation and incremental
//!   graph maintenance stay O(touched shards) instead of O(registry),
//! * a **summary frontier** per shard: for every
//!   `(input format, output format, axis set)` a shard's available
//!   services can convert between, the per-axis maximum ("hull top")
//!   of the advertised output domains, maintained incrementally on
//!   every mutation. Scoring a hull top with the requesting user's
//!   satisfaction profile yields an *admissible* upper bound on the
//!   satisfaction any service of the shard can contribute on that hop:
//!   satisfaction functions are monotone per axis, upstream capping
//!   only shrinks domains, and probation penalties only multiply
//!   satisfaction down — so the bound can only overestimate, never
//!   underestimate. Axis sets are kept apart because the profile
//!   combiners skip absent axes: merging a single-axis hull into a
//!   wider one could *lower* its score and break admissibility.
//!
//! Every mutation funnels through the wrapper, which forwards to the
//! flat registry and then distributes the newly recorded events to the
//! owning shards, so `sum(shard epochs) == flat epoch` always holds.

use crate::descriptor::{ServiceId, TranscoderDescriptor};
use crate::registry::{ProbationConfig, QuarantineConfig, RegistryEvent, ServiceRegistry};
use crate::Result;
use qosc_media::{DomainVector, FormatId, ParamVector};
use qosc_netsim::SimTime;
use std::collections::{BTreeMap, HashMap};

/// Deterministic shard assignment for a service descriptor.
///
/// Routes by the service's *primary* (first advertised) input format,
/// FNV-1a hashed modulo the shard count: services of one format
/// cluster land in one shard, which is what makes shard summaries
/// discriminating and shard expansion selective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shard_count: u32,
}

impl ShardRouter {
    /// A router over `shard_count` shards (minimum 1).
    pub fn new(shard_count: u32) -> ShardRouter {
        ShardRouter {
            shard_count: shard_count.max(1),
        }
    }

    /// Number of shards routed across.
    pub fn shard_count(&self) -> u32 {
        self.shard_count
    }

    /// The shard `descriptor` belongs to. Pure in the descriptor, so
    /// the assignment is identical however and whenever the service
    /// registers.
    pub fn route(&self, descriptor: &TranscoderDescriptor) -> u32 {
        let primary = descriptor
            .conversions
            .first()
            .map(|c| c.input.index() as u64)
            .unwrap_or(0);
        (fnv1a_u64(primary) % u64::from(self.shard_count)) as u32
    }
}

/// FNV-1a over the little-endian bytes of `x` — the same hash family
/// the scorecards use for digests, chosen here for determinism, not
/// speed.
fn fnv1a_u64(x: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in x.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Frontier key: one `(input format, output format, axis set)` class
/// of conversions. The axis set is a bitmask over [`qosc_media::Axis`]
/// indices; see the module docs for why heterogeneous axis sets are
/// never merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PairKey {
    /// Accepted input format.
    pub input: FormatId,
    /// Produced output format.
    pub output: FormatId,
    /// Bitmask of [`qosc_media::Axis::index`] values the output
    /// domains of this class cover.
    pub axes: u8,
}

/// The axis-set bitmask of a domain vector.
fn axis_mask(domain: &DomainVector) -> u8 {
    domain
        .axes()
        .fold(0u8, |mask, axis| mask | (1 << axis.index()))
}

/// One frontier group: the available services contributing conversions
/// under a [`PairKey`], each with its own per-axis top, plus the
/// cached hull top (per-axis maximum over members).
#[derive(Debug, Clone, Default)]
struct GroupState {
    members: Vec<(ServiceId, ParamVector)>,
    top: ParamVector,
}

impl GroupState {
    fn recompute_top(&mut self) {
        let mut top = ParamVector::new();
        for (_, member_top) in &self.members {
            merge_max(&mut top, member_top);
        }
        self.top = top;
    }
}

/// Per-axis maximum merge: `into[a] = max(into[a], from[a])` for every
/// axis present in `from`.
fn merge_max(into: &mut ParamVector, from: &ParamVector) {
    for (axis, value) in from.iter() {
        match into.get(axis) {
            Some(existing) if existing >= value => {}
            _ => {
                into.set(axis, value);
            }
        }
    }
}

/// One shard's overlay state: its slice of the event log and its
/// summary frontier.
#[derive(Debug, Clone, Default)]
struct ShardState {
    events: Vec<RegistryEvent>,
    /// Compaction watermark, mirroring
    /// [`ServiceRegistry::compacted_epoch`] semantics per shard.
    compacted: u64,
    /// `(pair, axis set) → hull` summary frontier over *available*
    /// members.
    frontier: BTreeMap<PairKey, GroupState>,
    /// Reverse index: which frontier keys each available service
    /// currently contributes to — makes removal O(own keys), not
    /// O(frontier).
    contributions: HashMap<ServiceId, Vec<PairKey>>,
}

/// A flat [`ServiceRegistry`] partitioned into N shards with per-shard
/// epochs, event logs, and summary frontiers. See the module docs.
#[derive(Debug, Clone)]
pub struct ShardedServiceRegistry {
    flat: ServiceRegistry,
    router: ShardRouter,
    /// Shard of each service, indexed by `ServiceId::index` — fixed at
    /// registration, valid for dead services too (their life-cycle
    /// events still belong to their shard).
    shard_of: Vec<u32>,
    shards: Vec<ShardState>,
}

impl ShardedServiceRegistry {
    /// An empty sharded registry over `shard_count` shards.
    pub fn new(shard_count: u32) -> ShardedServiceRegistry {
        let router = ShardRouter::new(shard_count);
        ShardedServiceRegistry {
            flat: ServiceRegistry::new(),
            router,
            shard_of: Vec::new(),
            shards: (0..router.shard_count())
                .map(|_| ShardState::default())
                .collect(),
        }
    }

    /// The flat ground-truth view: ids, registration order,
    /// availability, penalties — everything flat consumers (graph
    /// build, selection, the session engine) already read. Immutable:
    /// mutations must go through the wrapper so shard logs stay
    /// coherent.
    pub fn flat(&self) -> &ServiceRegistry {
        &self.flat
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.router.shard_count()
    }

    /// The shard `id` was routed to at registration.
    pub fn shard_of(&self, id: ServiceId) -> u32 {
        self.shard_of[id.index()]
    }

    /// The router in use.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    // ----- mutations (forward to flat, then distribute) -----

    /// See [`ServiceRegistry::register`].
    pub fn register(
        &mut self,
        descriptor: TranscoderDescriptor,
        now: SimTime,
        ttl_us: u64,
    ) -> ServiceId {
        let shard = self.router.route(&descriptor);
        let pre = self.flat.epoch();
        let id = self.flat.register(descriptor, now, ttl_us);
        debug_assert_eq!(id.index(), self.shard_of.len());
        self.shard_of.push(shard);
        self.distribute(pre);
        id
    }

    /// See [`ServiceRegistry::register_static`].
    pub fn register_static(&mut self, descriptor: TranscoderDescriptor) -> ServiceId {
        self.register(descriptor, SimTime::ZERO, u64::MAX / 2)
    }

    /// See [`ServiceRegistry::renew`].
    pub fn renew(&mut self, id: ServiceId, now: SimTime, ttl_us: u64) -> Result<()> {
        let pre = self.flat.epoch();
        let out = self.flat.renew(id, now, ttl_us);
        self.distribute(pre);
        out
    }

    /// See [`ServiceRegistry::deregister`].
    pub fn deregister(&mut self, id: ServiceId) -> Result<()> {
        let pre = self.flat.epoch();
        let out = self.flat.deregister(id);
        self.distribute(pre);
        out
    }

    /// See [`ServiceRegistry::expire_leases`].
    pub fn expire_leases(&mut self, now: SimTime) -> Vec<ServiceId> {
        let pre = self.flat.epoch();
        let out = self.flat.expire_leases(now);
        self.distribute(pre);
        out
    }

    /// See [`ServiceRegistry::report_failure`].
    pub fn report_failure(&mut self, id: ServiceId, now: SimTime) -> Result<bool> {
        let pre = self.flat.epoch();
        let out = self.flat.report_failure(id, now);
        self.distribute(pre);
        out
    }

    /// See [`ServiceRegistry::report_success`]. Never records events.
    pub fn report_success(&mut self, id: ServiceId) -> Result<()> {
        self.flat.report_success(id)
    }

    /// See [`ServiceRegistry::release_quarantines`].
    pub fn release_quarantines(&mut self, now: SimTime) -> Vec<ServiceId> {
        let pre = self.flat.epoch();
        let out = self.flat.release_quarantines(now);
        self.distribute(pre);
        out
    }

    /// See [`ServiceRegistry::probate`].
    pub fn probate(&mut self, id: ServiceId, observed_ppm: u64, now: SimTime) -> bool {
        let pre = self.flat.epoch();
        let out = self.flat.probate(id, observed_ppm, now);
        self.distribute(pre);
        out
    }

    /// See [`ServiceRegistry::probe_success`].
    pub fn probe_success(&mut self, id: ServiceId, now: SimTime) -> bool {
        let pre = self.flat.epoch();
        let out = self.flat.probe_success(id, now);
        self.distribute(pre);
        out
    }

    /// See [`ServiceRegistry::set_quarantine_config`].
    pub fn set_quarantine_config(&mut self, config: QuarantineConfig) {
        self.flat.set_quarantine_config(config);
    }

    /// See [`ServiceRegistry::set_probation_config`].
    pub fn set_probation_config(&mut self, config: ProbationConfig) {
        self.flat.set_probation_config(config);
    }

    // ----- per-shard epochs, logs, compaction -----

    /// The shard's monotone epoch: life-cycle events recorded against
    /// services of shard `shard` (including compacted ones). Mutations
    /// in other shards never move it — the property per-shard cache
    /// stamps rely on.
    pub fn shard_epoch(&self, shard: u32) -> u64 {
        let s = &self.shards[shard as usize];
        s.compacted + s.events.len() as u64
    }

    /// `(shard, epoch)` for every shard, in shard order.
    pub fn shard_epochs(&self) -> Vec<(u32, u64)> {
        (0..self.shard_count())
            .map(|s| (s, self.shard_epoch(s)))
            .collect()
    }

    /// The shard's events since `epoch` (a value previously returned
    /// by [`Self::shard_epoch`]), oldest first — `None` when that tail
    /// was compacted away, mirroring
    /// [`ServiceRegistry::events_since`].
    pub fn shard_events_since(&self, shard: u32, epoch: u64) -> Option<&[RegistryEvent]> {
        let s = &self.shards[shard as usize];
        if epoch < s.compacted {
            return None;
        }
        let start = ((epoch - s.compacted) as usize).min(s.events.len());
        Some(&s.events[start..])
    }

    /// Discard shard events older than `epoch` (shard-epoch scale).
    /// Returns the number discarded. Mirrors
    /// [`ServiceRegistry::compact_events_below`] per shard.
    pub fn compact_shard_events_below(&mut self, shard: u32, epoch: u64) -> usize {
        let top = self.shard_epoch(shard);
        let s = &mut self.shards[shard as usize];
        let target = epoch.min(top);
        if target <= s.compacted {
            return 0;
        }
        let drop = (target - s.compacted) as usize;
        s.events.drain(..drop);
        s.compacted = target;
        drop
    }

    /// Compact the underlying flat log (see
    /// [`ServiceRegistry::compact_events_below`]). Shard logs are
    /// independent and unaffected.
    pub fn compact_flat_events_below(&mut self, epoch: u64) -> usize {
        self.flat.compact_events_below(epoch)
    }

    // ----- summary frontier -----

    /// The shard's summary frontier, in [`PairKey`] order: for each
    /// `(input, output, axis set)` class its hull top — the per-axis
    /// maximum of the advertised output domains over the shard's
    /// *available* services. Scoring a hull top with a satisfaction
    /// profile upper-bounds the satisfaction any hop through this
    /// shard and pair can contribute.
    pub fn summaries(&self, shard: u32) -> impl Iterator<Item = (PairKey, ParamVector)> + '_ {
        self.shards[shard as usize]
            .frontier
            .iter()
            .map(|(key, group)| (*key, group.top))
    }

    /// The incrementally maintained frontier as a vector — test
    /// support for comparing against [`Self::frontier_from_scratch`].
    pub fn frontier(&self, shard: u32) -> Vec<(PairKey, ParamVector)> {
        self.summaries(shard).collect()
    }

    /// Recompute the shard's frontier from current registry state,
    /// ignoring the incremental bookkeeping — the oracle the proptest
    /// compares the incremental path against.
    pub fn frontier_from_scratch(&self, shard: u32) -> Vec<(PairKey, ParamVector)> {
        let mut frontier: BTreeMap<PairKey, ParamVector> = BTreeMap::new();
        for (id, descriptor) in self.flat.live_services() {
            if self.shard_of[id.index()] != shard || !self.flat.is_available(id) {
                continue;
            }
            for conversion in &descriptor.conversions {
                let key = PairKey {
                    input: conversion.input,
                    output: conversion.output,
                    axes: axis_mask(&conversion.output_domain),
                };
                let top = conversion.output_domain.top();
                merge_max(frontier.entry(key).or_default(), &top);
            }
        }
        frontier.into_iter().collect()
    }

    /// Per-service include flags for scoped graph construction:
    /// `filter[id] == true` iff the service's shard is marked in
    /// `expanded` (indexed by shard). Ids beyond the flag vector are
    /// excluded.
    pub fn scope_filter(&self, expanded: &[bool]) -> Vec<bool> {
        self.shard_of
            .iter()
            .map(|&s| expanded.get(s as usize).copied().unwrap_or(false))
            .collect()
    }

    /// The sorted, deduplicated shards of `ids` — the "touched shards"
    /// a cached plan's per-shard stamps cover.
    pub fn touched_shards<I: IntoIterator<Item = ServiceId>>(&self, ids: I) -> Vec<u32> {
        let mut shards: Vec<u32> = ids.into_iter().map(|id| self.shard_of(id)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    // ----- internals -----

    /// Distribute every flat event recorded since `pre_epoch` to its
    /// owning shard: append to the shard log and update the shard's
    /// frontier.
    fn distribute(&mut self, pre_epoch: u64) {
        let tail: Vec<RegistryEvent> = self
            .flat
            .events_since(pre_epoch)
            .expect("the pre-mutation epoch was captured before any compaction")
            .to_vec();
        for event in tail {
            let id = event.service();
            let shard = self.shard_of[id.index()] as usize;
            match event {
                RegistryEvent::Registered(_) | RegistryEvent::Reinstated(_) => {
                    // `release_quarantines` can reinstate a service
                    // whose lease already expired; the availability
                    // guard keeps such ghosts out of the frontier.
                    if self.flat.is_available(id) {
                        let descriptor = self.flat.get(id).expect("available implies live").clone();
                        add_contributions(&mut self.shards[shard], id, &descriptor);
                    }
                }
                RegistryEvent::Expired(_)
                | RegistryEvent::Deregistered(_)
                | RegistryEvent::Quarantined(_) => {
                    remove_contributions(&mut self.shards[shard], id);
                }
                RegistryEvent::Renewed(_)
                | RegistryEvent::Probated(_)
                | RegistryEvent::ProbationCleared(_) => {
                    // Renewal changes no advertised capability.
                    // Probation multiplies satisfaction by a factor
                    // ≤ 1, so the unpenalized hull top stays an upper
                    // bound — the frontier is unchanged.
                }
            }
            self.shards[shard].events.push(event);
        }
    }
}

/// Add `id`'s conversions to the shard frontier. Idempotent: an
/// already-contributing service is left untouched.
fn add_contributions(shard: &mut ShardState, id: ServiceId, descriptor: &TranscoderDescriptor) {
    if shard.contributions.contains_key(&id) {
        return;
    }
    // Collapse the service's conversions to one per-key top first —
    // a service may advertise several conversions in one class.
    let mut own: BTreeMap<PairKey, ParamVector> = BTreeMap::new();
    for conversion in &descriptor.conversions {
        let key = PairKey {
            input: conversion.input,
            output: conversion.output,
            axes: axis_mask(&conversion.output_domain),
        };
        let top = conversion.output_domain.top();
        merge_max(own.entry(key).or_default(), &top);
    }
    let keys: Vec<PairKey> = own.keys().copied().collect();
    for (key, top) in own {
        let group = shard.frontier.entry(key).or_default();
        group.members.push((id, top));
        merge_max(&mut group.top, &top);
    }
    shard.contributions.insert(id, keys);
}

/// Remove `id`'s contributions from the shard frontier, recomputing
/// each affected group's hull top from the remaining members.
/// Idempotent: removing a non-contributor is a no-op.
fn remove_contributions(shard: &mut ShardState, id: ServiceId) {
    let Some(keys) = shard.contributions.remove(&id) else {
        return;
    };
    for key in keys {
        let remove_group = {
            let group = shard
                .frontier
                .get_mut(&key)
                .expect("contribution index and frontier stay in sync");
            group.members.retain(|&(member, _)| member != id);
            if group.members.is_empty() {
                true
            } else {
                group.recompute_top();
                false
            }
        };
        if remove_group {
            shard.frontier.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::{Axis, AxisDomain, DomainVector, FormatRegistry, MediaKind};
    use qosc_netsim::{Node, Topology};
    use qosc_profiles::{ConversionSpec, ServiceSpec};

    struct Fixture {
        formats: FormatRegistry,
        node: qosc_netsim::NodeId,
    }

    fn fixture() -> Fixture {
        let mut formats = FormatRegistry::new();
        for name in ["a", "b", "c", "d"] {
            formats.register_abstract(name, MediaKind::Video);
        }
        let mut topo = Topology::new();
        let node = topo.add_node(Node::unconstrained("host"));
        Fixture { formats, node }
    }

    fn descriptor(
        f: &Fixture,
        name: &str,
        input: &str,
        output: &str,
        fps: f64,
    ) -> TranscoderDescriptor {
        let mut domain = DomainVector::new();
        domain.set(
            Axis::FrameRate,
            AxisDomain::Continuous { min: 1.0, max: fps },
        );
        let spec = ServiceSpec::new(name, vec![ConversionSpec::new(input, output, domain)]);
        TranscoderDescriptor::resolve(&spec, &f.formats, f.node).unwrap()
    }

    #[test]
    fn routing_is_deterministic_and_format_clustered() {
        let f = fixture();
        let router = ShardRouter::new(4);
        let d1 = descriptor(&f, "s1", "a", "b", 30.0);
        let d2 = descriptor(&f, "s2", "a", "c", 25.0);
        assert_eq!(
            router.route(&d1),
            router.route(&d2),
            "same primary input format co-locates"
        );
        assert_eq!(router.route(&d1), router.route(&d1));
        assert!(router.route(&d1) < 4);
        assert_eq!(ShardRouter::new(0).shard_count(), 1, "clamped to one shard");
    }

    #[test]
    fn shard_epochs_sum_to_the_flat_epoch() {
        let f = fixture();
        let mut reg = ShardedServiceRegistry::new(4);
        let a = reg.register(descriptor(&f, "s1", "a", "b", 30.0), SimTime::ZERO, 1_000);
        let b = reg.register_static(descriptor(&f, "s2", "b", "c", 30.0));
        reg.renew(a, SimTime(500), 1_000).unwrap();
        reg.expire_leases(SimTime(5_000));
        reg.deregister(b).unwrap();
        assert!(!reg.flat().is_live(a));
        let sum: u64 = reg.shard_epochs().iter().map(|&(_, e)| e).sum();
        assert_eq!(sum, reg.flat().epoch());
        // Every event landed in the owner's log.
        let sa = reg.shard_of(a);
        assert_eq!(
            reg.shard_events_since(sa, 0).unwrap(),
            &[
                RegistryEvent::Registered(a),
                RegistryEvent::Renewed(a),
                RegistryEvent::Expired(a),
            ]
        );
    }

    #[test]
    fn mutations_in_one_shard_leave_other_shard_epochs_alone() {
        let f = fixture();
        let mut reg = ShardedServiceRegistry::new(8);
        let a = reg.register_static(descriptor(&f, "s1", "a", "b", 30.0));
        let b = reg.register_static(descriptor(&f, "s2", "b", "c", 30.0));
        let (sa, sb) = (reg.shard_of(a), reg.shard_of(b));
        assert_ne!(sa, sb, "fixture formats land in distinct shards");
        let before = reg.shard_epoch(sb);
        reg.set_quarantine_config(QuarantineConfig {
            failure_threshold: 1,
            cooldown_us: 1_000,
        });
        assert!(reg.report_failure(a, SimTime(10)).unwrap());
        reg.release_quarantines(SimTime(2_000));
        assert_eq!(
            reg.shard_epoch(sb),
            before,
            "churn in shard {sa} must not move shard {sb}'s epoch"
        );
        assert!(reg.shard_epoch(sa) > 0);
    }

    #[test]
    fn frontier_tracks_availability_incrementally() {
        let f = fixture();
        let mut reg = ShardedServiceRegistry::new(1);
        reg.set_quarantine_config(QuarantineConfig {
            failure_threshold: 1,
            cooldown_us: 1_000,
        });
        let a = reg.register_static(descriptor(&f, "s1", "a", "b", 30.0));
        let _b = reg.register_static(descriptor(&f, "s2", "a", "b", 25.0));

        let hull = |reg: &ShardedServiceRegistry| -> f64 {
            let frontier = reg.frontier(0);
            assert_eq!(frontier.len(), 1, "one (a, b, {{frame_rate}}) class");
            frontier[0].1.get(Axis::FrameRate).unwrap()
        };
        assert_eq!(hull(&reg), 30.0, "hull top is the best member");
        assert_eq!(reg.frontier(0), reg.frontier_from_scratch(0));

        // Quarantining the best member drops the hull to the runner-up.
        assert!(reg.report_failure(a, SimTime(10)).unwrap());
        assert_eq!(hull(&reg), 25.0);
        assert_eq!(reg.frontier(0), reg.frontier_from_scratch(0));

        // Reinstatement restores it.
        reg.release_quarantines(SimTime(2_000));
        assert_eq!(hull(&reg), 30.0);
        assert_eq!(reg.frontier(0), reg.frontier_from_scratch(0));

        // Probation leaves the frontier untouched (penalties only
        // shrink satisfaction, the hull stays admissible).
        assert!(reg.probate(a, 100_000, SimTime(3_000)));
        assert_eq!(hull(&reg), 30.0);
        assert_eq!(reg.frontier(0), reg.frontier_from_scratch(0));

        // Deregistering both empties the frontier.
        reg.deregister(a).unwrap();
        reg.deregister(_b).unwrap();
        assert!(reg.frontier(0).is_empty());
        assert_eq!(reg.frontier(0), reg.frontier_from_scratch(0));
    }

    #[test]
    fn heterogeneous_axis_sets_stay_in_separate_groups() {
        let f = fixture();
        let mut reg = ShardedServiceRegistry::new(1);
        // Same (input, output) pair, different axis sets.
        let narrow = descriptor(&f, "narrow", "a", "b", 30.0);
        let mut wide_domain = DomainVector::new();
        wide_domain.set(
            Axis::FrameRate,
            AxisDomain::Continuous {
                min: 1.0,
                max: 20.0,
            },
        );
        wide_domain.set(Axis::ColorDepth, AxisDomain::Discrete(vec![8.0, 24.0]));
        let wide = TranscoderDescriptor::resolve(
            &ServiceSpec::new("wide", vec![ConversionSpec::new("a", "b", wide_domain)]),
            &f.formats,
            f.node,
        )
        .unwrap();
        reg.register_static(narrow);
        reg.register_static(wide);
        let frontier = reg.frontier(0);
        assert_eq!(
            frontier.len(),
            2,
            "merging axis sets could lower a member's score: {frontier:?}"
        );
        assert_eq!(reg.frontier(0), reg.frontier_from_scratch(0));
    }

    #[test]
    fn shard_log_compaction_mirrors_flat_semantics() {
        let f = fixture();
        let mut reg = ShardedServiceRegistry::new(2);
        let a = reg.register_static(descriptor(&f, "s1", "a", "b", 30.0));
        reg.renew(a, SimTime(10), 1_000).unwrap();
        reg.renew(a, SimTime(20), 1_000).unwrap();
        let s = reg.shard_of(a);
        assert_eq!(reg.shard_epoch(s), 3);

        assert_eq!(reg.compact_shard_events_below(s, 2), 2);
        assert_eq!(reg.shard_epoch(s), 3, "compaction never moves the epoch");
        assert_eq!(
            reg.shard_events_since(s, 2).unwrap(),
            &[RegistryEvent::Renewed(a)]
        );
        assert_eq!(reg.shard_events_since(s, 1), None, "tail lost");
        assert_eq!(reg.compact_shard_events_below(s, 1), 0, "idempotent");
        // The flat log is independent.
        assert_eq!(reg.flat().events_since(0).unwrap().len(), 3);
        assert_eq!(reg.compact_flat_events_below(1), 1);
        assert_eq!(reg.flat().events_since(0), None);
    }

    #[test]
    fn scope_filter_and_touched_shards_follow_assignment() {
        let f = fixture();
        let mut reg = ShardedServiceRegistry::new(8);
        let a = reg.register_static(descriptor(&f, "s1", "a", "b", 30.0));
        let b = reg.register_static(descriptor(&f, "s2", "b", "c", 30.0));
        let (sa, sb) = (reg.shard_of(a), reg.shard_of(b));
        let mut expanded = vec![false; 8];
        expanded[sa as usize] = true;
        let filter = reg.scope_filter(&expanded);
        assert!(filter[a.index()]);
        assert!(!filter[b.index()]);
        let mut want = vec![sa, sb];
        want.sort_unstable();
        want.dedup();
        assert_eq!(reg.touched_shards([a, b, a]), want);
    }
}
