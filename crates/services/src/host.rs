//! Host resource admission.
//!
//! "Other factors that can affect the user's satisfaction are the
//! required amount of memory and computing power to carry out the
//! trans-coding operation. Each of these two factors is a function of
//! the amount of input data to the trans-coding service." — Section 4.3.
//!
//! [`HostResources`] tracks per-node CPU and memory commitments against
//! the capacities declared in the topology, and admits or rejects a
//! trans-coding stage accordingly.

use crate::{Result, ServiceError};
use qosc_netsim::{NodeId, Topology};
use std::collections::HashMap;

/// Handle to one admitted workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AdmissionId(u64);

#[derive(Debug, Clone, Copy, Default)]
struct Usage {
    cpu_mips: f64,
    memory_bytes: f64,
}

/// Per-node resource ledger.
#[derive(Debug, Clone, Default)]
pub struct HostResources {
    usage: HashMap<NodeId, Usage>,
    admissions: HashMap<AdmissionId, (NodeId, Usage)>,
    next_id: u64,
}

impl HostResources {
    /// An empty ledger.
    pub fn new() -> HostResources {
        HostResources::default()
    }

    /// CPU (MIPS) currently committed on `node`.
    pub fn cpu_used(&self, node: NodeId) -> f64 {
        self.usage.get(&node).map(|u| u.cpu_mips).unwrap_or(0.0)
    }

    /// Memory (bytes) currently committed on `node`.
    pub fn memory_used(&self, node: NodeId) -> f64 {
        self.usage.get(&node).map(|u| u.memory_bytes).unwrap_or(0.0)
    }

    /// CPU headroom of `node` given the topology's declared capacity.
    pub fn cpu_headroom(&self, topology: &Topology, node: NodeId) -> f64 {
        let capacity = topology.node(node).map(|n| n.cpu_mips).unwrap_or(0.0);
        (capacity - self.cpu_used(node)).max(0.0)
    }

    /// Memory headroom of `node`.
    pub fn memory_headroom(&self, topology: &Topology, node: NodeId) -> f64 {
        let capacity = topology.node(node).map(|n| n.memory_bytes).unwrap_or(0.0);
        (capacity - self.memory_used(node)).max(0.0)
    }

    /// Whether `node` could admit the given load right now.
    pub fn can_admit(
        &self,
        topology: &Topology,
        node: NodeId,
        cpu_mips: f64,
        memory_bytes: f64,
    ) -> bool {
        cpu_mips <= self.cpu_headroom(topology, node) * (1.0 + 1e-9) + 1e-9
            && memory_bytes <= self.memory_headroom(topology, node) * (1.0 + 1e-9) + 1e-9
    }

    /// Admit a workload on `node`, or fail without side effects.
    pub fn admit(
        &mut self,
        topology: &Topology,
        node: NodeId,
        cpu_mips: f64,
        memory_bytes: f64,
    ) -> Result<AdmissionId> {
        if !self.can_admit(topology, node, cpu_mips, memory_bytes) {
            return Err(ServiceError::InsufficientResources {
                node,
                detail: format!(
                    "need {cpu_mips} MIPS / {memory_bytes} B, have {} MIPS / {} B",
                    self.cpu_headroom(topology, node),
                    self.memory_headroom(topology, node)
                ),
            });
        }
        let usage = self.usage.entry(node).or_default();
        usage.cpu_mips += cpu_mips;
        usage.memory_bytes += memory_bytes;
        let id = AdmissionId(self.next_id);
        self.next_id += 1;
        self.admissions.insert(
            id,
            (
                node,
                Usage {
                    cpu_mips,
                    memory_bytes,
                },
            ),
        );
        Ok(id)
    }

    /// Release an admitted workload. Errors on double release.
    pub fn release(&mut self, id: AdmissionId) -> Result<()> {
        let (node, released) = self
            .admissions
            .remove(&id)
            .ok_or(ServiceError::UnknownAdmission(id))?;
        if let Some(usage) = self.usage.get_mut(&node) {
            usage.cpu_mips = (usage.cpu_mips - released.cpu_mips).max(0.0);
            usage.memory_bytes = (usage.memory_bytes - released.memory_bytes).max(0.0);
        }
        Ok(())
    }

    /// Number of active admissions.
    pub fn active_count(&self) -> usize {
        self.admissions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_netsim::Node;

    fn topo() -> (Topology, NodeId) {
        let mut t = Topology::new();
        let n = t.add_node(Node::new("proxy", 1_000.0, 1e9));
        (t, n)
    }

    #[test]
    fn admit_within_capacity() {
        let (t, n) = topo();
        let mut h = HostResources::new();
        let id = h.admit(&t, n, 600.0, 0.5e9).unwrap();
        assert_eq!(h.cpu_used(n), 600.0);
        assert!((h.cpu_headroom(&t, n) - 400.0).abs() < 1e-9);
        h.release(id).unwrap();
        assert_eq!(h.cpu_used(n), 0.0);
    }

    #[test]
    fn admission_rejects_over_cpu() {
        let (t, n) = topo();
        let mut h = HostResources::new();
        h.admit(&t, n, 900.0, 1e6).unwrap();
        assert!(h.admit(&t, n, 200.0, 1e6).is_err());
        assert_eq!(h.active_count(), 1, "failed admission has no side effects");
    }

    #[test]
    fn admission_rejects_over_memory() {
        let (t, n) = topo();
        let mut h = HostResources::new();
        assert!(h.admit(&t, n, 1.0, 2e9).is_err());
    }

    #[test]
    fn double_release_errors() {
        let (t, n) = topo();
        let mut h = HostResources::new();
        let id = h.admit(&t, n, 1.0, 1.0).unwrap();
        h.release(id).unwrap();
        assert!(h.release(id).is_err());
    }

    #[test]
    fn unconstrained_node_admits_everything() {
        let mut t = Topology::new();
        let n = t.add_node(Node::unconstrained("big"));
        let mut h = HostResources::new();
        for _ in 0..100 {
            h.admit(&t, n, 1e9, 1e12).unwrap();
        }
        assert_eq!(h.active_count(), 100);
    }
}
