//! The service registry: discovery with SLP-style leases.
//!
//! The paper assumes trans-coding services "can be described using any
//! service description language such as JINI, SLP, or WSDL" and that the
//! framework discovers them from intermediary profiles. The behaviour
//! composition needs from that middleware is:
//!
//! * registration of a service description, returning a handle,
//! * *leases*: a registration carries a time-to-live and disappears
//!   unless renewed (this is what makes the system "self-organizing" —
//!   dead proxies fall out of the graph automatically),
//! * lookup by input/output format (graph construction asks "who accepts
//!   format F?"),
//! * an event log, so experiments can observe churn.
//!
//! Time here is [`SimTime`] — the registry lives inside the simulation.

use crate::descriptor::{ServiceId, TranscoderDescriptor};
use crate::{Result, ServiceError};
use qosc_media::FormatId;
use qosc_netsim::SimTime;
use qosc_telemetry::{Event, EventKind, TelemetrySink, REQUEST_NONE};
use std::collections::HashMap;

/// Registry life-cycle events, in occurrence order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryEvent {
    /// A service was registered.
    Registered(ServiceId),
    /// A lease was renewed.
    Renewed(ServiceId),
    /// A lease ran out during [`ServiceRegistry::expire_leases`].
    Expired(ServiceId),
    /// A service was explicitly removed.
    Deregistered(ServiceId),
    /// The circuit breaker opened: too many reported failures.
    Quarantined(ServiceId),
    /// A quarantine cool-down elapsed; the service is advertised again.
    Reinstated(ServiceId),
    /// An SLA watchdog probated the service: still advertised, but
    /// deprioritized in selection via an effective-QoS penalty.
    Probated(ServiceId),
    /// Enough half-open probes succeeded; the penalty is lifted.
    ProbationCleared(ServiceId),
}

impl RegistryEvent {
    /// The service this life-cycle event is about.
    pub fn service(&self) -> ServiceId {
        match *self {
            RegistryEvent::Registered(id)
            | RegistryEvent::Renewed(id)
            | RegistryEvent::Expired(id)
            | RegistryEvent::Deregistered(id)
            | RegistryEvent::Quarantined(id)
            | RegistryEvent::Reinstated(id)
            | RegistryEvent::Probated(id)
            | RegistryEvent::ProbationCleared(id) => id,
        }
    }
}

/// Circuit-breaker policy for [`ServiceRegistry::report_failure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineConfig {
    /// Consecutive failures that open the breaker.
    pub failure_threshold: u32,
    /// How long a quarantined service stays out of `accepting`/`producing`.
    pub cooldown_us: u64,
}

impl Default for QuarantineConfig {
    fn default() -> QuarantineConfig {
        QuarantineConfig {
            failure_threshold: 3,
            cooldown_us: 5_000_000,
        }
    }
}

/// Policy for *probation* — the soft-demotion state between available
/// and quarantined that grey-failure detection uses. A probated
/// service keeps its advertisement (it is still `is_available`), but
/// selection sees a blended effective QoS instead of the advertised
/// one, so composition routes around it whenever an alternative
/// exists. Recovery is half-open: observed-healthy probes clear the
/// penalty, not a blind cooldown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbationConfig {
    /// Weight of the *observed* QoS in the effective blend, permille.
    /// `effective = ((1000 − w)·advertised + w·observed) / 1000`.
    pub observed_weight_permille: u32,
    /// Floor on the effective-QoS factor, PPM — a probated service is
    /// deprioritized, never zeroed out of existence.
    pub floor_ppm: u64,
    /// Healthy probes (at distinct virtual instants) that clear
    /// probation.
    pub probe_successes: u32,
}

impl Default for ProbationConfig {
    fn default() -> ProbationConfig {
        ProbationConfig {
            observed_weight_permille: 700,
            floor_ppm: 50_000,
            probe_successes: 3,
        }
    }
}

/// Per-entry probation bookkeeping.
#[derive(Debug, Clone, Copy)]
struct ProbationState {
    /// The effective-QoS factor selection multiplies in, PPM.
    effective_ppm: u64,
    /// Healthy probes counted so far (one per distinct instant).
    probes: u32,
    /// The last instant a probe was counted, so several sessions
    /// observing the same recovery in one tick count as one probe —
    /// this is what keeps recovery worker- and session-count
    /// invariant.
    last_probe_at: Option<SimTime>,
}

#[derive(Debug, Clone)]
struct Entry {
    descriptor: TranscoderDescriptor,
    lease_until: SimTime,
    alive: bool,
    /// Consecutive session-reported failures since the last success.
    failures: u32,
    /// `Some(t)`: excluded from lookups until `t` has passed.
    quarantined_until: Option<SimTime>,
    /// `Some`: soft-demoted — advertised, but penalized in selection.
    probation: Option<ProbationState>,
}

/// The service registry.
#[derive(Debug, Clone, Default)]
pub struct ServiceRegistry {
    entries: Vec<Entry>,
    events: Vec<RegistryEvent>,
    /// When each event happened (parallel to `events`). Operations
    /// without their own `now` parameter stamp with `clock`, the latest
    /// simulation time this registry has seen.
    event_times: Vec<SimTime>,
    /// Compaction watermark: how many log-leading events have been
    /// discarded by [`ServiceRegistry::compact_events_below`]. The
    /// epoch of the oldest *retained* event; `epoch()` stays monotone
    /// across compaction because it counts discarded events too.
    compacted: u64,
    clock: SimTime,
    /// Format-indexed lookup: input format → service ids in registration
    /// order (live and dead; liveness is filtered on query). Graph
    /// construction calls [`ServiceRegistry::accepting`] once per
    /// (vertex, output-format) pair, so this index is what keeps builds
    /// linear in the edge count rather than quadratic in services.
    by_input: HashMap<FormatId, Vec<ServiceId>>,
    quarantine: QuarantineConfig,
    probation: ProbationConfig,
    /// Sorted `(id, effective_ppm)` pairs for every probated entry —
    /// the zero-allocation view selection reads on every compose.
    /// Empty whenever nothing is probated, so the healthy hot path
    /// never pays for the feature.
    penalties: Vec<(ServiceId, u64)>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> ServiceRegistry {
        ServiceRegistry::default()
    }

    /// Register a service with a lease lasting until `now + ttl_us`.
    /// Registration order is the deterministic listing order the
    /// selection algorithm's tie-breaking uses.
    pub fn register(
        &mut self,
        descriptor: TranscoderDescriptor,
        now: SimTime,
        ttl_us: u64,
    ) -> ServiceId {
        let id = ServiceId(u32::try_from(self.entries.len()).expect("fewer than 2^32 services"));
        for format in descriptor.input_formats() {
            self.by_input.entry(format).or_default().push(id);
        }
        self.entries.push(Entry {
            descriptor,
            lease_until: now.plus_micros(ttl_us),
            alive: true,
            failures: 0,
            quarantined_until: None,
            probation: None,
        });
        self.push_event(RegistryEvent::Registered(id), now);
        id
    }

    /// Record `event` at `at`, keeping the stamp monotone: an event can
    /// never be recorded before one already in the log.
    fn push_event(&mut self, event: RegistryEvent, at: SimTime) {
        self.clock = self.clock.max(at);
        self.events.push(event);
        self.event_times.push(self.clock);
    }

    /// Register with an effectively infinite lease — for static scenarios
    /// (like the paper's worked example) where churn is not under study.
    pub fn register_static(&mut self, descriptor: TranscoderDescriptor) -> ServiceId {
        self.register(descriptor, SimTime::ZERO, u64::MAX / 2)
    }

    /// Renew a live service's lease until `now + ttl_us`.
    pub fn renew(&mut self, id: ServiceId, now: SimTime, ttl_us: u64) -> Result<()> {
        let entry = self.live_entry_mut(id)?;
        entry.lease_until = now.plus_micros(ttl_us);
        self.push_event(RegistryEvent::Renewed(id), now);
        Ok(())
    }

    /// Explicitly remove a service.
    pub fn deregister(&mut self, id: ServiceId) -> Result<()> {
        let entry = self.live_entry_mut(id)?;
        entry.alive = false;
        let was_probated = entry.probation.take().is_some();
        // No `now` parameter: stamp with the latest time seen.
        let at = self.clock;
        self.push_event(RegistryEvent::Deregistered(id), at);
        if was_probated {
            self.rebuild_penalties();
        }
        Ok(())
    }

    /// Expire every lease older than `now`. Returns the expired ids in
    /// registration order.
    pub fn expire_leases(&mut self, now: SimTime) -> Vec<ServiceId> {
        let mut expired = Vec::new();
        let mut dropped_probation = false;
        for (i, entry) in self.entries.iter_mut().enumerate() {
            if entry.alive && entry.lease_until < now {
                entry.alive = false;
                dropped_probation |= entry.probation.take().is_some();
                let id = ServiceId(i as u32);
                expired.push(id);
            }
        }
        for &id in &expired {
            self.push_event(RegistryEvent::Expired(id), now);
        }
        if dropped_probation {
            self.rebuild_penalties();
        }
        expired
    }

    /// The descriptor of a live service.
    pub fn get(&self, id: ServiceId) -> Result<&TranscoderDescriptor> {
        match self.entries.get(id.index()) {
            Some(e) if e.alive => Ok(&e.descriptor),
            _ => Err(ServiceError::UnknownService(id)),
        }
    }

    /// Whether `id` refers to a live service.
    pub fn is_live(&self, id: ServiceId) -> bool {
        self.entries
            .get(id.index())
            .map(|e| e.alive)
            .unwrap_or(false)
    }

    /// All live services, in registration order.
    pub fn live_services(&self) -> impl Iterator<Item = (ServiceId, &TranscoderDescriptor)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, e)| (ServiceId(i as u32), &e.descriptor))
    }

    /// Advertised services accepting `format` as input, in registration
    /// order: live leases that are not quarantined. This is the lookup
    /// graph construction performs for every frontier format; it is
    /// index-backed and O(matches).
    pub fn accepting(&self, format: FormatId) -> Vec<ServiceId> {
        self.accepting_iter(format).collect()
    }

    /// Iterator form of [`accepting`](ServiceRegistry::accepting): the
    /// same ids in the same order, without allocating a `Vec` — used by
    /// the graph-construction hot loop, which runs once per
    /// `(source, format)` pair.
    pub fn accepting_iter(&self, format: FormatId) -> impl Iterator<Item = ServiceId> + '_ {
        self.by_input
            .get(&format)
            .into_iter()
            .flatten()
            .copied()
            .filter(move |&id| self.is_available(id))
    }

    /// Advertised services producing `format` as output, in registration
    /// order (live leases that are not quarantined).
    pub fn producing(&self, format: FormatId) -> Vec<ServiceId> {
        self.live_services()
            .filter(|&(id, d)| d.produces(format) && !self.is_quarantined(id))
            .map(|(id, _)| id)
            .collect()
    }

    /// Number of live services.
    pub fn live_count(&self) -> usize {
        self.entries.iter().filter(|e| e.alive).count()
    }

    /// The retained event log: everything since construction, minus any
    /// prefix discarded by [`Self::compact_events_below`].
    pub fn events(&self) -> &[RegistryEvent] {
        &self.events
    }

    /// Monotone registry epoch: the number of recorded life-cycle
    /// events. Every mutation that can change what graph construction
    /// or plan revalidation would observe — register, renew,
    /// deregister, per-service lease expiry, quarantine open,
    /// quarantine release, probation open, probation clear — funnels
    /// through `push_event` and therefore
    /// bumps the epoch exactly once per event. Reads never bump it, and
    /// neither do `report_failure` below the breaker threshold,
    /// `report_success`, or sub-threshold half-open probes (they change
    /// no selection-observable state). Probation *does* bump even
    /// though availability is unchanged: the penalty view feeds
    /// satisfaction scoring, so cached plans must recompute. Two equal
    /// epochs on the same registry instance guarantee byte-identical
    /// availability answers, which is what makes O(1) cache
    /// revalidation and incremental graph maintenance sound.
    pub fn epoch(&self) -> u64 {
        self.compacted + self.events.len() as u64
    }

    /// The compaction watermark: the oldest epoch whose event tail is
    /// still replayable. `events_since(e)` answers `Some` exactly when
    /// `e >= compacted_epoch()`.
    pub fn compacted_epoch(&self) -> u64 {
        self.compacted
    }

    /// The events recorded since `epoch` (a value previously returned
    /// by [`Self::epoch`]), oldest first. An epoch from the future
    /// yields an empty slice. Returns `None` when the tail is no longer
    /// replayable because [`Self::compact_events_below`] discarded part
    /// of it — callers holding such a stale epoch must fall back to a
    /// full rebuild from current state.
    pub fn events_since(&self, epoch: u64) -> Option<&[RegistryEvent]> {
        if epoch < self.compacted {
            return None;
        }
        let start = ((epoch - self.compacted) as usize).min(self.events.len());
        Some(&self.events[start..])
    }

    /// Discard every retained event older than `epoch`, bounding the
    /// log. After this call, `events_since(e)` is `None` for any
    /// `e < min(epoch, self.epoch())` — consumers that kept such a
    /// stamp (the incremental `GraphStore`, shard logs) must rebuild
    /// from current registry state instead of replaying a delta.
    /// Compacting at or below the current watermark, or past the
    /// current epoch, is safe; the watermark never exceeds `epoch()`.
    /// Returns the number of events discarded.
    pub fn compact_events_below(&mut self, epoch: u64) -> usize {
        let target = epoch.min(self.epoch());
        if target <= self.compacted {
            return 0;
        }
        let drop = (target - self.compacted) as usize;
        self.events.drain(..drop);
        self.event_times.drain(..drop);
        self.compacted = target;
        drop
    }

    /// The retained event log with the [`SimTime`] each event was
    /// recorded at. Stamps are monotone in log order (see `push_event`).
    pub fn timed_events(&self) -> impl Iterator<Item = (SimTime, &RegistryEvent)> + '_ {
        self.event_times.iter().copied().zip(self.events.iter())
    }

    /// Replay the retained event log into a telemetry sink as
    /// flight-recorder events: `request_id` is [`REQUEST_NONE`]
    /// (registry life-cycle belongs to no request), `seq` is the
    /// absolute log position (compaction watermark + retained index, so
    /// it survives compaction unchanged), and the virtual time is the
    /// recorded [`SimTime`] — so the merged log is byte-identical
    /// however the scenario that produced the churn was scheduled.
    pub fn record_telemetry<S: TelemetrySink>(&self, sink: &S) {
        if !sink.enabled() {
            return;
        }
        for (index, (at, event)) in self.timed_events().enumerate() {
            let kind = match *event {
                RegistryEvent::Registered(id) => EventKind::ServiceRegistered {
                    service: id.index() as u32,
                },
                RegistryEvent::Renewed(id) => EventKind::LeaseRenewed {
                    service: id.index() as u32,
                },
                RegistryEvent::Expired(id) => EventKind::LeaseExpired {
                    service: id.index() as u32,
                },
                RegistryEvent::Deregistered(id) => EventKind::ServiceDeregistered {
                    service: id.index() as u32,
                },
                RegistryEvent::Quarantined(id) => EventKind::QuarantineOpened {
                    service: id.index() as u32,
                },
                RegistryEvent::Reinstated(id) => EventKind::QuarantineReleased {
                    service: id.index() as u32,
                },
                RegistryEvent::Probated(id) => EventKind::ServiceProbated {
                    service: id.index() as u32,
                },
                RegistryEvent::ProbationCleared(id) => EventKind::ProbationCleared {
                    service: id.index() as u32,
                },
            };
            sink.record(Event {
                virtual_time_us: at.as_micros(),
                request_id: REQUEST_NONE,
                span: 0,
                seq: (self.compacted + index as u64) as u32,
                kind,
            });
        }
    }

    /// Replace the circuit-breaker policy (defaults to
    /// [`QuarantineConfig::default`]).
    pub fn set_quarantine_config(&mut self, config: QuarantineConfig) {
        self.quarantine = config;
    }

    /// The active circuit-breaker policy.
    pub fn quarantine_config(&self) -> QuarantineConfig {
        self.quarantine
    }

    /// A session reports that `id` failed (crash mid-stream, revalidation
    /// miss, …). After `failure_threshold` consecutive failures the
    /// breaker opens: the service is excluded from [`Self::accepting`] /
    /// [`Self::producing`] until `now + cooldown_us` has *passed* and
    /// [`Self::release_quarantines`] runs. Returns `true` when this
    /// report opened the breaker.
    ///
    /// Failure reports are about *behaviour*, not leases: the lease stays
    /// live (the service still answers renewals), so discovery keeps
    /// working and the service rejoins automatically after the cool-down.
    ///
    /// Reporting a failure against a dead (expired/deregistered) or
    /// already-quarantined service is a **documented no-op** returning
    /// `Ok(false)`: the session loop can observe the same dead member
    /// from several sessions in one instant, and the second report has
    /// nothing left to demote. No failure count moves and no epoch is
    /// bumped, so the no-op is invisible to caches.
    ///
    /// Opening the breaker also clears any probation silently: the
    /// quarantine supersedes the softer penalty, and the `Quarantined`
    /// event already records the availability change.
    pub fn report_failure(&mut self, id: ServiceId, now: SimTime) -> Result<bool> {
        let cooldown = self.quarantine.cooldown_us;
        let threshold = self.quarantine.failure_threshold;
        let entry = match self.entries.get_mut(id.index()) {
            Some(e) if e.alive && e.quarantined_until.is_none() => e,
            _ => return Ok(false),
        };
        entry.failures = entry.failures.saturating_add(1);
        if entry.failures >= threshold {
            entry.quarantined_until = Some(now.plus_micros(cooldown));
            let was_probated = entry.probation.take().is_some();
            self.push_event(RegistryEvent::Quarantined(id), now);
            if was_probated {
                self.rebuild_penalties();
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// A session reports that `id` served successfully: the consecutive
    /// failure count resets. An already-open breaker stays open until its
    /// cool-down elapses (half-open probes do not close it early).
    pub fn report_success(&mut self, id: ServiceId) -> Result<()> {
        let entry = self.live_entry_mut(id)?;
        entry.failures = 0;
        Ok(())
    }

    /// Whether `id` is currently quarantined.
    pub fn is_quarantined(&self, id: ServiceId) -> bool {
        self.entries
            .get(id.index())
            .map(|e| e.quarantined_until.is_some())
            .unwrap_or(false)
    }

    /// Whether `id` is advertised: live lease and not quarantined. This
    /// is the availability check cached-plan revalidation uses.
    pub fn is_available(&self, id: ServiceId) -> bool {
        self.is_live(id) && !self.is_quarantined(id)
    }

    /// Release every quarantine whose cool-down has passed. Mirrors
    /// [`Self::expire_leases`]: a quarantine is still in force at exactly
    /// its release time (strict `<`). Returns reinstated ids in
    /// registration order.
    pub fn release_quarantines(&mut self, now: SimTime) -> Vec<ServiceId> {
        let mut reinstated = Vec::new();
        for (i, entry) in self.entries.iter_mut().enumerate() {
            if let Some(until) = entry.quarantined_until {
                if until < now {
                    entry.quarantined_until = None;
                    entry.failures = 0;
                    reinstated.push(ServiceId(i as u32));
                }
            }
        }
        for &id in &reinstated {
            self.push_event(RegistryEvent::Reinstated(id), now);
        }
        reinstated
    }

    /// Replace the probation policy (defaults to
    /// [`ProbationConfig::default`]).
    pub fn set_probation_config(&mut self, config: ProbationConfig) {
        self.probation = config;
    }

    /// The active probation policy.
    pub fn probation_config(&self) -> ProbationConfig {
        self.probation
    }

    /// Soft-demote `id`: an SLA watchdog observed it delivering
    /// `observed_ppm` (PPM of advertised) for a full dwell window. The
    /// service stays advertised — [`Self::is_available`] still holds —
    /// but [`Self::selection_penalties`] gains a blended effective-QoS
    /// factor that selection multiplies into the service's
    /// satisfaction, so composition prefers any clean alternative.
    ///
    /// Returns `true` when this call probated the service. Dead,
    /// quarantined, or already-probated services are no-ops (`false`):
    /// quarantine supersedes probation, and re-flagging an open
    /// episode must not reset half-open progress.
    pub fn probate(&mut self, id: ServiceId, observed_ppm: u64, now: SimTime) -> bool {
        let config = self.probation;
        let entry = match self.entries.get_mut(id.index()) {
            Some(e) if e.alive && e.quarantined_until.is_none() && e.probation.is_none() => e,
            _ => return false,
        };
        entry.probation = Some(ProbationState {
            effective_ppm: blend_effective_ppm(&config, observed_ppm),
            probes: 0,
            last_probe_at: None,
        });
        self.push_event(RegistryEvent::Probated(id), now);
        self.rebuild_penalties();
        true
    }

    /// Count one healthy half-open probe for a probated service. At
    /// most one probe is counted per distinct [`SimTime`] — many
    /// sessions observing the same recovery instant contribute a
    /// single probe, which keeps recovery invariant under session and
    /// worker counts. After
    /// [`ProbationConfig::probe_successes`] distinct healthy instants
    /// the probation clears (one `ProbationCleared` event, one epoch
    /// bump). Returns `true` when this call cleared it.
    pub fn probe_success(&mut self, id: ServiceId, now: SimTime) -> bool {
        let needed = self.probation.probe_successes.max(1);
        let entry = match self.entries.get_mut(id.index()) {
            Some(e) if e.alive => e,
            _ => return false,
        };
        let Some(state) = entry.probation.as_mut() else {
            return false;
        };
        if state.last_probe_at == Some(now) {
            return false;
        }
        state.last_probe_at = Some(now);
        state.probes += 1;
        if state.probes >= needed {
            entry.probation = None;
            self.push_event(RegistryEvent::ProbationCleared(id), now);
            self.rebuild_penalties();
            return true;
        }
        false
    }

    /// Whether `id` is currently probated (advertised but penalized).
    pub fn is_probated(&self, id: ServiceId) -> bool {
        self.entries
            .get(id.index())
            .map(|e| e.alive && e.probation.is_some())
            .unwrap_or(false)
    }

    /// The effective-QoS factor selection should multiply into `id`'s
    /// satisfaction, PPM. 1_000_000 (advertised-as-is) unless probated.
    pub fn effective_qos_ppm(&self, id: ServiceId) -> u64 {
        self.entries
            .get(id.index())
            .and_then(|e| e.probation.as_ref())
            .map(|p| p.effective_ppm)
            .unwrap_or(EFFECTIVE_PPM_UNIT)
    }

    /// The selection penalty view: sorted `(id, effective_ppm)` pairs
    /// for every probated service, empty when nothing is probated.
    /// Borrowed, not built — reading it costs nothing on the healthy
    /// path.
    pub fn selection_penalties(&self) -> &[(ServiceId, u64)] {
        &self.penalties
    }

    /// Recompute the sorted penalty view from entry state. Entries are
    /// scanned in id order, so the result is sorted by construction.
    fn rebuild_penalties(&mut self) {
        self.penalties.clear();
        for (i, entry) in self.entries.iter().enumerate() {
            if entry.alive {
                if let Some(state) = &entry.probation {
                    self.penalties
                        .push((ServiceId(i as u32), state.effective_ppm));
                }
            }
        }
    }

    fn live_entry_mut(&mut self, id: ServiceId) -> Result<&mut Entry> {
        match self.entries.get_mut(id.index()) {
            Some(e) if e.alive => Ok(e),
            _ => Err(ServiceError::UnknownService(id)),
        }
    }
}

/// PPM unit for effective-QoS factors.
const EFFECTIVE_PPM_UNIT: u64 = 1_000_000;

/// `((1000 − w)·advertised + w·observed) / 1000`, floored: the
/// effective-QoS blend a probated service is scored with.
fn blend_effective_ppm(config: &ProbationConfig, observed_ppm: u64) -> u64 {
    let w = u64::from(config.observed_weight_permille.min(1_000));
    let observed = observed_ppm.min(EFFECTIVE_PPM_UNIT);
    let blended = ((1_000 - w) * EFFECTIVE_PPM_UNIT + w * observed) / 1_000;
    blended.max(config.floor_ppm.min(EFFECTIVE_PPM_UNIT))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::{DomainVector, FormatRegistry, MediaKind};
    use qosc_netsim::{Node, Topology};
    use qosc_profiles::{ConversionSpec, ServiceSpec};

    fn setup() -> (ServiceRegistry, FormatRegistry, TranscoderDescriptor) {
        let mut formats = FormatRegistry::new();
        formats.register_abstract("in", MediaKind::Video);
        formats.register_abstract("out", MediaKind::Video);
        let mut topo = Topology::new();
        let node = topo.add_node(Node::unconstrained("host"));
        let spec = ServiceSpec::new(
            "svc",
            vec![ConversionSpec::new("in", "out", DomainVector::new())],
        );
        let descriptor = TranscoderDescriptor::resolve(&spec, &formats, node).unwrap();
        (ServiceRegistry::new(), formats, descriptor)
    }

    #[test]
    fn register_and_lookup_by_format() {
        let (mut reg, formats, descriptor) = setup();
        let id = reg.register_static(descriptor);
        let fin = formats.lookup("in").unwrap();
        let fout = formats.lookup("out").unwrap();
        assert_eq!(reg.accepting(fin), vec![id]);
        assert!(reg.accepting(fout).is_empty());
        assert_eq!(reg.producing(fout), vec![id]);
        assert_eq!(reg.live_count(), 1);
    }

    #[test]
    fn lease_expiry_removes_service() {
        let (mut reg, _, descriptor) = setup();
        let id = reg.register(descriptor, SimTime::ZERO, 1_000);
        assert!(reg.is_live(id));
        let expired = reg.expire_leases(SimTime(2_000));
        assert_eq!(expired, vec![id]);
        assert!(!reg.is_live(id));
        assert!(reg.get(id).is_err());
        // Idempotent.
        assert!(reg.expire_leases(SimTime(3_000)).is_empty());
    }

    #[test]
    fn renewal_extends_lease() {
        let (mut reg, _, descriptor) = setup();
        let id = reg.register(descriptor, SimTime::ZERO, 1_000);
        reg.renew(id, SimTime(900), 10_000).unwrap();
        assert!(reg.expire_leases(SimTime(5_000)).is_empty());
        assert!(reg.is_live(id));
    }

    #[test]
    fn deregister_and_double_ops_error() {
        let (mut reg, _, descriptor) = setup();
        let id = reg.register_static(descriptor);
        reg.deregister(id).unwrap();
        assert!(reg.deregister(id).is_err());
        assert!(reg.renew(id, SimTime::ZERO, 1).is_err());
    }

    #[test]
    fn event_log_records_lifecycle() {
        let (mut reg, _, descriptor) = setup();
        let id = reg.register(descriptor.clone(), SimTime::ZERO, 1_000);
        reg.renew(id, SimTime(500), 1_000).unwrap();
        reg.expire_leases(SimTime(10_000));
        let id2 = reg.register_static(descriptor);
        reg.deregister(id2).unwrap();
        assert_eq!(
            reg.events(),
            &[
                RegistryEvent::Registered(id),
                RegistryEvent::Renewed(id),
                RegistryEvent::Expired(id),
                RegistryEvent::Registered(id2),
                RegistryEvent::Deregistered(id2),
            ]
        );
    }

    #[test]
    fn quarantine_opens_after_threshold_and_releases_after_cooldown() {
        let (mut reg, formats, descriptor) = setup();
        let id = reg.register_static(descriptor);
        reg.set_quarantine_config(QuarantineConfig {
            failure_threshold: 3,
            cooldown_us: 1_000,
        });
        let fin = formats.lookup("in").unwrap();
        let fout = formats.lookup("out").unwrap();
        assert!(!reg.report_failure(id, SimTime(10)).unwrap());
        assert!(!reg.report_failure(id, SimTime(20)).unwrap());
        assert!(!reg.is_quarantined(id));
        assert!(reg.report_failure(id, SimTime(30)).unwrap());
        assert!(reg.is_quarantined(id));
        // Quarantined services vanish from lookups but stay live.
        assert!(reg.accepting(fin).is_empty());
        assert!(reg.producing(fout).is_empty());
        assert!(reg.is_live(id));
        assert!(!reg.is_available(id));
        // Still in force at exactly the release time (strict `<`).
        assert!(reg.release_quarantines(SimTime(1_030)).is_empty());
        assert!(reg.is_quarantined(id));
        assert_eq!(reg.release_quarantines(SimTime(1_031)), vec![id]);
        assert!(!reg.is_quarantined(id));
        assert_eq!(reg.accepting(fin), vec![id]);
        assert_eq!(
            reg.events().last(),
            Some(&RegistryEvent::Reinstated(id)),
            "reinstatement is observable"
        );
    }

    #[test]
    fn success_resets_the_failure_count() {
        let (mut reg, _, descriptor) = setup();
        let id = reg.register_static(descriptor);
        reg.set_quarantine_config(QuarantineConfig {
            failure_threshold: 2,
            cooldown_us: 1_000,
        });
        assert!(!reg.report_failure(id, SimTime(10)).unwrap());
        reg.report_success(id).unwrap();
        assert!(!reg.report_failure(id, SimTime(20)).unwrap());
        assert!(
            !reg.is_quarantined(id),
            "success between failures keeps the breaker closed"
        );
        assert!(reg.report_failure(id, SimTime(30)).unwrap());
        assert!(reg.events().contains(&RegistryEvent::Quarantined(id)));
    }

    #[test]
    fn failure_reports_on_dead_or_quarantined_services_are_noops() {
        let (mut reg, _, descriptor) = setup();
        let id = reg.register(descriptor, SimTime::ZERO, 100);
        reg.expire_leases(SimTime(200));
        let epoch = reg.epoch();
        // Several sessions can observe the same dead member in one
        // instant; the late reports must be silent no-ops, not errors.
        assert!(!reg.report_failure(id, SimTime(300)).unwrap());
        assert!(!reg.report_failure(id, SimTime(300)).unwrap());
        assert_eq!(reg.epoch(), epoch, "no-op reports never bump the epoch");
        // Success reports still error: claiming a dead service served
        // is a caller bug worth surfacing.
        assert!(reg.report_success(id).is_err());
    }

    #[test]
    fn failure_reports_on_quarantined_services_are_noops() {
        let (mut reg, _, descriptor) = setup();
        let id = reg.register_static(descriptor);
        reg.set_quarantine_config(QuarantineConfig {
            failure_threshold: 1,
            cooldown_us: 1_000,
        });
        assert!(reg.report_failure(id, SimTime(10)).unwrap());
        assert!(reg.is_quarantined(id));
        let epoch = reg.epoch();
        assert!(
            !reg.report_failure(id, SimTime(20)).unwrap(),
            "an open breaker absorbs further reports"
        );
        assert_eq!(reg.epoch(), epoch);
        // The absorbed report did not extend the cooldown.
        assert_eq!(reg.release_quarantines(SimTime(1_011)), vec![id]);
    }

    #[test]
    fn probation_penalizes_without_deadvertising() {
        let (mut reg, formats, descriptor) = setup();
        let id = reg.register_static(descriptor);
        let fin = formats.lookup("in").unwrap();
        assert!(reg.selection_penalties().is_empty());
        assert_eq!(reg.effective_qos_ppm(id), 1_000_000);

        assert!(reg.probate(id, 400_000, SimTime(100)));
        assert!(reg.is_probated(id));
        assert!(reg.is_available(id), "probation keeps the advertisement");
        assert_eq!(reg.accepting(fin), vec![id], "still selectable");
        // blend: (300·1M + 700·400k) / 1000 = 580k.
        assert_eq!(reg.effective_qos_ppm(id), 580_000);
        assert_eq!(reg.selection_penalties(), &[(id, 580_000)]);
        // Re-flagging an open episode is a no-op.
        assert!(!reg.probate(id, 100_000, SimTime(200)));
        assert_eq!(reg.effective_qos_ppm(id), 580_000);
    }

    #[test]
    fn probation_clears_after_distinct_probe_instants() {
        let (mut reg, _, descriptor) = setup();
        let id = reg.register_static(descriptor);
        reg.set_probation_config(ProbationConfig {
            probe_successes: 2,
            ..ProbationConfig::default()
        });
        assert!(reg.probate(id, 0, SimTime(100)));
        assert!(!reg.probe_success(id, SimTime(200)));
        // The same instant again — from another session — is one probe.
        assert!(!reg.probe_success(id, SimTime(200)));
        assert!(reg.is_probated(id));
        assert!(reg.probe_success(id, SimTime(300)), "second instant clears");
        assert!(!reg.is_probated(id));
        assert!(reg.selection_penalties().is_empty());
        assert_eq!(
            reg.events().last(),
            Some(&RegistryEvent::ProbationCleared(id))
        );
    }

    #[test]
    fn quarantine_supersedes_probation() {
        let (mut reg, _, descriptor) = setup();
        let id = reg.register_static(descriptor);
        reg.set_quarantine_config(QuarantineConfig {
            failure_threshold: 1,
            cooldown_us: 1_000,
        });
        assert!(reg.probate(id, 500_000, SimTime(10)));
        assert!(reg.report_failure(id, SimTime(20)).unwrap());
        assert!(reg.is_quarantined(id));
        assert!(!reg.is_probated(id), "the breaker clears the soft state");
        assert!(reg.selection_penalties().is_empty());
        // Probating a quarantined service is refused.
        assert!(!reg.probate(id, 500_000, SimTime(30)));
    }

    #[test]
    fn expiry_drops_probation_penalties() {
        let (mut reg, _, descriptor) = setup();
        let id = reg.register(descriptor, SimTime::ZERO, 1_000);
        assert!(reg.probate(id, 0, SimTime(100)));
        assert_eq!(reg.selection_penalties().len(), 1);
        reg.expire_leases(SimTime(2_000));
        assert!(reg.selection_penalties().is_empty());
        assert!(!reg.is_probated(id));
        assert!(!reg.probe_success(id, SimTime(3_000)), "dead: no-op");
    }

    #[test]
    fn effective_blend_is_floored() {
        let (mut reg, _, descriptor) = setup();
        let id = reg.register_static(descriptor);
        reg.set_probation_config(ProbationConfig {
            observed_weight_permille: 1_000,
            floor_ppm: 50_000,
            probe_successes: 3,
        });
        assert!(reg.probate(id, 0, SimTime(10)));
        assert_eq!(
            reg.effective_qos_ppm(id),
            50_000,
            "a fully-sagged observation still leaves the floor"
        );
    }

    #[test]
    fn epoch_bumps_exactly_once_per_mutation() {
        let (mut reg, _, descriptor) = setup();
        assert_eq!(reg.epoch(), 0);

        let id = reg.register(descriptor.clone(), SimTime::ZERO, 1_000);
        assert_eq!(reg.epoch(), 1, "register bumps once");

        reg.renew(id, SimTime(500), 1_000).unwrap();
        assert_eq!(reg.epoch(), 2, "renew bumps once");

        let id2 = reg.register(descriptor.clone(), SimTime(600), 1_000);
        let id3 = reg.register(descriptor, SimTime(600), 500);
        assert_eq!(reg.epoch(), 4);

        // One bump per expired lease, none when nothing expires.
        reg.expire_leases(SimTime(1_200));
        assert_eq!(reg.epoch(), 5, "only {id3:?} expired");
        assert!(!reg.is_live(id3));
        reg.expire_leases(SimTime(1_200));
        assert_eq!(reg.epoch(), 5, "no-op expiry does not bump");

        reg.deregister(id2).unwrap();
        assert_eq!(reg.epoch(), 6, "deregister bumps once");

        // Failure reports below the breaker threshold change no
        // advertised state and must not bump; the report that opens the
        // breaker bumps exactly once.
        reg.set_quarantine_config(QuarantineConfig {
            failure_threshold: 2,
            cooldown_us: 1_000,
        });
        assert!(!reg.report_failure(id, SimTime(1_300)).unwrap());
        assert_eq!(reg.epoch(), 6, "sub-threshold failure does not bump");
        reg.report_success(id).unwrap();
        assert_eq!(reg.epoch(), 6, "success report does not bump");
        assert!(!reg.report_failure(id, SimTime(1_400)).unwrap());
        assert!(reg.report_failure(id, SimTime(1_500)).unwrap());
        assert_eq!(reg.epoch(), 7, "breaker opening bumps once");

        // One bump per reinstated quarantine, none before the cooldown.
        assert!(reg.release_quarantines(SimTime(2_500)).is_empty());
        assert_eq!(reg.epoch(), 7);
        assert_eq!(reg.release_quarantines(SimTime(2_501)), vec![id]);
        assert_eq!(reg.epoch(), 8, "quarantine release bumps once");

        // Probation changes selection-observable state (the penalty
        // view), so open and clear each bump exactly once; the
        // sub-threshold half-open probe in between does not.
        reg.set_probation_config(ProbationConfig {
            probe_successes: 2,
            ..ProbationConfig::default()
        });
        assert!(reg.probate(id, 500_000, SimTime(3_000)));
        assert_eq!(reg.epoch(), 9, "probate bumps once");
        assert!(!reg.probe_success(id, SimTime(3_100)));
        assert_eq!(reg.epoch(), 9, "sub-threshold probe does not bump");
        assert!(reg.probe_success(id, SimTime(3_200)));
        assert_eq!(reg.epoch(), 10, "probation clear bumps once");
    }

    #[test]
    fn events_since_returns_the_tail() {
        let (mut reg, _, descriptor) = setup();
        let id = reg.register(descriptor.clone(), SimTime::ZERO, 1_000);
        let mark = reg.epoch();
        let id2 = reg.register_static(descriptor);
        reg.renew(id, SimTime(100), 1_000).unwrap();
        assert_eq!(
            reg.events_since(mark).unwrap(),
            &[RegistryEvent::Registered(id2), RegistryEvent::Renewed(id)]
        );
        assert!(reg.events_since(reg.epoch()).unwrap().is_empty());
        assert!(
            reg.events_since(u64::MAX).unwrap().is_empty(),
            "future epoch is empty"
        );
        assert_eq!(reg.events_since(0).unwrap().len(), reg.epoch() as usize);
    }

    #[test]
    fn compaction_bounds_the_log_without_moving_the_epoch() {
        let (mut reg, _, descriptor) = setup();
        let a = reg.register(descriptor.clone(), SimTime::ZERO, 1_000);
        reg.renew(a, SimTime(100), 1_000).unwrap();
        let mark = reg.epoch();
        let b = reg.register_static(descriptor);
        let epoch = reg.epoch();
        assert_eq!(epoch, 3);

        // Compacting below `mark` keeps tails at or after it replayable.
        assert_eq!(reg.compact_events_below(mark), 2);
        assert_eq!(reg.epoch(), epoch, "compaction never moves the epoch");
        assert_eq!(reg.compacted_epoch(), mark);
        assert_eq!(reg.events(), &[RegistryEvent::Registered(b)]);
        assert_eq!(
            reg.events_since(mark).unwrap(),
            &[RegistryEvent::Registered(b)]
        );
        // A stamp older than the watermark is no longer replayable.
        assert_eq!(reg.events_since(mark - 1), None);
        assert_eq!(reg.events_since(0), None);

        // Compacting at or below the watermark is an idempotent no-op.
        assert_eq!(reg.compact_events_below(mark), 0);
        assert_eq!(reg.compact_events_below(0), 0);

        // Compacting past the live epoch clamps: the epoch and new
        // tails survive, the whole retained log is discarded.
        assert_eq!(reg.compact_events_below(u64::MAX), 1);
        assert_eq!(reg.epoch(), epoch);
        assert_eq!(reg.compacted_epoch(), epoch);
        assert!(reg.events().is_empty());
        assert!(reg.events_since(epoch).unwrap().is_empty());
        assert_eq!(reg.events_since(mark), None);

        // The log keeps growing normally after compaction.
        reg.deregister(b).unwrap();
        assert_eq!(reg.epoch(), epoch + 1);
        assert_eq!(
            reg.events_since(epoch).unwrap(),
            &[RegistryEvent::Deregistered(b)]
        );
    }

    #[test]
    fn telemetry_seq_is_the_absolute_log_position_after_compaction() {
        use qosc_telemetry::FlightRecorder;
        let (mut reg, _, descriptor) = setup();
        let a = reg.register(descriptor.clone(), SimTime::ZERO, 1_000);
        reg.renew(a, SimTime(100), 1_000).unwrap();
        let b = reg.register_static(descriptor);
        reg.deregister(b).unwrap();

        let full = FlightRecorder::default();
        reg.record_telemetry(&full);
        let all: Vec<u32> = full.merged().into_iter().map(|e| e.seq).collect();
        assert_eq!(all, vec![0, 1, 2, 3]);

        reg.compact_events_below(2);
        let tail = FlightRecorder::default();
        reg.record_telemetry(&tail);
        let kept: Vec<u32> = tail.merged().into_iter().map(|e| e.seq).collect();
        assert_eq!(kept, vec![2, 3], "seq survives compaction unchanged");
    }

    #[test]
    fn registration_order_is_stable() {
        let (mut reg, _, descriptor) = setup();
        let a = reg.register_static(descriptor.clone());
        let b = reg.register_static(descriptor.clone());
        let c = reg.register_static(descriptor);
        reg.deregister(b).unwrap();
        let ids: Vec<ServiceId> = reg.live_services().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, c]);
    }
}
