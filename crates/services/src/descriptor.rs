//! Runtime trans-coding service descriptors.
//!
//! A [`TranscoderDescriptor`] is the resolved form of a
//! [`ServiceSpec`](qosc_profiles::ServiceSpec): format names interned to
//! [`FormatId`]s and the service bound to the network node it runs on.
//! These are the vertices of the paper's adaptation graph (Section 4.2,
//! Figure 2).

use crate::Result;
use qosc_media::{DomainVector, FormatId, FormatRegistry};
use qosc_netsim::NodeId;
use qosc_profiles::{PriceModel, ServiceSpec};

/// Dense identifier of a service within one
/// [`ServiceRegistry`](crate::ServiceRegistry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(pub(crate) u32);

impl ServiceId {
    /// Raw index (valid only for the registry that produced it).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One resolved input-format → output-format capability.
#[derive(Debug, Clone, PartialEq)]
pub struct Conversion {
    /// Accepted input format.
    pub input: FormatId,
    /// Produced output format.
    pub output: FormatId,
    /// Output quality configurations the service can produce, before
    /// upstream capping.
    pub output_domain: DomainVector,
}

/// The runtime description of one trans-coding service instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TranscoderDescriptor {
    /// Service name (unique per intermediary; display purposes).
    pub name: String,
    /// The network node the service runs on.
    pub host: NodeId,
    /// Supported conversions, in advertised listing order.
    pub conversions: Vec<Conversion>,
    /// CPU demand in MIPS per Mbit/s of input processed.
    pub cpu_mips_per_mbps: f64,
    /// Resident memory required, bytes.
    pub memory_bytes: f64,
    /// Price of using the service.
    pub price: PriceModel,
}

impl TranscoderDescriptor {
    /// Resolve a wire [`ServiceSpec`] against `registry`, binding it to
    /// `host`. Format names must already be interned.
    pub fn resolve(
        spec: &ServiceSpec,
        registry: &FormatRegistry,
        host: NodeId,
    ) -> Result<TranscoderDescriptor> {
        let conversions = spec
            .conversions
            .iter()
            .map(|c| {
                Ok(Conversion {
                    input: registry.lookup(&c.input)?,
                    output: registry.lookup(&c.output)?,
                    output_domain: c.output_domain.clone(),
                })
            })
            .collect::<Result<Vec<Conversion>>>()?;
        Ok(TranscoderDescriptor {
            name: spec.name.clone(),
            host,
            conversions,
            cpu_mips_per_mbps: spec.cpu_mips_per_mbps,
            memory_bytes: spec.memory_bytes,
            price: spec.price,
        })
    }

    /// Whether the service accepts `format` on some conversion.
    pub fn accepts(&self, format: FormatId) -> bool {
        self.conversions.iter().any(|c| c.input == format)
    }

    /// Whether the service can produce `format`.
    pub fn produces(&self, format: FormatId) -> bool {
        self.conversions.iter().any(|c| c.output == format)
    }

    /// Conversions accepting `input`, in listing order.
    pub fn conversions_from(&self, input: FormatId) -> impl Iterator<Item = &Conversion> + '_ {
        self.conversions.iter().filter(move |c| c.input == input)
    }

    /// Distinct input formats, in first-appearance order.
    pub fn input_formats(&self) -> Vec<FormatId> {
        let mut seen = Vec::new();
        for c in &self.conversions {
            if !seen.contains(&c.input) {
                seen.push(c.input);
            }
        }
        seen
    }

    /// Distinct output formats, in first-appearance order.
    pub fn output_formats(&self) -> Vec<FormatId> {
        let mut seen = Vec::new();
        for c in &self.conversions {
            if !seen.contains(&c.output) {
                seen.push(c.output);
            }
        }
        seen
    }

    /// CPU load (MIPS) of processing an input stream of `input_bps`.
    pub fn cpu_load(&self, input_bps: f64) -> f64 {
        self.cpu_mips_per_mbps * input_bps / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::MediaKind;
    use qosc_profiles::ConversionSpec;

    fn registry() -> FormatRegistry {
        let mut reg = FormatRegistry::new();
        for name in ["F5", "F6", "F10", "F11", "F12", "F13"] {
            reg.register_abstract(name, MediaKind::Video);
        }
        reg
    }

    fn test_node() -> NodeId {
        let mut t = qosc_netsim::Topology::new();
        t.add_node(qosc_netsim::Node::unconstrained("test"))
    }

    /// The paper's Figure 2: T1 with inputs {F5, F6} and outputs
    /// {F10, F11, F12, F13}.
    fn figure2_spec() -> ServiceSpec {
        let pairs = [
            ("F5", "F10"),
            ("F5", "F11"),
            ("F5", "F12"),
            ("F5", "F13"),
            ("F6", "F10"),
            ("F6", "F11"),
            ("F6", "F12"),
            ("F6", "F13"),
        ];
        ServiceSpec::new(
            "T1",
            pairs
                .iter()
                .map(|&(i, o)| ConversionSpec::new(i, o, DomainVector::new()))
                .collect(),
        )
    }

    #[test]
    fn resolve_figure2_service() {
        let reg = registry();
        let t1 = TranscoderDescriptor::resolve(&figure2_spec(), &reg, test_node()).unwrap();
        assert_eq!(t1.input_formats().len(), 2);
        assert_eq!(t1.output_formats().len(), 4);
        let f5 = reg.lookup("F5").unwrap();
        let f10 = reg.lookup("F10").unwrap();
        assert!(t1.accepts(f5));
        assert!(t1.produces(f10));
        assert!(!t1.accepts(f10));
        assert_eq!(t1.conversions_from(f5).count(), 4);
    }

    #[test]
    fn resolve_unknown_format_fails() {
        let reg = FormatRegistry::new();
        assert!(TranscoderDescriptor::resolve(&figure2_spec(), &reg, test_node()).is_err());
    }

    #[test]
    fn cpu_load_scales_with_input() {
        let reg = registry();
        let spec = figure2_spec().with_resources(50.0, 1e6);
        let t = TranscoderDescriptor::resolve(&spec, &reg, test_node()).unwrap();
        assert!((t.cpu_load(2e6) - 100.0).abs() < 1e-9);
    }
}
