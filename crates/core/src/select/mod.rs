//! The QoS selection algorithm (Section 4.4, Figure 4).

pub mod alternates;
pub mod greedy;
pub mod label;
pub mod trace;

pub use alternates::{alternates, Alternate};
pub use greedy::{
    arena_reuse_total, select_chain, select_chain_with_penalties, CandidateStore, SelectFailure,
    SelectOptions, SelectionOutcome, TieBreak,
};
pub use label::{ExtendContext, Label, StateKey};
pub use trace::{SelectionTrace, TraceRow};

use crate::graph::VertexId;
use qosc_media::{FormatId, ParamVector};

/// One settled step of a selected chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainStep {
    /// The vertex (sender, transcoder or receiver).
    pub vertex: VertexId,
    /// Display name of the vertex.
    pub name: String,
    /// Output format the vertex emits on this chain.
    pub output_format: FormatId,
    /// Configured output parameters.
    pub params: ParamVector,
    /// Satisfaction label at this step.
    pub satisfaction: f64,
    /// Accumulated cost up to and including this step.
    pub accumulated_cost: f64,
}

/// The chain returned by a successful selection: sender, zero or more
/// trans-coding services, receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedChain {
    /// Steps from sender to receiver.
    pub steps: Vec<ChainStep>,
    /// Final user satisfaction ("the user's satisfaction value computed
    /// on the last edge to the receiver node", Section 4.4).
    pub satisfaction: f64,
    /// Total accumulated cost of the chain.
    pub total_cost: f64,
}

impl SelectedChain {
    /// Number of trans-coding services on the chain (excludes the sender
    /// and receiver endpoints).
    pub fn transcoder_count(&self) -> usize {
        self.steps.len().saturating_sub(2)
    }

    /// Display names from sender to receiver.
    pub fn names(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.name.as_str()).collect()
    }
}
