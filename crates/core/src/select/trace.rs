//! Round-by-round selection traces (the columns of the paper's Table 1).

use qosc_media::{Axis, ParamVector};

/// One round of the selection algorithm: the paper's Table-1 columns.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    /// Round number, 1-based.
    pub round: usize,
    /// "Considered Set (VT)" at the start of the round: display names in
    /// settlement order, starting with `sender`.
    pub considered: Vec<String>,
    /// "Candidate set (CS)" at the start of the round: display names in
    /// discovery order, `receiver` pinned last, deduplicated.
    pub candidates: Vec<String>,
    /// "Selected trans-coding service" of this round.
    pub selected: String,
    /// "Selected Path": sender → … → selected vertex.
    pub selected_path: Vec<String>,
    /// Configured parameters of the selected label.
    pub params: ParamVector,
    /// "User satisfaction" of the selected label.
    pub satisfaction: f64,
    /// Accumulated cost of the selected label (Figure 4, Step 6).
    pub accumulated_cost: f64,
}

impl TraceRow {
    /// "Delivered Frame Rate" column: the frame-rate parameter, if any.
    pub fn delivered_frame_rate(&self) -> Option<f64> {
        self.params.get(Axis::FrameRate)
    }
}

/// The full trace of one selection run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectionTrace {
    /// One row per round, in order.
    pub rows: Vec<TraceRow>,
}

impl SelectionTrace {
    /// Truncate (not round) to two decimals — the paper prints 23/30 as
    /// `0.76` and 20/30 as `0.66`.
    pub fn truncate2(x: f64) -> f64 {
        (x * 100.0).floor() / 100.0
    }

    /// Render the trace in the shape of the paper's Table 1.
    pub fn to_table1_string(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Round | Considered Set (VT) | Candidate set (CS) | Selected | Selected Path | Delivered Frame Rate | User satisfaction\n",
        );
        for row in &self.rows {
            let fps = row
                .delivered_frame_rate()
                .map(|f| format!("{}", f.round() as i64))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{} | {{ {} }} | {{ {} }} | {} | {} | {} | {:.2}\n",
                row.round,
                row.considered.join(", "),
                row.candidates.join(", "),
                row.selected,
                row.selected_path.join(","),
                fps,
                SelectionTrace::truncate2(row.satisfaction),
            ));
        }
        out
    }

    /// The final row, if any round ran.
    pub fn last(&self) -> Option<&TraceRow> {
        self.rows.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_matches_paper_rounding() {
        assert_eq!(SelectionTrace::truncate2(23.0 / 30.0), 0.76);
        assert_eq!(SelectionTrace::truncate2(20.0 / 30.0), 0.66);
        assert_eq!(SelectionTrace::truncate2(0.9), 0.90);
        assert_eq!(SelectionTrace::truncate2(1.0), 1.00);
    }

    #[test]
    fn table_rendering_contains_rows() {
        let trace = SelectionTrace {
            rows: vec![TraceRow {
                round: 1,
                considered: vec!["sender".to_string()],
                candidates: vec!["T1".to_string(), "T2".to_string()],
                selected: "T1".to_string(),
                selected_path: vec!["sender".to_string(), "T1".to_string()],
                params: ParamVector::from_pairs([(Axis::FrameRate, 30.0)]),
                satisfaction: 1.0,
                accumulated_cost: 1.0,
            }],
        };
        let table = trace.to_table1_string();
        assert!(table.contains("1 | { sender } | { T1, T2 } | T1 | sender,T1 | 30 | 1.00"));
    }

    #[test]
    fn delivered_frame_rate_absent_for_non_video() {
        let row = TraceRow {
            round: 1,
            considered: vec![],
            candidates: vec![],
            selected: String::new(),
            selected_path: vec![],
            params: ParamVector::from_pairs([(Axis::Fidelity, 40.0)]),
            satisfaction: 0.5,
            accumulated_cost: 0.0,
        };
        assert_eq!(row.delivered_frame_rate(), None);
    }
}
