//! Labels and the extension (relaxation) step shared by the greedy
//! algorithm and every baseline.
//!
//! Keeping [`extend`] in one place guarantees that the greedy search and
//! the exhaustive ground truth evaluate candidate services with *exactly*
//! the same semantics — which is what makes the Figure-5 optimality
//! property testable.

use crate::graph::{AdaptationGraph, EdgeId, VertexId, VertexKind};
use crate::Result;
use qosc_media::{AxisDomain, DomainVector, FormatId, FormatRegistry, ParamVector};
use qosc_satisfaction::{optimize, OptimizeOptions, Problem, SatisfactionProfile};
use qosc_services::ServiceId;

/// A search state: a vertex committed to one output format.
///
/// The paper's sets contain bare services; splitting by output format
/// keeps the greedy search exact for multi-output services (committing
/// to one output format cannot hide a chain through another) and
/// coincides with the paper's model when every service has one output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateKey {
    /// The vertex.
    pub vertex: VertexId,
    /// The output format the vertex emits in this state.
    pub output_format: FormatId,
}

/// The label of a settled or candidate state.
///
/// All fields are plain values (`ParamVector` is a fixed-size axis
/// array), so labels are `Copy` and the greedy search can hold them in
/// dense slot arrays without indirection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Label {
    /// The labelled state.
    pub state: StateKey,
    /// Configured output parameters of the vertex in this state.
    pub params: ParamVector,
    /// User satisfaction of this state's configuration, clamped to the
    /// parent's satisfaction (quality monotonicity, Section 4.4).
    pub satisfaction: f64,
    /// Accumulated cost from the sender up to and including this vertex
    /// (Figure 4, Step 6).
    pub accumulated_cost: f64,
    /// The edge this label arrived through (`None` for sender states).
    pub via_edge: Option<EdgeId>,
    /// The parent state (`None` for sender states).
    pub parent: Option<StateKey>,
}

/// Shared context for label extension.
pub struct ExtendContext<'a> {
    /// The adaptation graph.
    pub graph: &'a AdaptationGraph,
    /// The format registry (bitrate models live on the format specs).
    pub formats: &'a FormatRegistry,
    /// The user's (context-adjusted) satisfaction preferences.
    pub profile: &'a SatisfactionProfile,
    /// The user's total budget (`+∞` when unconstrained).
    pub budget: f64,
    /// Optimizer tuning.
    pub optimizer: OptimizeOptions,
    /// Probation penalties, sorted by [`ServiceId`]: effective-QoS
    /// ratios (PPM, 1_000_000 = unpenalized) that scale a probated
    /// service's satisfaction score. Deprioritizes grey-failing
    /// services in selection without de-advertising them; an empty
    /// slice (the healthy path) leaves every score bit-identical to
    /// the penalty-free algorithm.
    pub penalties: &'a [(ServiceId, u64)],
}

impl ExtendContext<'_> {
    /// Initial labels for the sender: one state per content variant, in
    /// listing order. The sender's configuration is the variant's best
    /// offer; its cost is zero.
    pub fn sender_labels(&self) -> Result<Vec<Label>> {
        let sender = match self.graph.sender() {
            Some(s) => s,
            None => return Ok(Vec::new()),
        };
        let vertex = self.graph.vertex(sender)?;
        let mut labels = Vec::with_capacity(vertex.conversions.len());
        for conversion in &vertex.conversions {
            let params = conversion.output_domain.top();
            labels.push(Label {
                state: StateKey {
                    vertex: sender,
                    output_format: conversion.output,
                },
                // The master content is the reference: downstream labels
                // are capped by the variant's *parameters* (and by their
                // own scores), so scoring the master here would only
                // matter through the monotonicity clamp — where it would
                // wrongly zero kind-changing chains (a video master has
                // no text axes to score).
                satisfaction: 1.0,
                params,
                accumulated_cost: 0.0,
                via_edge: None,
                parent: None,
            });
        }
        Ok(labels)
    }

    /// Extend `parent` across `edge`: evaluate every conversion of the
    /// target vertex that accepts the edge's format, and return the best
    /// candidate label per output format (Step 2 / Step 8 of Figure 4).
    ///
    /// An empty result means the target cannot be used from this parent:
    /// no conversion matches, the upstream quality is below everything
    /// the target can produce, or no configuration fits the bandwidth and
    /// budget constraints.
    pub fn extend(&self, parent: &Label, edge_id: EdgeId) -> Result<Vec<Label>> {
        let mut best = Vec::new();
        self.extend_into(parent, edge_id, &mut best)?;
        Ok(best)
    }

    /// Allocation-free form of [`extend`](ExtendContext::extend): clears
    /// `best` and fills it with the best candidate label per output
    /// format of the target. The greedy hot path passes one reusable
    /// scratch buffer here for every edge expansion instead of
    /// allocating a fresh `Vec` per edge.
    pub fn extend_into(
        &self,
        parent: &Label,
        edge_id: EdgeId,
        best: &mut Vec<Label>,
    ) -> Result<()> {
        best.clear();
        let edge = self.graph.edge(edge_id)?;
        debug_assert_eq!(edge.format, parent.state.output_format);
        let target = self.graph.vertex(edge.to)?;
        let edge_bitrate = &self.formats.spec(edge.format)?.bitrate;
        let remaining_budget = self.budget - parent.accumulated_cost;
        if remaining_budget < -1e-12 {
            return Ok(());
        }
        for conversion in target.conversions_from(edge.format) {
            let domain = match target.kind {
                // The receiver renders what arrives: its feasible
                // "output" is anything up to the delivered quality,
                // capped by its hardware (device profile).
                VertexKind::Receiver => receiver_domain(&parent.params, self.graph.receiver_caps()),
                _ => match conversion.output_domain.capped_by(&parent.params) {
                    Some(d) => d,
                    None => continue, // upstream already below this service's floor
                },
            };

            let price_per_second = target.price_per_second + edge.price_flat;
            let price_per_mbit = target.price_per_mbit + edge.price_per_mbit;
            let cost = move |p: &ParamVector| {
                let rate = edge_bitrate.bits_per_second(p);
                price_per_second + price_per_mbit * rate / 1e6
            };
            let problem = Problem {
                profile: self.profile,
                domain: &domain,
                bitrate: edge_bitrate,
                bandwidth_limit: edge.available_bps,
                cost: &cost,
                budget: remaining_budget,
            };
            let optimum = match optimize(&problem, &self.optimizer) {
                Some(o) => o,
                None => continue, // infeasible under Equa. 2 / budget
            };

            // Probation penalty: a probated service's score shrinks by
            // its observed effective-QoS ratio, so selection routes
            // around grey failures whenever an alternative chain
            // exists — but can still use the probated service when it
            // is the only path (soft demotion, not exclusion).
            let mut scored = optimum.satisfaction;
            if !self.penalties.is_empty() {
                if let VertexKind::Transcoder(id) = target.kind {
                    if let Ok(slot) = self.penalties.binary_search_by_key(&id, |&(s, _)| s) {
                        scored *= self.penalties[slot].1 as f64 / 1e6;
                    }
                }
            }
            // Quality monotonicity: a trans-coding service can only
            // reduce the quality (Section 4.4).
            let satisfaction = scored.min(parent.satisfaction);
            let candidate = Label {
                state: StateKey {
                    vertex: edge.to,
                    output_format: conversion.output,
                },
                params: optimum.params,
                satisfaction,
                accumulated_cost: parent.accumulated_cost + optimum.cost,
                via_edge: Some(edge_id),
                parent: Some(parent.state),
            };
            match best
                .iter_mut()
                .find(|l| l.state.output_format == conversion.output)
            {
                Some(existing) => {
                    if candidate.satisfaction > existing.satisfaction
                        || (candidate.satisfaction == existing.satisfaction
                            && candidate.accumulated_cost < existing.accumulated_cost)
                    {
                        *existing = candidate;
                    }
                }
                None => best.push(candidate),
            }
        }
        Ok(())
    }
}

/// The receiver's feasible rendering domain: every axis the content
/// carries, from zero up to the delivered value capped by the device
/// hardware. Returns an empty domain for an empty parameter vector.
fn receiver_domain(delivered: &ParamVector, hardware_caps: &ParamVector) -> DomainVector {
    let capped = delivered.meet(hardware_caps);
    let mut domain = DomainVector::new();
    for (axis, value) in capped.iter() {
        domain.set(
            axis,
            AxisDomain::Continuous {
                min: 0.0,
                max: value,
            },
        );
    }
    domain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build::build;
    use crate::graph::BuildInput;
    use qosc_media::Axis;
    use qosc_media::{AxisDomain, ContentVariant, FormatSpec, MediaKind};
    use qosc_netsim::{Network, Node, Topology};
    use qosc_profiles::{ConversionSpec, ServiceSpec};
    use qosc_satisfaction::SatisfactionProfile;
    use qosc_services::{ServiceRegistry, TranscoderDescriptor};

    /// sender --A--> T --B--> receiver, frame-rate axis, linear bitrates.
    struct Fixture {
        formats: FormatRegistry,
        graph: AdaptationGraph,
        profile: SatisfactionProfile,
    }

    fn fixture(t_cap: f64, last_link_bps: f64) -> Fixture {
        let mut formats = FormatRegistry::new();
        let linear = qosc_media::BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        let fa = formats.register(FormatSpec::new("A", MediaKind::Video, linear));
        let fb = formats.register(FormatSpec::new("B", MediaKind::Video, linear));

        let mut topo = Topology::new();
        let s = topo.add_node(Node::unconstrained("s"));
        let m = topo.add_node(Node::unconstrained("m"));
        let r = topo.add_node(Node::unconstrained("r"));
        topo.connect_simple(s, m, 1e9).unwrap();
        topo.connect_simple(m, r, last_link_bps).unwrap();
        let network = Network::new(topo);

        let mut services = ServiceRegistry::new();
        let spec = ServiceSpec::new(
            "T",
            vec![ConversionSpec::new(
                "A",
                "B",
                DomainVector::new().with(
                    Axis::FrameRate,
                    AxisDomain::Continuous {
                        min: 0.0,
                        max: t_cap,
                    },
                ),
            )],
        );
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, m).unwrap());

        let variants = vec![ContentVariant::new(
            fa,
            DomainVector::new().with(
                Axis::FrameRate,
                AxisDomain::Continuous {
                    min: 0.0,
                    max: 30.0,
                },
            ),
        )];
        let graph = build(&BuildInput {
            formats: &formats,
            services: &services,
            network: &network,
            variants: &variants,
            sender_host: s,
            receiver_host: r,
            decoders: &[fb],
            receiver_caps: ParamVector::new(),
        })
        .unwrap();

        Fixture {
            formats,
            graph,
            profile: SatisfactionProfile::paper_table1(),
        }
    }

    fn ctx(f: &Fixture) -> ExtendContext<'_> {
        ExtendContext {
            graph: &f.graph,
            formats: &f.formats,
            profile: &f.profile,
            budget: f64::INFINITY,
            optimizer: OptimizeOptions::default(),
            penalties: &[],
        }
    }

    #[test]
    fn sender_labels_use_variant_tops() {
        let f = fixture(30.0, 1e9);
        let labels = ctx(&f).sender_labels().unwrap();
        assert_eq!(labels.len(), 1);
        assert_eq!(labels[0].params.get(Axis::FrameRate), Some(30.0));
        assert_eq!(labels[0].satisfaction, 1.0);
        assert_eq!(labels[0].accumulated_cost, 0.0);
    }

    #[test]
    fn extend_caps_by_service_domain() {
        let f = fixture(23.0, 1e9);
        let context = ctx(&f);
        let sender_label = &context.sender_labels().unwrap()[0];
        let e = f.graph.out_edges(f.graph.sender().unwrap())[0];
        let labels = context.extend(sender_label, e).unwrap();
        assert_eq!(labels.len(), 1);
        assert_eq!(labels[0].params.get(Axis::FrameRate), Some(23.0));
        assert!((labels[0].satisfaction - 23.0 / 30.0).abs() < 1e-12);
        assert_eq!(labels[0].parent, Some(sender_label.state));
    }

    #[test]
    fn extend_to_receiver_respects_last_edge_bandwidth() {
        // 18 kbit/s on the last link caps the receiver at 18 fps even
        // though the service delivered 30.
        let f = fixture(30.0, 18_000.0);
        let context = ctx(&f);
        let sender_label = &context.sender_labels().unwrap()[0];
        let e_in = f.graph.out_edges(f.graph.sender().unwrap())[0];
        let t_label = context.extend(sender_label, e_in).unwrap().remove(0);
        assert_eq!(t_label.params.get(Axis::FrameRate), Some(30.0));

        let t_vertex = t_label.state.vertex;
        let e_out = f.graph.out_edges(t_vertex)[0];
        let r_labels = context.extend(&t_label, e_out).unwrap();
        assert_eq!(r_labels.len(), 1);
        let fps = r_labels[0].params.get(Axis::FrameRate).unwrap();
        assert!((fps - 18.0).abs() < 1e-4, "got {fps}");
        assert!((r_labels[0].satisfaction - 0.6).abs() < 1e-4);
    }

    #[test]
    fn receiver_hardware_caps_apply() {
        let mut f = fixture(30.0, 1e9);
        f.graph
            .set_receiver_caps(ParamVector::from_pairs([(Axis::FrameRate, 12.0)]));
        let context = ctx(&f);
        let sender_label = &context.sender_labels().unwrap()[0];
        let e_in = f.graph.out_edges(f.graph.sender().unwrap())[0];
        let t_label = context.extend(sender_label, e_in).unwrap().remove(0);
        let e_out = f.graph.out_edges(t_label.state.vertex)[0];
        let r_label = context.extend(&t_label, e_out).unwrap().remove(0);
        assert_eq!(r_label.params.get(Axis::FrameRate), Some(12.0));
    }

    #[test]
    fn budget_exhaustion_prunes_extension() {
        let f = fixture(30.0, 1e9);
        let mut context = ctx(&f);
        context.budget = 0.0;
        // Free services and links: still extendable at zero cost.
        let sender_label = &context.sender_labels().unwrap()[0];
        let e = f.graph.out_edges(f.graph.sender().unwrap())[0];
        assert_eq!(context.extend(sender_label, e).unwrap().len(), 1);

        // A parent that already overspent cannot extend.
        let broke = Label {
            accumulated_cost: 5.0,
            ..*sender_label
        };
        assert!(context.extend(&broke, e).unwrap().is_empty());
    }

    #[test]
    fn satisfaction_clamped_to_parent() {
        let f = fixture(30.0, 1e9);
        let context = ctx(&f);
        let sender_label = &context.sender_labels().unwrap()[0];
        let mut degraded = *sender_label;
        degraded.satisfaction = 0.5;
        let e = f.graph.out_edges(f.graph.sender().unwrap())[0];
        let labels = context.extend(&degraded, e).unwrap();
        assert_eq!(labels[0].satisfaction, 0.5, "clamped to parent");
    }
}
