//! The greedy QoS selection algorithm — Figure 4 of the paper.
//!
//! ```text
//! Step 1: VT = {sender}; CS = neighbor(sender)
//! Step 2: for each Ti in CS: Optimize(...)           → candidate labels
//! Step 3: if is_empty(CS): TERMINATE(FAILURE)
//! Step 4: select Ti with the highest Sat_T[i]; CS -= {Ti}
//! Step 5: VT += {Ti}
//! Step 6: Ti.previous = Tprev; accumulate cost
//! Step 7: if Ti = receiver: GOTO Step 10
//! Step 8: for each Tj in neighbors(Ti): Optimize(...); CS ∪= {Tj}
//! Step 9: GOTO Step 3
//! Step 10: print the reverse path from the receiver
//! ```
//!
//! The search runs over `(vertex, output format)` states (see
//! [`StateKey`](crate::select::label::StateKey)); each round settles the
//! candidate with the highest constrained-optimal satisfaction. Because
//! extension never increases satisfaction (quality monotonicity), the
//! first settled receiver state carries the maximum achievable
//! satisfaction — the Figure-5 optimality argument.
//!
//! ## The zero-allocation hot path
//!
//! Every search structure lives in a per-thread scratch arena
//! ([`SelectScratch`]) reused across requests: the settled and candidate
//! label stores are dense generation-stamped slot arrays indexed by the
//! interned state handle `vertex × format_count + format`, the
//! lazy-deletion heap and all working buffers keep their capacity
//! between runs, and `VT` holds `VertexId`s instead of cloned name
//! strings (names are materialized only when a trace row is recorded).
//! Dominance pruning — dropping a relaxed label that does not beat the
//! incumbent of its state — is an O(1) slot comparison. The dense scan
//! order (vertex-major, format-minor) equals the `BTreeMap<StateKey, _>`
//! iteration order of the maps it replaced, so plans, traces, and
//! tie-breaks are bitwise identical to the allocating implementation.

use crate::graph::{AdaptationGraph, EdgeId, VertexId};
use crate::select::label::{ExtendContext, Label, StateKey};
use crate::select::trace::{SelectionTrace, TraceRow};
use crate::select::{ChainStep, SelectedChain};
use crate::Result;
use qosc_media::FormatRegistry;
use qosc_satisfaction::{OptimizeOptions, SatisfactionProfile};
use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Deterministic tie-breaking among equally satisfying candidates.
///
/// The primary key is always satisfaction (descending). The policy picks
/// among exact ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Cheaper accumulated cost first, then the most recently discovered
    /// candidate (DFS-flavoured freshness). This is the unique policy
    /// consistent with all 15 rounds of the paper's Table 1.
    #[default]
    PaperOrder,
    /// First discovered first (BFS-flavoured).
    Fifo,
    /// Lowest vertex index first (arbitrary but stable).
    ByVertexIndex,
}

/// How Step 4's argmax over the candidate set is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateStore {
    /// A lazy-deletion binary heap keyed by an order-encoding of the
    /// tie-break policy: O(log n) per round. Produces *exactly* the same
    /// selection sequence as [`CandidateStore::LinearScan`] (asserted by
    /// tests); the default.
    #[default]
    BinaryHeap,
    /// A linear scan over the candidate slots: the reference
    /// implementation, O(n) per round — "textbook Dijkstra without a
    /// heap".
    LinearScan,
}

/// Options for [`select_chain`].
#[derive(Debug, Clone, Copy)]
pub struct SelectOptions {
    /// Tie-breaking policy.
    pub tie_break: TieBreak,
    /// Candidate-set data structure.
    pub candidate_store: CandidateStore,
    /// Parameter-optimizer tuning.
    pub optimizer: OptimizeOptions,
    /// Record the full Table-1 trace (costs VT/CS snapshots per round).
    pub record_trace: bool,
    /// Safety valve on rounds (defaults to effectively unlimited).
    pub max_rounds: usize,
    /// Evaluate the Step-2/Step-8 `Optimize()` calls for a settled
    /// label's out-edges on a scoped thread pool instead of in edge
    /// order. The per-edge evaluations are independent (they read only
    /// the settled label and the shared graph), and their results are
    /// merged back *in edge order*, so the candidate relaxation
    /// sequence — and with it the selection trace — is bitwise
    /// identical to the sequential mode (asserted by tests). Off by
    /// default; worthwhile only when single-edge optimization is
    /// expensive relative to thread handoff.
    pub parallel_expand: bool,
    /// Wall-clock deadline for this selection run, checked between
    /// rounds. `None` (the default) never trips, keeping seeded runs
    /// deterministic; the resilient engine sets it from a per-request
    /// latency budget so a pathological search returns
    /// [`SelectFailure::DeadlineExceeded`] instead of stalling a worker.
    pub deadline: Option<std::time::Instant>,
}

impl Default for SelectOptions {
    fn default() -> SelectOptions {
        SelectOptions {
            tie_break: TieBreak::default(),
            candidate_store: CandidateStore::default(),
            optimizer: OptimizeOptions::default(),
            record_trace: true,
            max_rounds: usize::MAX,
            parallel_expand: false,
            deadline: None,
        }
    }
}

/// A heap entry: the order-encoded key plus enough to validate against
/// the candidate store on pop (lazy deletion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapEntry {
    key: [u64; 4],
    seq: u64,
    state: StateKey,
}

/// Encode (label, policy) into a lexicographically max-ordered key that
/// reproduces the linear scan's selection order exactly. Satisfaction
/// and cost are non-negative finite floats, so `f64::to_bits` is
/// monotone; descending components are bit-complemented.
fn heap_key(tie_break: TieBreak, label: &Label, seq: u64) -> [u64; 4] {
    let sat = label.satisfaction.to_bits();
    let state_code =
        ((label.state.vertex.index() as u64) << 32) | label.state.output_format.index() as u64;
    match tie_break {
        TieBreak::PaperOrder => [sat, !label.accumulated_cost.to_bits(), seq, !state_code],
        TieBreak::Fifo => [sat, !seq, !state_code, 0],
        TieBreak::ByVertexIndex => [
            sat,
            !(label.state.vertex.index() as u64),
            !(label.state.output_format.index() as u64),
            !seq,
        ],
    }
}

/// Why a selection run returned no chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectFailure {
    /// Step 3: the candidate set ran empty before the receiver was
    /// reached — "TERMINATE(FAILURE)".
    CandidatesExhausted,
    /// The graph has no sender or no receiver vertex.
    MissingEndpoints,
    /// The round safety valve tripped.
    RoundLimit,
    /// The per-request deadline passed between rounds
    /// ([`SelectOptions::deadline`]).
    DeadlineExceeded,
}

impl std::fmt::Display for SelectFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectFailure::CandidatesExhausted => {
                write!(
                    f,
                    "TERMINATE(FAILURE): candidate set exhausted before the receiver"
                )
            }
            SelectFailure::MissingEndpoints => write!(f, "graph lacks a sender or receiver"),
            SelectFailure::RoundLimit => write!(f, "round limit exceeded"),
            SelectFailure::DeadlineExceeded => write!(f, "per-request deadline exceeded"),
        }
    }
}

/// The outcome of one selection run.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// The selected chain, if the receiver was reached.
    pub chain: Option<SelectedChain>,
    /// Why no chain was produced (when `chain` is `None`).
    pub failure: Option<SelectFailure>,
    /// The round-by-round trace (empty unless `record_trace`).
    pub trace: SelectionTrace,
    /// Number of rounds executed.
    pub rounds: usize,
    /// Number of candidate optimizations performed (Step 2/8 calls).
    pub optimizations: usize,
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    label: Label,
    /// Global discovery sequence; later relaxations get a fresh number.
    seq: u64,
}

/// The interned state handle: states are `(vertex, output format)`
/// pairs, so `vertex × format_count + format` enumerates them
/// vertex-major, format-minor — exactly the `Ord` of [`StateKey`],
/// which keeps dense scans identical to iteration over the `BTreeMap`s
/// this replaced.
fn state_index(state: StateKey, format_count: usize) -> usize {
    state.vertex.index() * format_count + state.output_format.index()
}

/// A dense slot store over state handles with generation stamps: O(1)
/// insert/lookup/remove/dominance-check, O(1) clear (one counter bump),
/// in-order scans. Slots keep their capacity across requests.
struct StateSlots<T> {
    generation: u32,
    stamps: Vec<u32>,
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> StateSlots<T> {
    fn new() -> StateSlots<T> {
        StateSlots {
            generation: 0,
            stamps: Vec::new(),
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Start a fresh request over `states` dense handles: grow capacity
    /// if needed and invalidate every slot by bumping the generation.
    fn reset(&mut self, states: usize) {
        if self.stamps.len() < states {
            self.stamps.resize(states, 0);
            self.slots.resize_with(states, || None);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // The 32-bit stamp space wrapped: rewrite every stamp so no
            // slot from 2^32 requests ago can masquerade as live.
            self.stamps.fill(0);
            self.generation = 1;
        }
        self.len = 0;
    }

    fn get(&self, index: usize) -> Option<&T> {
        if self.stamps[index] == self.generation {
            self.slots[index].as_ref()
        } else {
            None
        }
    }

    fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        if self.stamps[index] == self.generation {
            self.slots[index].as_mut()
        } else {
            None
        }
    }

    fn contains(&self, index: usize) -> bool {
        self.stamps[index] == self.generation && self.slots[index].is_some()
    }

    fn insert(&mut self, index: usize, value: T) {
        if !self.contains(index) {
            self.len += 1;
        }
        self.stamps[index] = self.generation;
        self.slots[index] = Some(value);
    }

    fn remove(&mut self, index: usize) -> Option<T> {
        if self.stamps[index] != self.generation {
            return None;
        }
        let taken = self.slots[index].take();
        if taken.is_some() {
            self.len -= 1;
        }
        taken
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Live slots in ascending dense-handle order (vertex-major,
    /// format-minor — the `StateKey` sort order).
    fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.stamps
            .iter()
            .zip(self.slots.iter())
            .filter_map(move |(&stamp, slot)| {
                if stamp == self.generation {
                    slot.as_ref()
                } else {
                    None
                }
            })
    }
}

/// Per-thread reusable scratch for [`select_chain`]: in steady state a
/// selection run performs no heap allocation of its own (trace rows and
/// the returned chain still allocate, but only when requested).
struct SelectScratch {
    /// Settled labels per state (Step 5).
    settled: StateSlots<Label>,
    /// Candidate set: best label per state (Steps 2/8, dominance-pruned
    /// on relaxation).
    candidates: StateSlots<Candidate>,
    /// Lazy-deletion heap for [`CandidateStore::BinaryHeap`].
    heap: BinaryHeap<HeapEntry>,
    /// CS display order: states in discovery order.
    cs_discovery: Vec<StateKey>,
    /// VT display order: settled vertices (names materialized only for
    /// trace rows; dedup is by *name*, matching the paper's tables).
    vt: Vec<VertexId>,
    /// Out-edges of the settling vertex matching its committed format.
    matching: Vec<EdgeId>,
    /// Relaxation buffer for [`ExtendContext::extend_into`].
    extend_buf: Vec<Label>,
    /// Requests served by this scratch (for the reuse telemetry).
    requests: u64,
}

impl SelectScratch {
    fn new() -> SelectScratch {
        SelectScratch {
            settled: StateSlots::new(),
            candidates: StateSlots::new(),
            heap: BinaryHeap::new(),
            cs_discovery: Vec::new(),
            vt: Vec::new(),
            matching: Vec::new(),
            extend_buf: Vec::new(),
            requests: 0,
        }
    }

    fn reset(&mut self, states: usize) {
        self.settled.reset(states);
        self.candidates.reset(states);
        self.heap.clear();
        self.cs_discovery.clear();
        self.vt.clear();
        self.matching.clear();
        self.extend_buf.clear();
    }
}

thread_local! {
    static SCRATCH: RefCell<SelectScratch> = RefCell::new(SelectScratch::new());
}

/// Process-wide count of selection runs that reused a warm per-thread
/// scratch arena instead of starting from a cold one.
static ARENA_REUSES: AtomicU64 = AtomicU64::new(0);

/// Total scratch-arena reuses across all threads since process start
/// (the payload of the `arena_reused` telemetry event; scorecard use
/// only — never emitted on a traced request path).
pub fn arena_reuse_total() -> u64 {
    ARENA_REUSES.load(Ordering::Relaxed)
}

/// Run the QoS selection algorithm of Figure 4 on `graph`.
///
/// `budget` is "the amount of money the user is willing to pay" (Step 1);
/// pass `f64::INFINITY` when the user profile has none.
pub fn select_chain(
    graph: &AdaptationGraph,
    formats: &FormatRegistry,
    profile: &SatisfactionProfile,
    budget: f64,
    options: &SelectOptions,
) -> Result<SelectionOutcome> {
    select_chain_with_penalties(graph, formats, profile, budget, options, &[])
}

/// [`select_chain`] with probation penalties: each `(service,
/// effective_ppm)` pair scales that service's satisfaction score by
/// `effective_ppm / 1e6` during label extension, steering selection
/// around grey-failing services without excluding them. The slice must
/// be sorted by [`ServiceId`]
/// ([`ServiceRegistry::selection_penalties`](qosc_services::ServiceRegistry::selection_penalties)
/// maintains that invariant). An empty slice is bit-identical to
/// [`select_chain`].
pub fn select_chain_with_penalties(
    graph: &AdaptationGraph,
    formats: &FormatRegistry,
    profile: &SatisfactionProfile,
    budget: f64,
    options: &SelectOptions,
    penalties: &[(qosc_services::ServiceId, u64)],
) -> Result<SelectionOutcome> {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => {
            if scratch.requests > 0 {
                ARENA_REUSES.fetch_add(1, Ordering::Relaxed);
            }
            scratch.requests += 1;
            select_with_scratch(
                graph,
                formats,
                profile,
                budget,
                options,
                penalties,
                &mut scratch,
            )
        }
        // Re-entrant call on this thread (defensive): run on a fresh,
        // throwaway arena rather than aliasing the live one.
        Err(_) => select_with_scratch(
            graph,
            formats,
            profile,
            budget,
            options,
            penalties,
            &mut SelectScratch::new(),
        ),
    })
}

fn select_with_scratch(
    graph: &AdaptationGraph,
    formats: &FormatRegistry,
    profile: &SatisfactionProfile,
    budget: f64,
    options: &SelectOptions,
    penalties: &[(qosc_services::ServiceId, u64)],
    scratch: &mut SelectScratch,
) -> Result<SelectionOutcome> {
    let context = ExtendContext {
        graph,
        formats,
        profile,
        budget,
        optimizer: options.optimizer,
        penalties,
    };

    let (sender, receiver) = match (graph.sender(), graph.receiver()) {
        (Some(s), Some(r)) => (s, r),
        _ => {
            return Ok(SelectionOutcome {
                chain: None,
                failure: Some(SelectFailure::MissingEndpoints),
                trace: SelectionTrace::default(),
                rounds: 0,
                optimizations: 0,
            })
        }
    };

    let format_count = formats.len();
    scratch.reset(graph.vertex_count() * format_count);
    scratch.vt.push(sender);
    let mut next_seq: u64 = 0;
    let mut optimizations: usize = 0;

    // Step 1: settle the sender states, seed CS with its neighbors.
    let sender_labels = context.sender_labels()?;
    for label in &sender_labels {
        scratch
            .settled
            .insert(state_index(label.state, format_count), *label);
    }
    for label in &sender_labels {
        expand(
            &context,
            options,
            label,
            scratch,
            format_count,
            &mut next_seq,
            &mut optimizations,
        )?;
    }

    let mut trace = SelectionTrace::default();
    let mut rounds = 0usize;

    loop {
        // Step 3.
        if scratch.candidates.is_empty() {
            return Ok(SelectionOutcome {
                chain: None,
                failure: Some(SelectFailure::CandidatesExhausted),
                trace,
                rounds,
                optimizations,
            });
        }
        if let Some(deadline) = options.deadline {
            if std::time::Instant::now() >= deadline {
                return Ok(SelectionOutcome {
                    chain: None,
                    failure: Some(SelectFailure::DeadlineExceeded),
                    trace,
                    rounds,
                    optimizations,
                });
            }
        }
        if rounds >= options.max_rounds {
            return Ok(SelectionOutcome {
                chain: None,
                failure: Some(SelectFailure::RoundLimit),
                trace,
                rounds,
                optimizations,
            });
        }
        rounds += 1;

        // Step 4: select the candidate with the highest satisfaction.
        let best_state = match options.candidate_store {
            CandidateStore::LinearScan => pick_best(&scratch.candidates, options.tie_break),
            CandidateStore::BinaryHeap => {
                pick_best_heap(&mut scratch.heap, &scratch.candidates, format_count)
            }
        };
        let Candidate { label, .. } = scratch
            .candidates
            .remove(state_index(best_state, format_count))
            .expect("picked from slots");

        if options.record_trace {
            trace.rows.push(make_row(
                graph,
                rounds,
                &scratch.vt,
                &scratch.cs_discovery,
                &scratch.candidates,
                &label,
                &scratch.settled,
                format_count,
                receiver,
            )?);
        }

        // Step 5 / Step 6. VT dedup is by display *name* (distinct
        // vertices may share one), matching the paper's tables.
        let name = &graph.vertex(label.state.vertex)?.name;
        let mut seen = false;
        for &vertex in &scratch.vt {
            if &graph.vertex(vertex)?.name == name {
                seen = true;
                break;
            }
        }
        if !seen {
            scratch.vt.push(label.state.vertex);
        }
        scratch
            .settled
            .insert(state_index(label.state, format_count), label);
        let candidates = &scratch.candidates;
        scratch
            .cs_discovery
            .retain(|s| candidates.contains(state_index(*s, format_count)));

        // Step 7.
        if label.state.vertex == receiver {
            let chain = reconstruct(graph, &scratch.settled, &label, format_count)?;
            return Ok(SelectionOutcome {
                chain: Some(chain),
                failure: None,
                trace,
                rounds,
                optimizations,
            });
        }

        // Step 8.
        expand(
            &context,
            options,
            &label,
            scratch,
            format_count,
            &mut next_seq,
            &mut optimizations,
        )?;
    }
}

/// Step 2 / Step 8: evaluate every neighbor of `label` and relax it into
/// the candidate set.
fn expand(
    context: &ExtendContext<'_>,
    options: &SelectOptions,
    label: &Label,
    scratch: &mut SelectScratch,
    format_count: usize,
    next_seq: &mut u64,
    optimizations: &mut usize,
) -> Result<()> {
    let SelectScratch {
        settled,
        candidates,
        heap,
        cs_discovery,
        matching,
        extend_buf,
        ..
    } = scratch;

    let graph = context.graph;
    matching.clear();
    for &edge_id in graph.out_edges(label.state.vertex) {
        let edge = graph.edge(edge_id)?;
        if edge.format != label.state.output_format {
            continue; // the vertex committed to a different output format
        }
        matching.push(edge_id);
    }

    // Evaluate Optimize() per edge — in parallel when asked — and merge
    // in edge order. Each evaluation reads only the shared graph and the
    // settled label, so parallel evaluation changes scheduling, never
    // results; the in-order merge keeps seq numbering (and the trace)
    // bitwise identical to sequential mode.
    if options.parallel_expand && matching.len() > 1 {
        for batch in evaluate_edges_parallel(context, label, matching) {
            *optimizations += 1;
            for candidate in batch? {
                relax(
                    options,
                    settled,
                    candidates,
                    heap,
                    cs_discovery,
                    next_seq,
                    format_count,
                    candidate,
                );
            }
        }
    } else {
        for &edge_id in matching.iter() {
            context.extend_into(label, edge_id, extend_buf)?;
            *optimizations += 1;
            for &candidate in extend_buf.iter() {
                relax(
                    options,
                    settled,
                    candidates,
                    heap,
                    cs_discovery,
                    next_seq,
                    format_count,
                    candidate,
                );
            }
        }
    }
    Ok(())
}

/// Relax one freshly optimized label into the candidate store: dropped
/// when its state is settled, dominance-pruned against the incumbent of
/// its state (better satisfaction, then lower cost, wins), admitted
/// otherwise. Every generated label draws a discovery sequence number
/// whether or not it survives — the tie-break policies depend on it.
#[allow(clippy::too_many_arguments)]
fn relax(
    options: &SelectOptions,
    settled: &StateSlots<Label>,
    candidates: &mut StateSlots<Candidate>,
    heap: &mut BinaryHeap<HeapEntry>,
    cs_discovery: &mut Vec<StateKey>,
    next_seq: &mut u64,
    format_count: usize,
    candidate: Label,
) {
    let state = candidate.state;
    let index = state_index(state, format_count);
    if settled.contains(index) {
        return;
    }
    let seq = *next_seq;
    *next_seq += 1;
    match candidates.get_mut(index) {
        Some(existing) => {
            let better = candidate.satisfaction > existing.label.satisfaction
                || (candidate.satisfaction == existing.label.satisfaction
                    && candidate.accumulated_cost < existing.label.accumulated_cost);
            if better {
                if options.candidate_store == CandidateStore::BinaryHeap {
                    heap.push(HeapEntry {
                        key: heap_key(options.tie_break, &candidate, seq),
                        seq,
                        state,
                    });
                }
                existing.label = candidate;
                existing.seq = seq;
            }
        }
        None => {
            if options.candidate_store == CandidateStore::BinaryHeap {
                heap.push(HeapEntry {
                    key: heap_key(options.tie_break, &candidate, seq),
                    seq,
                    state,
                });
            }
            candidates.insert(
                index,
                Candidate {
                    label: candidate,
                    seq,
                },
            );
            cs_discovery.push(state);
        }
    }
}

/// Evaluate `context.extend(label, edge)` for every edge on a scoped
/// worker pool, returning results indexed by the edge's position in
/// `edges` (so the caller can merge in edge order).
fn evaluate_edges_parallel(
    context: &ExtendContext<'_>,
    label: &Label,
    edges: &[EdgeId],
) -> Vec<Result<Vec<Label>>> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(edges.len());
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<Result<Vec<Label>>>> = (0..edges.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&edge_id) = edges.get(index) else {
                            return local;
                        };
                        local.push((index, context.extend(label, edge_id)));
                    }
                })
            })
            .collect();
        for handle in handles {
            for (index, result) in handle.join().expect("edge evaluation worker panicked") {
                out[index] = Some(result);
            }
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every edge index claimed by exactly one worker"))
        .collect()
}

/// Step 4's argmax via the lazy-deletion heap: pop entries until one
/// still matches the candidate store's current generation for its state.
fn pick_best_heap(
    heap: &mut BinaryHeap<HeapEntry>,
    candidates: &StateSlots<Candidate>,
    format_count: usize,
) -> StateKey {
    while let Some(entry) = heap.pop() {
        if let Some(current) = candidates.get(state_index(entry.state, format_count)) {
            if current.seq == entry.seq {
                return entry.state;
            }
        }
        // Stale: superseded by relaxation or already settled.
    }
    unreachable!("heap drained while candidates remain — generations out of sync")
}

/// Step 4's argmax with the configured tie-break: a scan over the dense
/// candidate slots, whose order equals the replaced `BTreeMap`'s.
fn pick_best(candidates: &StateSlots<Candidate>, tie_break: TieBreak) -> StateKey {
    let mut best: Option<&Candidate> = None;
    for candidate in candidates.iter() {
        let better = match best {
            None => true,
            Some(current) => {
                let sat = candidate.label.satisfaction;
                let best_sat = current.label.satisfaction;
                if sat != best_sat {
                    sat > best_sat
                } else {
                    match tie_break {
                        TieBreak::PaperOrder => {
                            let cost = candidate.label.accumulated_cost;
                            let best_cost = current.label.accumulated_cost;
                            if cost != best_cost {
                                cost < best_cost
                            } else {
                                candidate.seq > current.seq
                            }
                        }
                        TieBreak::Fifo => candidate.seq < current.seq,
                        TieBreak::ByVertexIndex => {
                            candidate.label.state.vertex < current.label.state.vertex
                        }
                    }
                }
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best.expect("candidates not empty").label.state
}

/// Build one Table-1 row for the round that settles `selected`. Only
/// trace recording materializes name strings; the hot path never does.
#[allow(clippy::too_many_arguments)]
fn make_row(
    graph: &AdaptationGraph,
    round: usize,
    vt: &[VertexId],
    cs_discovery: &[StateKey],
    remaining: &StateSlots<Candidate>,
    selected: &Label,
    settled: &StateSlots<Label>,
    format_count: usize,
    receiver: crate::graph::VertexId,
) -> Result<TraceRow> {
    // CS display: discovery order, receiver pinned last, deduplicated,
    // including the about-to-be-selected candidate (the paper shows the
    // CS at the *start* of the round).
    let mut cs_names: Vec<String> = Vec::new();
    let mut receiver_present = false;
    let mut push_state = |state: &StateKey, names: &mut Vec<String>| -> Result<()> {
        if state.vertex == receiver {
            receiver_present = true;
            return Ok(());
        }
        let name = &graph.vertex(state.vertex)?.name;
        if !names.contains(name) {
            names.push(name.clone());
        }
        Ok(())
    };
    for state in cs_discovery {
        if *state == selected.state || remaining.contains(state_index(*state, format_count)) {
            push_state(state, &mut cs_names)?;
        }
    }
    if selected.state.vertex == receiver {
        receiver_present = true;
    }
    if receiver_present {
        cs_names.push(graph.vertex(receiver)?.name.clone());
    }

    let mut considered: Vec<String> = Vec::with_capacity(vt.len());
    for &vertex in vt {
        considered.push(graph.vertex(vertex)?.name.clone());
    }
    let path = path_names(graph, settled, selected, format_count)?;
    Ok(TraceRow {
        round,
        considered,
        candidates: cs_names,
        selected: graph.vertex(selected.state.vertex)?.name.clone(),
        selected_path: path,
        params: selected.params,
        satisfaction: selected.satisfaction,
        accumulated_cost: selected.accumulated_cost,
    })
}

/// Names of the chain from the sender to `label`, via parent links
/// (Step 10's reverse walk).
fn path_names(
    graph: &AdaptationGraph,
    settled: &StateSlots<Label>,
    label: &Label,
    format_count: usize,
) -> Result<Vec<String>> {
    let mut names = vec![graph.vertex(label.state.vertex)?.name.clone()];
    let mut parent = label.parent;
    while let Some(state) = parent {
        names.push(graph.vertex(state.vertex)?.name.clone());
        parent = settled
            .get(state_index(state, format_count))
            .and_then(|l| l.parent);
    }
    names.reverse();
    Ok(names)
}

/// Step 10: materialize the full chain from the receiver's label.
fn reconstruct(
    graph: &AdaptationGraph,
    settled: &StateSlots<Label>,
    receiver_label: &Label,
    format_count: usize,
) -> Result<SelectedChain> {
    let mut steps: Vec<ChainStep> = Vec::new();
    let mut cursor: Option<&Label> = Some(receiver_label);
    while let Some(label) = cursor {
        steps.push(ChainStep {
            vertex: label.state.vertex,
            name: graph.vertex(label.state.vertex)?.name.clone(),
            output_format: label.state.output_format,
            params: label.params,
            satisfaction: label.satisfaction,
            accumulated_cost: label.accumulated_cost,
        });
        cursor = label
            .parent
            .and_then(|p| settled.get(state_index(p, format_count)));
    }
    steps.reverse();
    Ok(SelectedChain {
        satisfaction: receiver_label.satisfaction,
        total_cost: receiver_label.accumulated_cost,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build::build;
    use crate::graph::{BuildInput, VertexKind};
    use qosc_media::{
        Axis, AxisDomain, BitrateModel, ContentVariant, DomainVector, FormatSpec, MediaKind,
        ParamVector,
    };
    use qosc_netsim::{Network, Node, Topology};
    use qosc_profiles::{ConversionSpec, ServiceSpec};
    use qosc_services::{ServiceRegistry, TranscoderDescriptor};

    /// sender —A→ {T_fast(cap 30), T_slow(cap 20)} —B→ receiver.
    fn fork_fixture() -> (FormatRegistry, AdaptationGraph) {
        let mut formats = FormatRegistry::new();
        let linear = BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        let fa = formats.register(FormatSpec::new("A", MediaKind::Video, linear));
        let fb = formats.register(FormatSpec::new("B", MediaKind::Video, linear));

        let mut topo = Topology::new();
        let s = topo.add_node(Node::unconstrained("s"));
        let m1 = topo.add_node(Node::unconstrained("m1"));
        let m2 = topo.add_node(Node::unconstrained("m2"));
        let r = topo.add_node(Node::unconstrained("r"));
        topo.connect_simple(s, m1, 1e9).unwrap();
        topo.connect_simple(s, m2, 1e9).unwrap();
        topo.connect_simple(m1, r, 1e9).unwrap();
        topo.connect_simple(m2, r, 1e9).unwrap();
        let network = Network::new(topo);

        let mut services = ServiceRegistry::new();
        let cap_domain = |cap: f64| {
            DomainVector::new().with(
                Axis::FrameRate,
                AxisDomain::Continuous { min: 0.0, max: cap },
            )
        };
        let slow = ServiceSpec::new(
            "T_slow",
            vec![ConversionSpec::new("A", "B", cap_domain(20.0))],
        );
        let fast = ServiceSpec::new(
            "T_fast",
            vec![ConversionSpec::new("A", "B", cap_domain(30.0))],
        );
        services.register_static(TranscoderDescriptor::resolve(&slow, &formats, m1).unwrap());
        services.register_static(TranscoderDescriptor::resolve(&fast, &formats, m2).unwrap());

        let variants = vec![ContentVariant::new(fa, cap_domain(30.0))];
        let graph = build(&BuildInput {
            formats: &formats,
            services: &services,
            network: &network,
            variants: &variants,
            sender_host: s,
            receiver_host: r,
            decoders: &[fb],
            receiver_caps: ParamVector::new(),
        })
        .unwrap();
        (formats, graph)
    }

    #[test]
    fn picks_the_higher_satisfaction_branch() {
        let (formats, graph) = fork_fixture();
        let profile = qosc_satisfaction::SatisfactionProfile::paper_table1();
        let outcome = select_chain(
            &graph,
            &formats,
            &profile,
            f64::INFINITY,
            &SelectOptions::default(),
        )
        .unwrap();
        let chain = outcome.chain.expect("receiver reachable");
        assert_eq!(chain.names(), vec!["sender", "T_fast", "receiver"]);
        assert!((chain.satisfaction - 1.0).abs() < 1e-9);
        assert_eq!(chain.transcoder_count(), 1);
        assert!(outcome.failure.is_none());
    }

    #[test]
    fn trace_records_rounds() {
        let (formats, graph) = fork_fixture();
        let profile = qosc_satisfaction::SatisfactionProfile::paper_table1();
        let outcome = select_chain(
            &graph,
            &formats,
            &profile,
            f64::INFINITY,
            &SelectOptions::default(),
        )
        .unwrap();
        assert_eq!(outcome.trace.rows.len(), outcome.rounds);
        let first = &outcome.trace.rows[0];
        assert_eq!(first.considered, vec!["sender".to_string()]);
        assert_eq!(first.selected, "T_fast");
        assert!(first.candidates.contains(&"T_slow".to_string()));
        // Final row selects the receiver.
        let last = outcome.trace.last().unwrap();
        assert_eq!(last.selected, "receiver");
        assert_eq!(last.selected_path, vec!["sender", "T_fast", "receiver"]);
    }

    #[test]
    fn unreachable_receiver_terminates_failure() {
        let (formats, _) = fork_fixture();
        // A graph with only a sender and a receiver and no edges: the
        // candidate set starts empty.
        let graph = {
            let mut g = AdaptationGraph::new();
            g.add_vertex(crate::graph::Vertex {
                kind: VertexKind::Sender,
                name: "sender".to_string(),
                host: {
                    let mut t = Topology::new();
                    t.add_node(Node::unconstrained("x"))
                },
                conversions: vec![],
                price_per_second: 0.0,
                price_per_mbit: 0.0,
            });
            g.add_vertex(crate::graph::Vertex {
                kind: VertexKind::Receiver,
                name: "receiver".to_string(),
                host: {
                    let mut t = Topology::new();
                    t.add_node(Node::unconstrained("y"))
                },
                conversions: vec![],
                price_per_second: 0.0,
                price_per_mbit: 0.0,
            });
            g
        };
        let profile = qosc_satisfaction::SatisfactionProfile::paper_table1();
        let outcome = select_chain(
            &graph,
            &formats,
            &profile,
            f64::INFINITY,
            &SelectOptions::default(),
        )
        .unwrap();
        assert!(outcome.chain.is_none());
        assert_eq!(outcome.failure, Some(SelectFailure::CandidatesExhausted));
    }

    #[test]
    fn budget_zero_with_paid_links_fails() {
        // Rebuild the fork fixture with paid links.
        let mut formats = FormatRegistry::new();
        let linear = BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        let fa = formats.register(FormatSpec::new("A", MediaKind::Video, linear));
        let fb = formats.register(FormatSpec::new("B", MediaKind::Video, linear));
        let mut topo = Topology::new();
        let s = topo.add_node(Node::unconstrained("s"));
        let m = topo.add_node(Node::unconstrained("m"));
        let r = topo.add_node(Node::unconstrained("r"));
        for (a, b) in [(s, m), (m, r)] {
            topo.connect(qosc_netsim::Link {
                a,
                b,
                capacity_bps: 1e9,
                delay_us: 1_000,
                loss: 0.0,
                price_per_mbit: 0.0,
                price_flat: 1.0,
            })
            .unwrap();
        }
        let network = Network::new(topo);
        let mut services = ServiceRegistry::new();
        let spec = ServiceSpec::new(
            "T",
            vec![ConversionSpec::new(
                "A",
                "B",
                DomainVector::new().with(
                    Axis::FrameRate,
                    AxisDomain::Continuous {
                        min: 0.0,
                        max: 30.0,
                    },
                ),
            )],
        );
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, m).unwrap());
        let variants = vec![ContentVariant::new(
            fa,
            DomainVector::new().with(
                Axis::FrameRate,
                AxisDomain::Continuous {
                    min: 0.0,
                    max: 30.0,
                },
            ),
        )];
        let graph = build(&BuildInput {
            formats: &formats,
            services: &services,
            network: &network,
            variants: &variants,
            sender_host: s,
            receiver_host: r,
            decoders: &[fb],
            receiver_caps: ParamVector::new(),
        })
        .unwrap();
        let profile = qosc_satisfaction::SatisfactionProfile::paper_table1();

        // Budget 2 covers both hops; budget 0.5 covers neither.
        let ok = select_chain(&graph, &formats, &profile, 2.0, &SelectOptions::default()).unwrap();
        assert!(ok.chain.is_some());
        assert!((ok.chain.unwrap().total_cost - 2.0).abs() < 1e-9);

        let broke =
            select_chain(&graph, &formats, &profile, 0.5, &SelectOptions::default()).unwrap();
        assert!(broke.chain.is_none());
        assert_eq!(broke.failure, Some(SelectFailure::CandidatesExhausted));
    }

    #[test]
    fn expired_deadline_trips_between_rounds() {
        let (formats, graph) = fork_fixture();
        let profile = qosc_satisfaction::SatisfactionProfile::paper_table1();
        let options = SelectOptions {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            ..SelectOptions::default()
        };
        let outcome = select_chain(&graph, &formats, &profile, f64::INFINITY, &options).unwrap();
        assert!(outcome.chain.is_none());
        assert_eq!(outcome.failure, Some(SelectFailure::DeadlineExceeded));
        assert_eq!(outcome.rounds, 0, "tripped before the first settle");

        // A generous deadline changes nothing.
        let relaxed = SelectOptions {
            deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(3600)),
            ..SelectOptions::default()
        };
        let ok = select_chain(&graph, &formats, &profile, f64::INFINITY, &relaxed).unwrap();
        assert!(ok.chain.is_some());
    }

    #[test]
    fn round_limit_trips() {
        let (formats, graph) = fork_fixture();
        let profile = qosc_satisfaction::SatisfactionProfile::paper_table1();
        let options = SelectOptions {
            max_rounds: 1,
            ..SelectOptions::default()
        };
        let outcome = select_chain(&graph, &formats, &profile, f64::INFINITY, &options).unwrap();
        assert_eq!(outcome.failure, Some(SelectFailure::RoundLimit));
    }

    #[test]
    fn scratch_arena_reuse_is_counted_and_invisible() {
        let (formats, graph) = fork_fixture();
        let profile = qosc_satisfaction::SatisfactionProfile::paper_table1();
        let options = SelectOptions::default();
        let first = select_chain(&graph, &formats, &profile, f64::INFINITY, &options).unwrap();
        let before = arena_reuse_total();
        let second = select_chain(&graph, &formats, &profile, f64::INFINITY, &options).unwrap();
        assert!(
            arena_reuse_total() > before,
            "second run on this thread reuses the warm arena"
        );
        // Reuse must be observationally invisible: identical outcome.
        assert_eq!(
            format!("{:?}", first.trace.rows),
            format!("{:?}", second.trace.rows)
        );
        assert_eq!(first.chain.unwrap().names(), second.chain.unwrap().names());
    }

    #[test]
    fn heap_and_scan_agree_after_arena_reuse() {
        // Alternate candidate stores on one thread so both paths run on
        // a warm (previously used) arena, then compare selections.
        let (formats, graph) = fork_fixture();
        let profile = qosc_satisfaction::SatisfactionProfile::paper_table1();
        for _ in 0..3 {
            let heap = select_chain(
                &graph,
                &formats,
                &profile,
                f64::INFINITY,
                &SelectOptions {
                    candidate_store: CandidateStore::BinaryHeap,
                    ..SelectOptions::default()
                },
            )
            .unwrap();
            let scan = select_chain(
                &graph,
                &formats,
                &profile,
                f64::INFINITY,
                &SelectOptions {
                    candidate_store: CandidateStore::LinearScan,
                    ..SelectOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                format!("{:?}", heap.trace.rows),
                format!("{:?}", scan.trace.rows)
            );
        }
    }
}
