//! Backup chains: k alternates that avoid the primary's single points of
//! failure.
//!
//! The abstract's "resilient data distribution" gets much cheaper when a
//! session carries a pre-computed fallback: instead of re-running the
//! selection algorithm after a failure is detected, the session switches
//! to a chain known to avoid the dead component. [`alternates`] computes
//! them the simple, deterministic way: for each trans-coding vertex of
//! the primary chain, re-run the selection with that vertex removed, and
//! keep the distinct best results, ordered by satisfaction.

use crate::graph::{AdaptationGraph, VertexId};
use crate::select::greedy::{select_chain, SelectOptions};
use crate::select::SelectedChain;
use crate::Result;
use qosc_media::FormatRegistry;
use qosc_satisfaction::SatisfactionProfile;

/// A fallback chain and what it protects against.
#[derive(Debug, Clone)]
pub struct Alternate {
    /// The vertex of the primary chain whose loss this alternate
    /// survives (by construction it does not use that vertex).
    pub survives_loss_of: VertexId,
    /// Display name of that vertex.
    pub survives_loss_of_name: String,
    /// The fallback chain.
    pub chain: SelectedChain,
}

/// Compute fallbacks for `primary`: one candidate per trans-coding
/// vertex on the chain (skipping the endpoints), deduplicated, best
/// first, truncated to `k`.
///
/// A vertex with no feasible alternate (a true single point of failure)
/// simply yields no entry — callers can diff
/// `primary.transcoder_count()` against the result to find SPOFs.
pub fn alternates(
    graph: &AdaptationGraph,
    formats: &FormatRegistry,
    profile: &SatisfactionProfile,
    budget: f64,
    primary: &SelectedChain,
    k: usize,
    options: &SelectOptions,
) -> Result<Vec<Alternate>> {
    let mut found: Vec<Alternate> = Vec::new();
    let options = SelectOptions {
        record_trace: false,
        ..*options
    };
    for step in &primary.steps {
        let vertex = graph.vertex(step.vertex)?;
        if !matches!(vertex.kind, crate::graph::VertexKind::Transcoder(_)) {
            continue;
        }
        let reduced = remove_vertex(graph, step.vertex)?;
        let outcome = select_chain(&reduced, formats, profile, budget, &options)?;
        if let Some(mut chain) = outcome.chain {
            // The reduced graph re-indexes vertices; rebind steps to the
            // original graph by name so callers can act on them.
            for chain_step in &mut chain.steps {
                if let Some(original) = graph.vertex_by_name(&chain_step.name) {
                    chain_step.vertex = original;
                }
            }
            let duplicate = found.iter().any(|a| a.chain.names() == chain.names());
            if !duplicate || found.iter().all(|a| a.survives_loss_of != step.vertex) {
                found.push(Alternate {
                    survives_loss_of: step.vertex,
                    survives_loss_of_name: step.name.clone(),
                    chain,
                });
            }
        }
    }
    found.sort_by(|a, b| {
        b.chain
            .satisfaction
            .partial_cmp(&a.chain.satisfaction)
            .expect("satisfactions are finite")
            .then(a.survives_loss_of.cmp(&b.survives_loss_of))
    });
    found.truncate(k);
    Ok(found)
}

/// A copy of `graph` without `victim` (and its edges), preserving the
/// relative order of everything else.
fn remove_vertex(graph: &AdaptationGraph, victim: VertexId) -> Result<AdaptationGraph> {
    let mut out = AdaptationGraph::new();
    out.set_receiver_caps(*graph.receiver_caps());
    let mut remap: Vec<Option<VertexId>> = vec![None; graph.vertex_count()];
    for id in graph.vertex_ids() {
        if id == victim {
            continue;
        }
        remap[id.index()] = Some(out.add_vertex(graph.vertex(id)?.clone()));
    }
    for edge_id in graph.edge_ids() {
        let edge = graph.edge(edge_id)?;
        if let (Some(from), Some(to)) = (remap[edge.from.index()], remap[edge.to.index()]) {
            out.add_edge(crate::graph::Edge {
                from,
                to,
                ..edge.clone()
            })?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::greedy::select_chain;

    /// On the Figure-6 graph the primary is sender→T7→receiver; the only
    /// alternate (without T7) is the degraded sender→T10→receiver chain.
    #[test]
    fn figure6_alternate_is_the_t10_fallback() {
        let scenario = test_scenario();
        let composition = scenario.compose(&SelectOptions::default()).unwrap();
        let primary = composition.selection.chain.unwrap();
        let profile = scenario.profiles.effective_satisfaction();
        let backups = alternates(
            &composition.graph,
            &scenario.formats,
            &profile,
            f64::INFINITY,
            &primary,
            3,
            &SelectOptions::default(),
        )
        .unwrap();
        assert_eq!(
            backups.len(),
            1,
            "one trans-coder on the chain → one alternate"
        );
        assert_eq!(backups[0].survives_loss_of_name, "T7");
        assert_eq!(backups[0].chain.names(), vec!["sender", "T10", "receiver"]);
        assert!(backups[0].chain.satisfaction < primary.satisfaction);
    }

    /// The alternate really avoids the vertex it protects against, and
    /// selecting on the full graph still prefers the primary.
    #[test]
    fn alternates_avoid_their_vertex() {
        let scenario = test_scenario();
        let composition = scenario.compose(&SelectOptions::default()).unwrap();
        let primary = composition.selection.chain.unwrap();
        let profile = scenario.profiles.effective_satisfaction();
        let backups = alternates(
            &composition.graph,
            &scenario.formats,
            &profile,
            f64::INFINITY,
            &primary,
            3,
            &SelectOptions::default(),
        )
        .unwrap();
        for backup in &backups {
            assert!(
                !backup
                    .chain
                    .names()
                    .contains(&backup.survives_loss_of_name.as_str()),
                "alternate routes through the vertex it should avoid"
            );
        }
        // Sanity: the primary still wins on the intact graph.
        let again = select_chain(
            &composition.graph,
            &scenario.formats,
            &profile,
            f64::INFINITY,
            &SelectOptions::default(),
        )
        .unwrap()
        .chain
        .unwrap();
        assert_eq!(again.names(), primary.names());
    }

    fn test_scenario() -> qosc_workload_shim::Scenario {
        qosc_workload_shim::figure6()
    }

    /// `qosc-core` cannot depend on `qosc-workload` (cycle); rebuild the
    /// tiny slice of the Figure-6 scenario the tests need.
    mod qosc_workload_shim {
        use crate::{Composer, Composition, SelectOptions};
        use qosc_media::{
            Axis, AxisDomain, BitrateModel, DomainVector, FormatRegistry, FormatSpec, MediaKind,
            VariantSpec,
        };
        use qosc_netsim::{Link, Network, Node, NodeId, Topology};
        use qosc_profiles::{
            ContentProfile, ContextProfile, ConversionSpec, DeviceProfile, HardwareCaps,
            NetworkProfile, ProfileSet, ServiceSpec, UserProfile,
        };
        use qosc_services::{ServiceRegistry, TranscoderDescriptor};

        pub struct Scenario {
            pub formats: FormatRegistry,
            pub services: ServiceRegistry,
            pub network: Network,
            pub profiles: ProfileSet,
            pub sender: NodeId,
            pub receiver: NodeId,
        }

        impl Scenario {
            pub fn compose(&self, options: &SelectOptions) -> crate::Result<Composition> {
                Composer {
                    formats: &self.formats,
                    services: &self.services,
                    network: &self.network,
                }
                .compose(&self.profiles, self.sender, self.receiver, options)
            }
        }

        /// A reduced Figure-6: sender, T7 (good, 20 fps), T10 (30 fps but
        /// 18 kbit/s receiver link), receiver.
        pub fn figure6() -> Scenario {
            let linear = BitrateModel::LinearOnAxis {
                axis: Axis::FrameRate,
                slope: 1000.0,
            };
            let mut formats = FormatRegistry::new();
            for name in ["F7", "F10", "G7", "G10"] {
                formats.register(FormatSpec::new(name, MediaKind::Video, linear));
            }
            let mut topo = Topology::new();
            let s = topo.add_node(Node::unconstrained("s"));
            let n7 = topo.add_node(Node::unconstrained("n7"));
            let n10 = topo.add_node(Node::unconstrained("n10"));
            let r = topo.add_node(Node::unconstrained("r"));
            let mut connect = |a, b, cap| {
                topo.connect(Link {
                    a,
                    b,
                    capacity_bps: cap,
                    delay_us: 1_000,
                    loss: 0.0,
                    price_per_mbit: 0.0,
                    price_flat: 1.0,
                })
                .unwrap();
            };
            connect(s, n7, 1e9);
            connect(s, n10, 1e9);
            connect(n7, r, 1e9);
            connect(n10, r, 18_000.0);
            let network = Network::new(topo);

            let domain = |cap: f64| {
                DomainVector::new().with(
                    Axis::FrameRate,
                    AxisDomain::Continuous { min: 0.0, max: cap },
                )
            };
            let mut services = ServiceRegistry::new();
            let t7 = ServiceSpec::new("T7", vec![ConversionSpec::new("F7", "G7", domain(20.0))]);
            let t10 =
                ServiceSpec::new("T10", vec![ConversionSpec::new("F10", "G10", domain(30.0))]);
            services.register_static(TranscoderDescriptor::resolve(&t7, &formats, n7).unwrap());
            services.register_static(TranscoderDescriptor::resolve(&t10, &formats, n10).unwrap());

            let content = ContentProfile::new(
                "clip",
                vec![
                    VariantSpec {
                        format: "F7".to_string(),
                        offered: domain(30.0),
                    },
                    VariantSpec {
                        format: "F10".to_string(),
                        offered: domain(30.0),
                    },
                ],
            );
            let device = DeviceProfile::new(
                "rx",
                vec!["G7".to_string(), "G10".to_string()],
                HardwareCaps::desktop(),
            );
            Scenario {
                formats,
                services,
                network,
                profiles: ProfileSet {
                    user: UserProfile::paper_table1(),
                    content,
                    device,
                    context: ContextProfile::default(),
                    network: NetworkProfile::lan(),
                },
                sender: s,
                receiver: r,
            }
        }
    }
}
