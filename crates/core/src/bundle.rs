//! Multi-stream bundles and the degradation policy.
//!
//! Section 3 gives the user profile "policies for application
//! adaptations, such as the preference of the user to drop the audio
//! quality of a sport-clip before degrading the video quality when
//! resources are limited". A bundle is one session carrying several
//! media streams (e.g. the video track and the audio track of a clip);
//! the shared resource is the user's budget.
//!
//! [`compose_bundle`] allocates the budget by the policy's priority:
//! streams the user protects (later in `degrade_first`, or unlisted)
//! compose first against the full remaining budget; streams the user is
//! willing to degrade compose against whatever is left. A stream that
//! cannot compose within its leftover is *dropped* (its plan is `None`)
//! — degrading to nothing before touching the protected streams.

use crate::composer::Composer;
use crate::plan::AdaptationPlan;
use crate::select::SelectOptions;
use crate::Result;
use qosc_media::MediaKind;
use qosc_netsim::NodeId;
use qosc_profiles::{ContentProfile, ProfileSet};

/// One stream of a composed bundle.
#[derive(Debug)]
pub struct BundleStream {
    /// Title of the content this stream carries.
    pub title: String,
    /// Media kind used for policy ranking (`None` if unresolvable).
    pub kind: Option<MediaKind>,
    /// The plan, or `None` when the stream was dropped for lack of
    /// budget (or is unsolvable).
    pub plan: Option<AdaptationPlan>,
}

/// A composed bundle.
#[derive(Debug)]
pub struct BundleComposition {
    /// Streams in the *request* order (not allocation order).
    pub streams: Vec<BundleStream>,
    /// Total cost across composed streams.
    pub total_cost: f64,
    /// Mean predicted satisfaction across composed streams (dropped
    /// streams count as zero).
    pub mean_satisfaction: f64,
}

impl BundleComposition {
    /// Number of streams that received a plan.
    pub fn composed_count(&self) -> usize {
        self.streams.iter().filter(|s| s.plan.is_some()).count()
    }
}

/// Compose several content streams for one user, sharing the user's
/// budget according to the profile's
/// [`AdaptationPolicy`](qosc_profiles::AdaptationPolicy).
///
/// `base` supplies the user, device, context and network profiles; its
/// own `content` is ignored in favour of `contents`.
pub fn compose_bundle(
    composer: &Composer<'_>,
    base: &ProfileSet,
    contents: &[ContentProfile],
    sender_host: NodeId,
    receiver_host: NodeId,
    options: &SelectOptions,
) -> Result<BundleComposition> {
    // Allocation order: protected streams first. `degrade_rank` is low
    // for degrade-first kinds, so we allocate in descending rank;
    // original index breaks ties to stay deterministic.
    let mut order: Vec<usize> = (0..contents.len()).collect();
    let kind_of = |content: &ContentProfile| content.primary_kind(composer.formats);
    order.sort_by_key(|&i| {
        let rank = kind_of(&contents[i])
            .map(|k| base.user.policy.degrade_rank(k))
            .unwrap_or(usize::MAX);
        (std::cmp::Reverse(rank), i)
    });

    let mut remaining_budget = base.user.budget_or_infinite();
    let mut plans: Vec<Option<AdaptationPlan>> = vec![None; contents.len()];
    for &i in &order {
        let mut profiles = base.clone();
        profiles.content = contents[i].clone();
        profiles.user.budget = if remaining_budget.is_finite() {
            Some(remaining_budget.max(0.0))
        } else {
            None
        };
        let composition = composer.compose(&profiles, sender_host, receiver_host, options)?;
        if let Some(plan) = composition.plan {
            remaining_budget -= plan.total_cost;
            plans[i] = Some(plan);
        }
    }

    let total_cost = plans.iter().flatten().map(|p| p.total_cost).sum();
    let mean_satisfaction = if contents.is_empty() {
        0.0
    } else {
        plans
            .iter()
            .map(|p| p.as_ref().map(|p| p.predicted_satisfaction).unwrap_or(0.0))
            .sum::<f64>()
            / contents.len() as f64
    };
    let streams = contents
        .iter()
        .zip(plans)
        .map(|(content, plan)| BundleStream {
            title: content.title.clone(),
            kind: kind_of(content),
            plan,
        })
        .collect();
    Ok(BundleComposition {
        streams,
        total_cost,
        mean_satisfaction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::{Axis, AxisDomain, DomainVector, FormatRegistry, VariantSpec};
    use qosc_netsim::{Network, Node, Topology};
    use qosc_profiles::{
        AdaptationPolicy, ContextProfile, DeviceProfile, HardwareCaps, NetworkProfile, UserProfile,
    };
    use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
    use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};

    struct Fixture {
        formats: FormatRegistry,
        services: ServiceRegistry,
        network: Network,
        server: NodeId,
        client: NodeId,
    }

    fn fixture() -> Fixture {
        let formats = FormatRegistry::with_builtins();
        let mut topo = Topology::new();
        let server = topo.add_node(Node::unconstrained("server"));
        let proxy = topo.add_node(Node::unconstrained("proxy"));
        let client = topo.add_node(Node::unconstrained("client"));
        topo.connect_simple(server, proxy, 100e6).unwrap();
        topo.connect_simple(proxy, client, 5e6).unwrap();
        let network = Network::new(topo);
        let mut services = ServiceRegistry::new();
        for spec in catalog::full_catalog() {
            services
                .register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
        }
        Fixture {
            formats,
            services,
            network,
            server,
            client,
        }
    }

    fn av_request() -> (ProfileSet, Vec<ContentProfile>) {
        // The sport-clip of Section 3: a video track and an audio track.
        let video = ContentProfile::new(
            "sport-clip-video",
            vec![VariantSpec {
                format: "video/mpeg2".to_string(),
                offered: DomainVector::new()
                    .with(
                        Axis::FrameRate,
                        AxisDomain::Continuous {
                            min: 1.0,
                            max: 30.0,
                        },
                    )
                    .with(
                        Axis::PixelCount,
                        AxisDomain::Continuous {
                            min: 19_200.0,
                            max: 307_200.0,
                        },
                    )
                    .with(
                        Axis::ColorDepth,
                        AxisDomain::Continuous {
                            min: 8.0,
                            max: 24.0,
                        },
                    ),
            }],
        );
        let audio = ContentProfile::new(
            "sport-clip-audio",
            vec![VariantSpec {
                format: "audio/pcm".to_string(),
                offered: DomainVector::new()
                    .with(
                        Axis::SampleRate,
                        AxisDomain::Discrete(vec![8_000.0, 22_050.0, 44_100.0]),
                    )
                    .with(Axis::Channels, AxisDomain::Discrete(vec![1.0, 2.0]))
                    .with(Axis::SampleDepth, AxisDomain::Discrete(vec![8.0, 16.0])),
            }],
        );
        let satisfaction = SatisfactionProfile::new()
            .with(AxisPreference::new(
                Axis::FrameRate,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 30.0,
                },
            ))
            .with(AxisPreference::new(
                Axis::SampleRate,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 44_100.0,
                },
            ));
        // Drop audio before video, as Section 3's example demands.
        let user = UserProfile::new("sports-fan", satisfaction).with_policy(AdaptationPolicy {
            degrade_first: vec![MediaKind::Audio],
        });
        let device = DeviceProfile::new(
            "media-box",
            vec![
                "video/h263".to_string(),
                "video/mpeg1".to_string(),
                "audio/mp3".to_string(),
                "audio/amr".to_string(),
            ],
            HardwareCaps::desktop(),
        );
        let base = ProfileSet {
            user,
            content: video.clone(), // placeholder, ignored by the bundle
            device,
            context: ContextProfile::default(),
            network: NetworkProfile::broadband(),
        };
        (base, vec![video, audio])
    }

    #[test]
    fn ample_budget_composes_both_streams() {
        let f = fixture();
        let (base, contents) = av_request();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let bundle = compose_bundle(
            &composer,
            &base,
            &contents,
            f.server,
            f.client,
            &SelectOptions::default(),
        )
        .unwrap();
        assert_eq!(bundle.composed_count(), 2);
        assert!(bundle.total_cost > 0.0, "catalog services are priced");
        assert!(bundle.mean_satisfaction > 0.5);
        assert_eq!(bundle.streams[0].kind, Some(MediaKind::Video));
        assert_eq!(bundle.streams[1].kind, Some(MediaKind::Audio));
    }

    #[test]
    fn tight_budget_drops_audio_before_video() {
        let f = fixture();
        let (mut base, contents) = av_request();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        // Find the video-only cost, then grant just enough for it.
        let unconstrained = compose_bundle(
            &composer,
            &base,
            &contents,
            f.server,
            f.client,
            &SelectOptions::default(),
        )
        .unwrap();
        let video_cost = unconstrained.streams[0].plan.as_ref().unwrap().total_cost;

        base.user.budget = Some(video_cost * 1.01);
        let squeezed = compose_bundle(
            &composer,
            &base,
            &contents,
            f.server,
            f.client,
            &SelectOptions::default(),
        )
        .unwrap();
        let video = &squeezed.streams[0];
        let audio = &squeezed.streams[1];
        assert!(video.plan.is_some(), "the protected video stream survives");
        // The audio stream is degraded (cheaper than unconstrained) or
        // dropped entirely — never the other way around.
        match &audio.plan {
            None => {}
            Some(plan) => {
                let unconstrained_audio =
                    unconstrained.streams[1].plan.as_ref().unwrap().total_cost;
                assert!(plan.total_cost <= unconstrained_audio + 1e-9);
                assert!(
                    squeezed.total_cost <= base.user.budget.unwrap() * (1.0 + 1e-6) + 1e-6,
                    "bundle overspent"
                );
            }
        }
    }

    #[test]
    fn reversed_policy_protects_audio() {
        let f = fixture();
        let (mut base, contents) = av_request();
        base.user.policy = AdaptationPolicy {
            degrade_first: vec![MediaKind::Video],
        };
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let unconstrained = compose_bundle(
            &composer,
            &base,
            &contents,
            f.server,
            f.client,
            &SelectOptions::default(),
        )
        .unwrap();
        let audio_cost = unconstrained.streams[1].plan.as_ref().unwrap().total_cost;
        base.user.budget = Some(audio_cost * 1.01);
        let squeezed = compose_bundle(
            &composer,
            &base,
            &contents,
            f.server,
            f.client,
            &SelectOptions::default(),
        )
        .unwrap();
        assert!(squeezed.streams[1].plan.is_some(), "audio is protected now");
        // Video gets at most the leftovers.
        if let Some(plan) = &squeezed.streams[0].plan {
            assert!(plan.total_cost <= base.user.budget.unwrap() - audio_cost + 1e-6);
        }
    }

    #[test]
    fn empty_bundle_is_trivial() {
        let f = fixture();
        let (base, _) = av_request();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let bundle = compose_bundle(
            &composer,
            &base,
            &[],
            f.server,
            f.client,
            &SelectOptions::default(),
        )
        .unwrap();
        assert_eq!(bundle.composed_count(), 0);
        assert_eq!(bundle.total_cost, 0.0);
    }
}
