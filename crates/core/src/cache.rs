//! Composition caching.
//!
//! The paper's related work (its reference [7], Chang & Chen, ICDE 2002)
//! studies caching in trans-coding proxies; a composition front-end
//! naturally wants the same: most requests repeat a (content, device
//! class, preference) combination, and re-running graph construction +
//! selection for each is wasted work while nothing changed.
//!
//! [`ShardedCompositionCache`] memoizes [`AdaptationPlan`]s keyed by
//! the request's observable inputs. A hit is *revalidated* before
//! reuse: every service on the cached chain must still be live in the
//! registry and every hop must still have the bandwidth the plan needs
//! — the same liveness condition the resilience monitor checks. Stale
//! entries are recomposed transparently.
//!
//! The store is split into power-of-two **shards**, each guarded by its
//! own `RwLock`, selected by the low bits of the request key. Requests
//! for different shards never contend; requests for the same shard
//! contend only on the short map lookup/insert, not on composition
//! itself (which always runs outside any lock). Counters are per-shard
//! atomics, so [`stats`](ShardedCompositionCache::stats) aggregates
//! exactly: every `compose` call increments exactly one of
//! hits/misses/stale, and `hits + misses + stale` equals the number of
//! requests served no matter how the requests interleave.
//!
//! [`CompositionCache`] remains as the single-threaded facade: the same
//! API as before, now a thin wrapper over a one-shard
//! [`ShardedCompositionCache`].

use crate::composer::Composer;
use crate::graph::{GraphStore, GraphStoreStats};
use crate::plan::AdaptationPlan;
use crate::select::SelectOptions;
use crate::sharded_compose::ShardedComposer;
use crate::Result;
use parking_lot::RwLock;
use qosc_netsim::{Network, NodeId};
use qosc_profiles::ProfileSet;
use qosc_services::{ServiceRegistry, ShardedServiceRegistry};
use qosc_telemetry::{
    CacheOutcome, EventKind, MetricsRegistry, RequestTrace, TelemetrySink, ROOT_SPAN,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from cache after successful revalidation.
    pub hits: usize,
    /// Requests with no usable cache entry (first sight or key miss).
    pub misses: usize,
    /// Cached entries that failed revalidation and were recomposed.
    pub stale: usize,
}

impl CacheStats {
    /// Hit rate over all requests, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Mirror this snapshot into `registry` as the
    /// `qosc_cache_{hits,misses,stale}_total` counters. The struct stays
    /// the cheap view; the registry is the unified export surface.
    pub fn record_metrics(&self, registry: &MetricsRegistry) {
        registry
            .counter("qosc_cache_hits_total")
            .store(self.hits as u64);
        registry
            .counter("qosc_cache_misses_total")
            .store(self.misses as u64);
        registry
            .counter("qosc_cache_stale_total")
            .store(self.stale as u64);
    }
}

/// A cached plan stamped with the world state it was validated
/// against. While the registry epoch and network version both hold
/// still, *nothing* a revalidation scan reads can have changed (every
/// registry mutation bumps the epoch, every network mutation bumps the
/// version), so a stamp match certifies the plan in O(1) without
/// touching the registry. When either stamp moved, the full scan runs
/// — and on success re-stamps the entry, so the classification is
/// exactly what the scan-every-time cache produced.
#[derive(Debug, Clone)]
struct CachedPlan {
    plan: AdaptationPlan,
    registry_epoch: u64,
    network_version: u64,
    /// Per-shard refinement of `registry_epoch`, recorded by the
    /// sharded compose path: the epochs of exactly the shards the
    /// plan's services live in ("touched shards"). When the flat epoch
    /// moved but every touched shard's epoch still matches, the
    /// mutations were confined to shards this plan never reads — the
    /// revalidation scan would necessarily pass, so the probe stays
    /// O(touched shards) instead of O(plan × registry). `None` on
    /// entries stamped by the flat path.
    shard_stamps: Option<Vec<(u32, u64)>>,
}

/// One lock-guarded slice of the cache, with its own exact counters.
#[derive(Debug, Default)]
struct Shard {
    entries: RwLock<HashMap<u64, CachedPlan>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    stale: AtomicUsize,
}

/// A concurrent memoizing front-end over [`Composer::compose`].
///
/// Shared by reference across worker threads: `compose` takes `&self`.
/// The entry map is split across power-of-two shards selected by the
/// low bits of the request key; statistics are per-shard atomics that
/// aggregate exactly (see the module docs).
#[derive(Debug)]
pub struct ShardedCompositionCache {
    shards: Vec<Shard>,
    mask: usize,
    /// Incremental graph store feeding misses and stale recomposes.
    /// `None` runs the historical rebuild-per-compose path (kept for
    /// baseline measurement).
    graph_store: Option<GraphStore>,
}

impl Default for ShardedCompositionCache {
    fn default() -> ShardedCompositionCache {
        ShardedCompositionCache::new(ShardedCompositionCache::DEFAULT_SHARDS)
    }
}

impl ShardedCompositionCache {
    /// Shard count used by [`default`](ShardedCompositionCache::default):
    /// comfortably above any worker count the engine runs with, so
    /// same-shard collisions stay rare.
    pub const DEFAULT_SHARDS: usize = 16;

    /// An empty cache with `shards` shards (rounded up to the next
    /// power of two, minimum 1), backed by an incremental
    /// [`GraphStore`].
    pub fn new(shards: usize) -> ShardedCompositionCache {
        let count = shards.max(1).next_power_of_two();
        ShardedCompositionCache {
            shards: (0..count).map(|_| Shard::default()).collect(),
            mask: count - 1,
            graph_store: Some(GraphStore::new()),
        }
    }

    /// An empty cache that rebuilds the adaptation graph on every
    /// compose (the pre-store behaviour). Plans, traces and counters
    /// are identical to the store-backed cache; only the work done per
    /// miss differs. Kept so benchmarks can measure both paths.
    pub fn new_without_graph_store(shards: usize) -> ShardedCompositionCache {
        let mut cache = ShardedCompositionCache::new(shards);
        cache.graph_store = None;
        cache
    }

    /// Replace the backing graph store (builder style).
    pub fn with_graph_store(mut self, store: GraphStore) -> ShardedCompositionCache {
        self.graph_store = Some(store);
        self
    }

    /// The backing graph store, when one is attached.
    pub fn graph_store(&self) -> Option<&GraphStore> {
        self.graph_store.as_ref()
    }

    /// Graph-store counters (zeros when no store is attached).
    pub fn graph_stats(&self) -> GraphStoreStats {
        self.graph_store
            .as_ref()
            .map(GraphStore::stats)
            .unwrap_or_default()
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: u64) -> &Shard {
        // The low bits pick the shard; the full key stays the map key,
        // which is fine for HashMap (it re-hashes anyway).
        &self.shards[(key as usize) & self.mask]
    }

    /// Compose through the cache: return a revalidated cached plan when
    /// one exists for this request, otherwise compose, store and return.
    /// `None` means the request is currently unsolvable (negative
    /// results are *not* cached — the graph may heal).
    ///
    /// Composition and revalidation both run outside the shard lock, so
    /// concurrent requests only contend on the map lookup/insert. Two
    /// threads racing on the same cold key may both compose; both count
    /// as misses and the insert is idempotent (composition is
    /// deterministic for a given snapshot).
    pub fn compose(
        &self,
        composer: &Composer<'_>,
        profiles: &ProfileSet,
        sender_host: NodeId,
        receiver_host: NodeId,
        options: &SelectOptions,
    ) -> Result<Option<AdaptationPlan>> {
        self.compose_traced(
            composer,
            profiles,
            sender_host,
            receiver_host,
            options,
            &mut RequestTrace::noop(),
        )
    }

    /// [`compose`](ShardedCompositionCache::compose) with the probe
    /// outcome (hit / miss / stale) recorded into `trace` under a
    /// `cache` span. With a [`qosc_telemetry::NoopSink`] trace this is
    /// exactly `compose`.
    pub fn compose_traced<S: TelemetrySink>(
        &self,
        composer: &Composer<'_>,
        profiles: &ProfileSet,
        sender_host: NodeId,
        receiver_host: NodeId,
        options: &SelectOptions,
        trace: &mut RequestTrace<'_, S>,
    ) -> Result<Option<AdaptationPlan>> {
        let key = request_key(profiles, sender_host, receiver_host)?;
        let shard = self.shard_for(key);
        let probe = |trace: &mut RequestTrace<'_, S>, outcome: CacheOutcome| {
            let span = trace.open_span(ROOT_SPAN, "cache");
            trace.emit(span, EventKind::CacheProbe { outcome });
        };
        let registry_epoch = composer.services.epoch();
        let network_version = composer.network.version();
        let cached = shard.entries.read().get(&key).cloned();
        match cached {
            Some(entry) => {
                // O(1) revalidation: matching stamps certify that no
                // registry or network mutation happened since the plan
                // was last validated, so the full scan would
                // necessarily succeed too.
                let fresh_stamps = entry.registry_epoch == registry_epoch
                    && entry.network_version == network_version;
                if fresh_stamps
                    || plan_still_valid(composer.services, composer.network, &entry.plan)
                {
                    if !fresh_stamps {
                        // The world moved but the plan survived the
                        // full scan: re-stamp so the next probe is
                        // O(1) again.
                        if let Some(entry) = shard.entries.write().get_mut(&key) {
                            entry.registry_epoch = registry_epoch;
                            entry.network_version = network_version;
                            entry.shard_stamps = None;
                        }
                    }
                    shard.hits.fetch_add(1, Ordering::Relaxed);
                    probe(trace, CacheOutcome::Hit);
                    return Ok(Some(entry.plan));
                }
                shard.entries.write().remove(&key);
                shard.stale.fetch_add(1, Ordering::Relaxed);
                probe(trace, CacheOutcome::Stale);
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                probe(trace, CacheOutcome::Miss);
            }
        }
        let plan = match &self.graph_store {
            Some(store) => {
                composer
                    .compose_with_store(store, profiles, sender_host, receiver_host, options)?
                    .plan
            }
            None => {
                composer
                    .compose(profiles, sender_host, receiver_host, options)?
                    .plan
            }
        };
        if let Some(plan) = &plan {
            shard.entries.write().insert(
                key,
                CachedPlan {
                    plan: plan.clone(),
                    registry_epoch,
                    network_version,
                    shard_stamps: None,
                },
            );
        }
        Ok(plan)
    }

    /// [`compose`](ShardedCompositionCache::compose) against a sharded
    /// registry through the two-level [`ShardedComposer`]. Entries are
    /// additionally stamped with the epochs of the shards the plan
    /// actually touches, so registry churn confined to *other* shards
    /// keeps the probe an O(touched shards) stamp check — neither the
    /// full revalidation scan nor a recompose runs (proven white-box by
    /// test).
    pub fn compose_sharded(
        &self,
        composer: &ShardedComposer<'_>,
        profiles: &ProfileSet,
        sender_host: NodeId,
        receiver_host: NodeId,
        options: &SelectOptions,
    ) -> Result<Option<AdaptationPlan>> {
        self.compose_sharded_traced(
            composer,
            profiles,
            sender_host,
            receiver_host,
            options,
            &mut RequestTrace::noop(),
        )
    }

    /// [`compose_sharded`](ShardedCompositionCache::compose_sharded)
    /// with the probe outcome recorded into `trace`.
    pub fn compose_sharded_traced<S: TelemetrySink>(
        &self,
        composer: &ShardedComposer<'_>,
        profiles: &ProfileSet,
        sender_host: NodeId,
        receiver_host: NodeId,
        options: &SelectOptions,
        trace: &mut RequestTrace<'_, S>,
    ) -> Result<Option<AdaptationPlan>> {
        let key = request_key(profiles, sender_host, receiver_host)?;
        let shard = self.shard_for(key);
        let probe = |trace: &mut RequestTrace<'_, S>, outcome: CacheOutcome| {
            let span = trace.open_span(ROOT_SPAN, "cache");
            trace.emit(span, EventKind::CacheProbe { outcome });
        };
        let registry_epoch = composer.services.flat().epoch();
        let network_version = composer.network.version();
        let cached = shard.entries.read().get(&key).cloned();
        match cached {
            Some(entry) => {
                // Stamp freshness, cheapest first: the registry-wide
                // epoch (nothing anywhere moved), then the per-shard
                // stamps (mutations happened, but only in shards this
                // plan never touches).
                let fresh_stamps = entry.network_version == network_version
                    && (entry.registry_epoch == registry_epoch
                        || entry.shard_stamps.as_ref().is_some_and(|stamps| {
                            stamps
                                .iter()
                                .all(|&(s, e)| composer.services.shard_epoch(s) == e)
                        }));
                if fresh_stamps
                    || plan_still_valid(composer.services.flat(), composer.network, &entry.plan)
                {
                    if !fresh_stamps {
                        if let Some(entry) = shard.entries.write().get_mut(&key) {
                            entry.registry_epoch = registry_epoch;
                            entry.network_version = network_version;
                            entry.shard_stamps =
                                Some(shard_stamps_for(composer.services, &entry.plan));
                        }
                    }
                    shard.hits.fetch_add(1, Ordering::Relaxed);
                    probe(trace, CacheOutcome::Hit);
                    return Ok(Some(entry.plan));
                }
                shard.entries.write().remove(&key);
                shard.stale.fetch_add(1, Ordering::Relaxed);
                probe(trace, CacheOutcome::Stale);
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                probe(trace, CacheOutcome::Miss);
            }
        }
        let plan = match &self.graph_store {
            Some(store) => {
                composer
                    .compose_with_store(store, profiles, sender_host, receiver_host, options)?
                    .composition
                    .plan
            }
            None => {
                // The two-level path needs a store for its scoped
                // graphs; a throwaway one preserves semantics at the
                // cost of cold builds.
                let store = GraphStore::new();
                composer
                    .compose_with_store(&store, profiles, sender_host, receiver_host, options)?
                    .composition
                    .plan
            }
        };
        if let Some(plan) = &plan {
            shard.entries.write().insert(
                key,
                CachedPlan {
                    plan: plan.clone(),
                    registry_epoch,
                    network_version,
                    shard_stamps: Some(shard_stamps_for(composer.services, plan)),
                },
            );
        }
        Ok(plan)
    }

    /// Drop every cached entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.entries.write().clear();
        }
    }

    /// Number of cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.read().len()).sum()
    }

    /// Number of cached plans in shard `index` (one short read-lock on
    /// that shard only — the gauge exporter polls shard by shard
    /// instead of freezing the whole cache).
    ///
    /// # Panics
    ///
    /// Panics when `index >= shard_count()`.
    pub fn shard_len(&self, index: usize) -> usize {
        self.shards[index].entries.read().len()
    }

    /// Per-shard entry counts, locking one shard at a time. The vector
    /// is a statistical snapshot: entries inserted while walking may or
    /// may not be counted, but each shard's own count is exact at the
    /// instant it was read.
    pub fn shard_lens(&self) -> Vec<usize> {
        (0..self.shards.len()).map(|i| self.shard_len(i)).collect()
    }

    /// Export per-shard occupancy into `registry`:
    /// `qosc_cache_shard_entries{shard="i"}` gauges plus the
    /// `qosc_cache_entries` total, using [`shard_len`] so no two shard
    /// locks are ever held at once.
    ///
    /// [`shard_len`]: ShardedCompositionCache::shard_len
    pub fn export_gauges(&self, registry: &MetricsRegistry) {
        let mut total = 0usize;
        for index in 0..self.shard_count() {
            let len = self.shard_len(index);
            total += len;
            registry
                .gauge(&format!("qosc_cache_shard_entries{{shard=\"{index}\"}}"))
                .set(len as i64);
        }
        registry.gauge("qosc_cache_entries").set(total as i64);
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/stale counters since construction, summed over shards.
    /// Exact: each `compose` call increments exactly one counter, so
    /// `hits + misses + stale` equals the number of requests served.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for shard in &self.shards {
            stats.hits += shard.hits.load(Ordering::Relaxed);
            stats.misses += shard.misses.load(Ordering::Relaxed);
            stats.stale += shard.stale.load(Ordering::Relaxed);
        }
        stats
    }
}

/// A memoizing front-end over [`Composer::compose`].
///
/// The single-threaded facade kept for existing callers: one shard, the
/// historical `&mut self` API, same semantics as always. Concurrent
/// callers use [`ShardedCompositionCache`] directly.
#[derive(Debug)]
pub struct CompositionCache {
    inner: ShardedCompositionCache,
}

impl Default for CompositionCache {
    fn default() -> CompositionCache {
        CompositionCache {
            inner: ShardedCompositionCache::new(1),
        }
    }
}

impl CompositionCache {
    /// An empty cache.
    pub fn new() -> CompositionCache {
        CompositionCache::default()
    }

    /// See [`ShardedCompositionCache::compose`].
    pub fn compose(
        &mut self,
        composer: &Composer<'_>,
        profiles: &ProfileSet,
        sender_host: NodeId,
        receiver_host: NodeId,
        options: &SelectOptions,
    ) -> Result<Option<AdaptationPlan>> {
        self.inner
            .compose(composer, profiles, sender_host, receiver_host, options)
    }

    /// Drop every cached entry.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Hit/miss/stale counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
}

/// Key a request by its serialized profile set plus the endpoints. The
/// JSON form is canonical for our profile types (struct field order is
/// fixed), so equal requests collide and different requests do not
/// (modulo 64-bit hashing).
fn request_key(profiles: &ProfileSet, sender: NodeId, receiver: NodeId) -> Result<u64> {
    let json = profiles.to_json().map_err(crate::CoreError::Profile)?;
    let mut hasher = DefaultHasher::new();
    json.hash(&mut hasher);
    sender.index().hash(&mut hasher);
    receiver.index().hash(&mut hasher);
    Ok(hasher.finish())
}

/// The `(shard, epoch)` stamps covering exactly the shards of `plan`'s
/// services — what a fresh per-shard revalidation must match.
fn shard_stamps_for(services: &ShardedServiceRegistry, plan: &AdaptationPlan) -> Vec<(u32, u64)> {
    services
        .touched_shards(plan.steps.iter().filter_map(|s| s.service))
        .into_iter()
        .map(|s| (s, services.shard_epoch(s)))
        .collect()
}

/// Revalidate a cached plan against the current registry and network:
/// every trans-coding stage still advertised (live lease, not
/// quarantined), every hop still routable with the plan's rate.
fn plan_still_valid(services: &ServiceRegistry, network: &Network, plan: &AdaptationPlan) -> bool {
    for step in &plan.steps {
        if let Some(service) = step.service {
            if !services.is_available(service) {
                return false;
            }
        }
        if network.node_failed(step.host) {
            return false;
        }
    }
    for pair in plan.steps.windows(2) {
        match network.available_between(pair[0].host, pair[1].host) {
            Ok(available) => {
                if available * (1.0 + 1e-6) + 1e-6 < pair[1].input_bps {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::FormatRegistry;
    use qosc_netsim::{Network, Node, Topology};
    use qosc_profiles::{
        ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, UserProfile,
    };
    use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};

    struct Fixture {
        formats: FormatRegistry,
        services: ServiceRegistry,
        network: Network,
        profiles: ProfileSet,
        server: NodeId,
        client: NodeId,
    }

    fn fixture() -> Fixture {
        let formats = FormatRegistry::with_builtins();
        let mut topo = Topology::new();
        let server = topo.add_node(Node::unconstrained("server"));
        let proxy = topo.add_node(Node::unconstrained("proxy"));
        let client = topo.add_node(Node::unconstrained("client"));
        topo.connect_simple(server, proxy, 100e6).unwrap();
        topo.connect_simple(proxy, client, 1e6).unwrap();
        let network = Network::new(topo);
        let mut services = ServiceRegistry::new();
        for spec in catalog::full_catalog() {
            services
                .register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
        }
        let profiles = ProfileSet {
            user: UserProfile::demo("cache-user"),
            content: ContentProfile::demo_video("clip"),
            device: DeviceProfile::demo_pda(),
            context: ContextProfile::default(),
            network: NetworkProfile::broadband(),
        };
        Fixture {
            formats,
            services,
            network,
            profiles,
            server,
            client,
        }
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(ShardedCompositionCache::new(0).shard_count(), 1);
        assert_eq!(ShardedCompositionCache::new(3).shard_count(), 4);
        assert_eq!(ShardedCompositionCache::new(16).shard_count(), 16);
        assert_eq!(ShardedCompositionCache::default().shard_count(), 16);
    }

    #[test]
    fn sharded_cache_serves_through_shared_reference() {
        let f = fixture();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let cache = ShardedCompositionCache::default();
        let options = SelectOptions::default();
        let a = cache
            .compose(&composer, &f.profiles, f.server, f.client, &options)
            .unwrap()
            .expect("solvable");
        let b = cache
            .compose(&composer, &f.profiles, f.server, f.client, &options)
            .unwrap()
            .expect("solvable");
        assert_eq!(a, b);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                stale: 0
            }
        );
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        // Counters survive a clear.
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn second_identical_request_hits() {
        let f = fixture();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let mut cache = CompositionCache::new();
        let options = SelectOptions::default();
        let a = cache
            .compose(&composer, &f.profiles, f.server, f.client, &options)
            .unwrap()
            .expect("solvable");
        let b = cache
            .compose(&composer, &f.profiles, f.server, f.client, &options)
            .unwrap()
            .expect("solvable");
        assert_eq!(a, b);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                stale: 0
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_user_preferences_miss() {
        let f = fixture();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let mut cache = CompositionCache::new();
        let options = SelectOptions::default();
        cache
            .compose(&composer, &f.profiles, f.server, f.client, &options)
            .unwrap();
        let mut other = f.profiles.clone();
        other.user = UserProfile::paper_table1();
        cache
            .compose(&composer, &other, f.server, f.client, &options)
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn dead_service_invalidates_entry() {
        let mut f = fixture();
        let options = SelectOptions::default();
        let first = {
            let composer = Composer {
                formats: &f.formats,
                services: &f.services,
                network: &f.network,
            };
            let mut cache = CompositionCache::new();
            cache
                .compose(&composer, &f.profiles, f.server, f.client, &options)
                .unwrap()
                .expect("solvable")
        };
        // Kill every service on the cached chain, then re-request.
        let mut cache = CompositionCache::new();
        {
            let composer = Composer {
                formats: &f.formats,
                services: &f.services,
                network: &f.network,
            };
            cache
                .compose(&composer, &f.profiles, f.server, f.client, &options)
                .unwrap();
        }
        for step in &first.steps {
            if let Some(id) = step.service {
                f.services.deregister(id).unwrap();
            }
        }
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let replacement = cache
            .compose(&composer, &f.profiles, f.server, f.client, &options)
            .unwrap();
        assert_eq!(cache.stats().stale, 1);
        if let Some(plan) = replacement {
            for step in &plan.steps {
                if let Some(id) = step.service {
                    assert!(f.services.is_live(id), "cached-through dead service");
                }
            }
        }
    }

    /// White-box proof that a stamp match answers in O(1) *without*
    /// running the revalidation scan: poison a cached entry so the scan
    /// would reject it, but stamp it with the current epoch/version.
    /// The probe must hit (scan skipped); once the stamps move, the
    /// very same entry must be classified stale by the scan.
    #[test]
    fn same_stamp_hit_skips_revalidation_scan() {
        let mut f = fixture();
        let options = SelectOptions::default();
        let cache = ShardedCompositionCache::new(1);
        let first = {
            let composer = Composer {
                formats: &f.formats,
                services: &f.services,
                network: &f.network,
            };
            cache
                .compose(&composer, &f.profiles, f.server, f.client, &options)
                .unwrap()
                .expect("solvable")
        };
        let proxy_host = first
            .steps
            .iter()
            .find(|s| s.service.is_some())
            .expect("has a transcoder")
            .host;
        // Invalidate the plan for the scan (proxy down bumps the
        // network version), then forge fresh stamps on the entry.
        f.network.fail_node(proxy_host).unwrap();
        let key = request_key(&f.profiles, f.server, f.client).unwrap();
        {
            let shard = cache.shard_for(key);
            let mut entries = shard.entries.write();
            let entry = entries.get_mut(&key).expect("entry cached");
            entry.registry_epoch = f.services.epoch();
            entry.network_version = f.network.version();
        }
        let again = {
            let composer = Composer {
                formats: &f.formats,
                services: &f.services,
                network: &f.network,
            };
            cache
                .compose(&composer, &f.profiles, f.server, f.client, &options)
                .unwrap()
                .expect("stamped entry must hit")
        };
        // The scan would have rejected this plan (its proxy is down);
        // getting it back verbatim proves the stamp path skipped the
        // scan entirely.
        assert_eq!(again, first);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                stale: 0
            }
        );
        // Move the stamps: now the full scan runs and must classify the
        // same poisoned entry as stale.
        f.network.fail_node(f.client).unwrap();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let after = cache
            .compose(&composer, &f.profiles, f.server, f.client, &options)
            .unwrap();
        assert!(after.is_none(), "proxy and client dead → unsolvable");
        assert_eq!(cache.stats().stale, 1);
    }

    /// A registry mutation that does not touch the cached chain moves
    /// the epoch, forcing one full scan — which passes and re-stamps
    /// the entry, so the *next* probe is an O(1) stamp hit again.
    #[test]
    fn unrelated_churn_restamps_after_full_scan() {
        let mut f = fixture();
        let options = SelectOptions::default();
        let cache = ShardedCompositionCache::new(1);
        let compose = |f: &Fixture| {
            let composer = Composer {
                formats: &f.formats,
                services: &f.services,
                network: &f.network,
            };
            cache
                .compose(&composer, &f.profiles, f.server, f.client, &options)
                .unwrap()
                .expect("solvable")
        };
        compose(&f);
        let key = request_key(&f.profiles, f.server, f.client).unwrap();
        let stamps = |cache: &ShardedCompositionCache| {
            let shard = cache.shard_for(key);
            let entries = shard.entries.read();
            let entry = entries.get(&key).expect("entry cached");
            (entry.registry_epoch, entry.network_version)
        };
        let stamped_at_insert = stamps(&cache);
        assert_eq!(stamped_at_insert, (f.services.epoch(), f.network.version()));
        // Unrelated churn: duplicate one catalog service on the proxy.
        // The cached chain stays valid but the epoch moves.
        let spec = &catalog::full_catalog()[0];
        let proxy_host = f.services.live_services().next().unwrap().1.host;
        f.services
            .register_static(TranscoderDescriptor::resolve(spec, &f.formats, proxy_host).unwrap());
        assert_ne!(f.services.epoch(), stamped_at_insert.0);
        compose(&f);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                stale: 0
            }
        );
        // The surviving entry was re-stamped to the post-churn world…
        assert_eq!(stamps(&cache), (f.services.epoch(), f.network.version()));
        // …so the next probe is a same-stamp hit without another scan.
        compose(&f);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 2,
                misses: 1,
                stale: 0
            }
        );
    }

    /// Per-shard stamps (sharded compose path): registry churn confined
    /// to a shard the cached plan never touches must be served as an
    /// O(touched shards) stamp hit — *without* running the revalidation
    /// scan. White-box proof: poison the cached plan so the scan would
    /// reject it; the poisoned plan coming back verbatim after
    /// other-shard churn proves the scan was skipped, and touched-shard
    /// churn then classifies the same entry stale.
    #[test]
    fn other_shard_churn_skips_the_revalidation_scan() {
        use qosc_media::{Axis, AxisDomain, DomainVector, MediaKind, VariantSpec};
        use qosc_netsim::SimTime;
        use qosc_profiles::{ConversionSpec, HardwareCaps, ServiceSpec};
        use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};

        let mut formats = FormatRegistry::new();
        formats.register_abstract("video/src", MediaKind::Video);
        formats.register_abstract("video/dst", MediaKind::Video);
        formats.register_abstract("video/mid0", MediaKind::Video);
        formats.register_abstract("video/mid1", MediaKind::Video);

        let mut topo = Topology::new();
        let s = topo.add_node(Node::unconstrained("sender"));
        let m = topo.add_node(Node::unconstrained("proxy"));
        let r = topo.add_node(Node::unconstrained("receiver"));
        topo.connect_simple(s, m, 1e9).unwrap();
        topo.connect_simple(m, r, 1e9).unwrap();
        let network = Network::new(topo);

        let fps_domain = |fps: f64| {
            DomainVector::new().with(
                Axis::FrameRate,
                AxisDomain::Continuous { min: 1.0, max: fps },
            )
        };
        // Two format clusters: cluster 0 wins (30 fps), cluster 1
        // loses (20 fps). With enough shards their heads land apart.
        // Routing keys on the primary *input* format, so the heads
        // (all reading video/src) share a shard while the tails
        // (reading their cluster's mid format) spread apart — the
        // losing tail is the cross-shard poison this proof needs.
        let mut services = ShardedServiceRegistry::new(8);
        let mut tails = Vec::new();
        for c in 0..2 {
            let fps = 30.0 - 10.0 * c as f64;
            let head = ServiceSpec::new(
                format!("head{c}"),
                vec![ConversionSpec::new(
                    "video/src",
                    format!("video/mid{c}"),
                    fps_domain(fps),
                )],
            );
            let tail = ServiceSpec::new(
                format!("tail{c}"),
                vec![ConversionSpec::new(
                    format!("video/mid{c}"),
                    "video/dst",
                    fps_domain(fps),
                )],
            );
            services.register_static(TranscoderDescriptor::resolve(&head, &formats, m).unwrap());
            tails.push(
                services
                    .register_static(TranscoderDescriptor::resolve(&tail, &formats, m).unwrap()),
            );
        }
        assert_ne!(
            services.shard_of(tails[0]),
            services.shard_of(tails[1]),
            "cluster tails must land in distinct shards for this proof"
        );

        let mut user = UserProfile::demo("u");
        user.satisfaction = SatisfactionProfile::new().with(AxisPreference::new(
            Axis::FrameRate,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 30.0,
            },
        ));
        let profiles = ProfileSet {
            user,
            content: ContentProfile::new(
                "clip",
                vec![VariantSpec {
                    format: "video/src".to_string(),
                    offered: fps_domain(30.0),
                }],
            ),
            device: DeviceProfile::new(
                "screen",
                vec!["video/dst".to_string()],
                HardwareCaps::desktop(),
            ),
            context: ContextProfile::default(),
            network: NetworkProfile::broadband(),
        };

        let cache = ShardedCompositionCache::new(1);
        let options = SelectOptions::default();
        let compose = |services: &ShardedServiceRegistry| {
            let composer = ShardedComposer {
                formats: &formats,
                services,
                network: &network,
            };
            cache
                .compose_sharded(&composer, &profiles, s, r, &options)
                .unwrap()
                .expect("cluster 0 chain exists")
        };
        let first = compose(&services);
        let touched: Vec<u32> =
            services.touched_shards(first.steps.iter().filter_map(|st| st.service));
        assert!(
            !touched.contains(&services.shard_of(tails[1])),
            "the winning plan must not touch the losing cluster's shard"
        );

        // Poison the cached plan: swap a step's service for cluster 1's
        // quarantined tail. The revalidation scan would reject this
        // (the service is unavailable); the stamps must never let the
        // scan run.
        services.set_quarantine_config(qosc_services::QuarantineConfig {
            failure_threshold: 1,
            cooldown_us: 1_000_000,
        });
        assert!(services.report_failure(tails[1], SimTime(10)).unwrap());
        let key = request_key(&profiles, s, r).unwrap();
        {
            let shard = cache.shard_for(key);
            let mut entries = shard.entries.write();
            let entry = entries.get_mut(&key).expect("entry cached");
            let step = entry
                .plan
                .steps
                .iter_mut()
                .find(|st| st.service.is_some())
                .unwrap();
            step.service = Some(tails[1]);
        }

        // The flat epoch moved (cluster 1 churn), but every *touched*
        // shard's epoch is unchanged: the probe must hit on the shard
        // stamps and return the poisoned plan verbatim — proof the
        // scan never ran.
        let again = compose(&services);
        assert_eq!(
            again
                .steps
                .iter()
                .find(|st| st.service.is_some())
                .unwrap()
                .service,
            Some(tails[1]),
            "poisoned plan must come back untouched (scan skipped)"
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                stale: 0
            }
        );

        // Churn in a *touched* shard breaks the stamps: now the scan
        // runs, rejects the poisoned plan, and the entry is recomposed.
        services.renew(tails[0], SimTime(20), u64::MAX / 2).unwrap();
        let healed = compose(&services);
        assert_eq!(cache.stats().stale, 1);
        assert_eq!(healed, first, "recompose restores the real plan");
    }

    #[test]
    fn failed_node_invalidates_entry() {
        let mut f = fixture();
        let options = SelectOptions::default();
        let mut cache = CompositionCache::new();
        let first = {
            let composer = Composer {
                formats: &f.formats,
                services: &f.services,
                network: &f.network,
            };
            cache
                .compose(&composer, &f.profiles, f.server, f.client, &options)
                .unwrap()
                .expect("solvable")
        };
        let proxy_host = first
            .steps
            .iter()
            .find(|s| s.service.is_some())
            .expect("has a transcoder")
            .host;
        f.network.fail_node(proxy_host).unwrap();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let after = cache
            .compose(&composer, &f.profiles, f.server, f.client, &options)
            .unwrap();
        assert_eq!(cache.stats().stale, 1);
        assert!(after.is_none(), "single proxy dead → unsolvable");
    }
}
