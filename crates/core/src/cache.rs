//! Composition caching.
//!
//! The paper's related work (its reference [7], Chang & Chen, ICDE 2002)
//! studies caching in trans-coding proxies; a composition front-end
//! naturally wants the same: most requests repeat a (content, device
//! class, preference) combination, and re-running graph construction +
//! selection for each is wasted work while nothing changed.
//!
//! [`CompositionCache`] memoizes [`AdaptationPlan`]s keyed by the
//! request's observable inputs. A hit is *revalidated* before reuse:
//! every service on the cached chain must still be live in the registry
//! and every hop must still have the bandwidth the plan needs — the
//! same liveness condition the resilience monitor checks. Stale entries
//! are recomposed transparently.

use crate::composer::Composer;
use crate::plan::AdaptationPlan;
use crate::select::SelectOptions;
use crate::Result;
use qosc_netsim::NodeId;
use qosc_profiles::ProfileSet;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from cache after successful revalidation.
    pub hits: usize,
    /// Requests with no usable cache entry (first sight or key miss).
    pub misses: usize,
    /// Cached entries that failed revalidation and were recomposed.
    pub stale: usize,
}

impl CacheStats {
    /// Hit rate over all requests, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A memoizing front-end over [`Composer::compose`].
#[derive(Debug, Default)]
pub struct CompositionCache {
    entries: HashMap<u64, AdaptationPlan>,
    stats: CacheStats,
}

impl CompositionCache {
    /// An empty cache.
    pub fn new() -> CompositionCache {
        CompositionCache::default()
    }

    /// Compose through the cache: return a revalidated cached plan when
    /// one exists for this request, otherwise compose, store and return.
    /// `None` means the request is currently unsolvable (negative
    /// results are *not* cached — the graph may heal).
    pub fn compose(
        &mut self,
        composer: &Composer<'_>,
        profiles: &ProfileSet,
        sender_host: NodeId,
        receiver_host: NodeId,
        options: &SelectOptions,
    ) -> Result<Option<AdaptationPlan>> {
        let key = request_key(profiles, sender_host, receiver_host)?;
        if let Some(plan) = self.entries.get(&key) {
            if plan_still_valid(composer, plan) {
                self.stats.hits += 1;
                return Ok(Some(plan.clone()));
            }
            self.entries.remove(&key);
            self.stats.stale += 1;
        } else {
            self.stats.misses += 1;
        }
        let composition = composer.compose(profiles, sender_host, receiver_host, options)?;
        if let Some(plan) = &composition.plan {
            self.entries.insert(key, plan.clone());
        }
        Ok(composition.plan)
    }

    /// Drop every cached entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss/stale counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Key a request by its serialized profile set plus the endpoints. The
/// JSON form is canonical for our profile types (struct field order is
/// fixed), so equal requests collide and different requests do not
/// (modulo 64-bit hashing).
fn request_key(profiles: &ProfileSet, sender: NodeId, receiver: NodeId) -> Result<u64> {
    let json = profiles.to_json().map_err(crate::CoreError::Profile)?;
    let mut hasher = DefaultHasher::new();
    json.hash(&mut hasher);
    sender.index().hash(&mut hasher);
    receiver.index().hash(&mut hasher);
    Ok(hasher.finish())
}

/// Revalidate a cached plan against the current registry and network:
/// every trans-coding stage still live, every hop still routable with
/// the plan's rate.
fn plan_still_valid(composer: &Composer<'_>, plan: &AdaptationPlan) -> bool {
    for step in &plan.steps {
        if let Some(service) = step.service {
            if !composer.services.is_live(service) {
                return false;
            }
        }
        if composer.network.node_failed(step.host) {
            return false;
        }
    }
    for pair in plan.steps.windows(2) {
        match composer.network.available_between(pair[0].host, pair[1].host) {
            Ok(available) => {
                if available * (1.0 + 1e-6) + 1e-6 < pair[1].input_bps {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::FormatRegistry;
    use qosc_netsim::{Network, Node, Topology};
    use qosc_profiles::{
        ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, UserProfile,
    };
    use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};

    struct Fixture {
        formats: FormatRegistry,
        services: ServiceRegistry,
        network: Network,
        profiles: ProfileSet,
        server: NodeId,
        client: NodeId,
    }

    fn fixture() -> Fixture {
        let formats = FormatRegistry::with_builtins();
        let mut topo = Topology::new();
        let server = topo.add_node(Node::unconstrained("server"));
        let proxy = topo.add_node(Node::unconstrained("proxy"));
        let client = topo.add_node(Node::unconstrained("client"));
        topo.connect_simple(server, proxy, 100e6).unwrap();
        topo.connect_simple(proxy, client, 1e6).unwrap();
        let network = Network::new(topo);
        let mut services = ServiceRegistry::new();
        for spec in catalog::full_catalog() {
            services
                .register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
        }
        let profiles = ProfileSet {
            user: UserProfile::demo("cache-user"),
            content: ContentProfile::demo_video("clip"),
            device: DeviceProfile::demo_pda(),
            context: ContextProfile::default(),
            network: NetworkProfile::broadband(),
        };
        Fixture { formats, services, network, profiles, server, client }
    }

    #[test]
    fn second_identical_request_hits() {
        let f = fixture();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let mut cache = CompositionCache::new();
        let options = SelectOptions::default();
        let a = cache
            .compose(&composer, &f.profiles, f.server, f.client, &options)
            .unwrap()
            .expect("solvable");
        let b = cache
            .compose(&composer, &f.profiles, f.server, f.client, &options)
            .unwrap()
            .expect("solvable");
        assert_eq!(a, b);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, stale: 0 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_user_preferences_miss() {
        let f = fixture();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let mut cache = CompositionCache::new();
        let options = SelectOptions::default();
        cache
            .compose(&composer, &f.profiles, f.server, f.client, &options)
            .unwrap();
        let mut other = f.profiles.clone();
        other.user = UserProfile::paper_table1();
        cache
            .compose(&composer, &other, f.server, f.client, &options)
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn dead_service_invalidates_entry() {
        let mut f = fixture();
        let options = SelectOptions::default();
        let first = {
            let composer = Composer {
                formats: &f.formats,
                services: &f.services,
                network: &f.network,
            };
            let mut cache = CompositionCache::new();
            cache
                .compose(&composer, &f.profiles, f.server, f.client, &options)
                .unwrap()
                .expect("solvable")
        };
        // Kill every service on the cached chain, then re-request.
        let mut cache = CompositionCache::new();
        {
            let composer = Composer {
                formats: &f.formats,
                services: &f.services,
                network: &f.network,
            };
            cache
                .compose(&composer, &f.profiles, f.server, f.client, &options)
                .unwrap();
        }
        for step in &first.steps {
            if let Some(id) = step.service {
                f.services.deregister(id).unwrap();
            }
        }
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let replacement = cache
            .compose(&composer, &f.profiles, f.server, f.client, &options)
            .unwrap();
        assert_eq!(cache.stats().stale, 1);
        if let Some(plan) = replacement {
            for step in &plan.steps {
                if let Some(id) = step.service {
                    assert!(f.services.is_live(id), "cached-through dead service");
                }
            }
        }
    }

    #[test]
    fn failed_node_invalidates_entry() {
        let mut f = fixture();
        let options = SelectOptions::default();
        let mut cache = CompositionCache::new();
        let first = {
            let composer = Composer {
                formats: &f.formats,
                services: &f.services,
                network: &f.network,
            };
            cache
                .compose(&composer, &f.profiles, f.server, f.client, &options)
                .unwrap()
                .expect("solvable")
        };
        let proxy_host = first
            .steps
            .iter()
            .find(|s| s.service.is_some())
            .expect("has a transcoder")
            .host;
        f.network.fail_node(proxy_host).unwrap();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let after = cache
            .compose(&composer, &f.profiles, f.server, f.client, &options)
            .unwrap();
        assert_eq!(cache.stats().stale, 1);
        assert!(after.is_none(), "single proxy dead → unsolvable");
    }
}
