//! Two-level composition against a sharded registry.
//!
//! Flat composition builds one graph over every live service and runs
//! Figure-4 selection on it — fine at 10^3 services, hopeless at 10^6.
//! [`ShardedComposer`] splits the problem the way Klein-style
//! partitioned QoS brokers do:
//!
//! 1. **Summary level.** Each shard of the
//!    [`ShardedServiceRegistry`](qosc_services::ShardedServiceRegistry)
//!    exports a frontier of `(input format, output format, axis set)`
//!    hull tops (see `qosc_services::sharded`). Scoring a hull top with
//!    the request's satisfaction profile gives an *admissible* bound on
//!    the satisfaction any hop through that shard and pair can
//!    contribute: every satisfaction function is monotone per axis,
//!    upstream capping only shrinks the reachable configurations, and
//!    probation penalties only multiply satisfaction down. A
//!    deterministic max-min relaxation over these bounds (a Dijkstra on
//!    formats rather than services) yields, per format, an upper bound
//!    on the satisfaction of any chain delivering that format — and per
//!    shard, an upper bound `U_s` on any *complete* chain that uses at
//!    least one of its services.
//! 2. **Expansion level.** Only the shards on the provisional winning
//!    path are expanded into a real scoped adaptation graph (served
//!    incrementally by [`GraphStore::scoped_graph_for`]), and Figure-4
//!    selection runs on that subgraph. If the returned chain's
//!    satisfaction `W` strictly beats every non-expanded shard's bound
//!    (`U_s < W`), no chain through those shards can match the winner —
//!    not even on a tie-break, which is why the comparison is strict —
//!    so the subgraph winner *is* the flat winner. Otherwise the
//!    offending shards are expanded and selection re-runs; in the worst
//!    case this degenerates to the flat composition (and when selection
//!    fails outright, the full graph is consulted so failures, traces
//!    and tie-breaks are bitwise those of the flat path).
//!
//! Plans are bitwise identical to [`Composer`](crate::Composer):
//! [`AdaptationPlan`] references services by registry id (never by
//! vertex id), the filtered build preserves registration order among
//! surviving vertices, and the strict-bound check rules out every chain
//! the subgraph cannot see. The equivalence is enforced by property
//! test across shard counts and churn schedules.

use crate::composer::StoredComposition;
use crate::graph::{BuildInput, GraphScope, GraphStore};
use crate::plan::AdaptationPlan;
use crate::select::{select_chain_with_penalties, SelectOptions};
use crate::Result;
use qosc_media::{FormatId, FormatRegistry};
use qosc_netsim::{Network, NodeId};
use qosc_profiles::ProfileSet;
use qosc_services::ShardedServiceRegistry;
use std::collections::{BTreeMap, BTreeSet};

/// The two-level composition facade. The sharded sibling of
/// [`Composer`](crate::Composer): same inputs, same outputs, but the
/// service registry is consulted shard-by-shard.
pub struct ShardedComposer<'a> {
    /// The scenario's format registry.
    pub formats: &'a FormatRegistry,
    /// The sharded service registry.
    pub services: &'a ShardedServiceRegistry,
    /// The network.
    pub network: &'a Network,
}

/// The outcome of one two-level composition, plus how much of the
/// registry it had to look at.
#[derive(Debug)]
pub struct TwoLevelComposition {
    /// The composition itself — graph, selection, plan — exactly as the
    /// flat [`Composer`](crate::Composer) would have produced it.
    pub composition: StoredComposition,
    /// Shards expanded into the graph, ascending.
    pub expanded_shards: Vec<u32>,
    /// Selection rounds run (1 = the seed expansion sufficed).
    pub rounds: u32,
    /// Whether the search fell back to expanding every shard (selection
    /// failure, or a winner that could not be proven optimal earlier).
    pub full_expansion: bool,
}

/// One summary-level hop: shard `shard` converts `input` to `output`
/// with satisfaction bounded by `bound`.
struct SummaryHop {
    shard: u32,
    input: FormatId,
    output: FormatId,
    bound: f64,
}

impl ShardedComposer<'_> {
    /// Compose an adaptation chain for one request, expanding as few
    /// shards as the admissible bounds allow. Graphs are served (and
    /// cached per expansion scope) by `store`.
    pub fn compose_with_store(
        &self,
        store: &GraphStore,
        profiles: &ProfileSet,
        sender_host: NodeId,
        receiver_host: NodeId,
        options: &SelectOptions,
    ) -> Result<TwoLevelComposition> {
        profiles.validate()?;
        let variants = profiles.content.resolve(self.formats)?;
        let decoders = profiles.device.resolve_decoders(self.formats)?;
        let receiver_caps = profiles.device.hardware.quality_caps();
        let satisfaction = profiles.effective_satisfaction();
        let budget = profiles.user.budget_or_infinite();
        let shard_count = self.services.shard_count() as usize;

        // ----- summary level -----

        // Score every shard's frontier once: the per-(shard, pair)
        // admissible bound under this request's satisfaction profile.
        let mut hops: Vec<SummaryHop> = Vec::new();
        for shard in 0..shard_count as u32 {
            for (key, top) in self.services.summaries(shard) {
                hops.push(SummaryHop {
                    shard,
                    input: key.input,
                    output: key.output,
                    bound: satisfaction.score(&top),
                });
            }
        }

        // Max-min relaxation over formats: `value[f]` upper-bounds the
        // satisfaction of any chain delivering format `f`. Seeded from
        // the offered variants, relaxed to a fixpoint in deterministic
        // (shard, pair) order; a parent pointer records the hop that
        // set each format's value, giving the provisional winning path.
        let mut value: BTreeMap<FormatId, f64> = BTreeMap::new();
        for variant in &variants {
            let offered = satisfaction.score(&variant.offered.top());
            match value.get(&variant.format) {
                Some(&existing) if existing >= offered => {}
                _ => {
                    value.insert(variant.format, offered);
                }
            }
        }
        let mut parent: BTreeMap<FormatId, (u32, FormatId)> = BTreeMap::new();
        loop {
            let mut moved = false;
            for hop in &hops {
                let Some(&upstream) = value.get(&hop.input) else {
                    continue;
                };
                let through = upstream.min(hop.bound);
                let improves = match value.get(&hop.output) {
                    Some(&existing) => through > existing,
                    None => true,
                };
                if improves {
                    value.insert(hop.output, through);
                    parent.insert(hop.output, (hop.shard, hop.input));
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }

        // Backward reachability: formats from which some decoder is
        // reachable through the summary pairs. A pair whose output
        // cannot reach a decoder can sit on no complete chain.
        let mut reaches_decoder: BTreeSet<FormatId> = decoders.iter().copied().collect();
        loop {
            let before = reaches_decoder.len();
            for hop in &hops {
                if reaches_decoder.contains(&hop.output) {
                    reaches_decoder.insert(hop.input);
                }
            }
            if reaches_decoder.len() == before {
                break;
            }
        }

        // Per-shard bound: the best complete chain using the shard is
        // capped by the best min(value at the hop input, hop bound)
        // over its pairs that can still reach a decoder.
        let mut shard_bound = vec![f64::NEG_INFINITY; shard_count];
        for hop in &hops {
            if !reaches_decoder.contains(&hop.output) {
                continue;
            }
            let Some(&upstream) = value.get(&hop.input) else {
                continue;
            };
            let through = upstream.min(hop.bound);
            if through > shard_bound[hop.shard as usize] {
                shard_bound[hop.shard as usize] = through;
            }
        }

        // Seed expansion: the shards on the parent path of the
        // highest-valued decoder. No reachable decoder → nothing to
        // seed from; expand everything so failures replay the flat
        // search bitwise (including its trace).
        let best_decoder = decoders
            .iter()
            .filter_map(|f| value.get(f).map(|&v| (f, v)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are never NaN"))
            .map(|(f, _)| *f);
        let mut expanded = vec![false; shard_count];
        let mut full_expansion = false;
        match best_decoder {
            Some(mut format) => {
                while let Some(&(shard, upstream)) = parent.get(&format) {
                    expanded[shard as usize] = true;
                    format = upstream;
                }
            }
            None => {
                expanded.iter_mut().for_each(|e| *e = true);
                full_expansion = true;
            }
        }

        // ----- expansion level -----

        let mut rounds = 0u32;
        loop {
            rounds += 1;
            let input = BuildInput {
                formats: self.formats,
                services: self.services.flat(),
                network: self.network,
                variants: &variants,
                sender_host,
                receiver_host,
                decoders: &decoders,
                receiver_caps,
            };
            // A fully expanded scope *is* the flat graph; serving it
            // through the unscoped path shares the store entry (and its
            // delta replay) with flat consumers.
            let all = expanded.iter().all(|&e| e);
            let graph = if all {
                store.graph_for(&input)?
            } else {
                let scope = GraphScope::new(self.services, &expanded);
                store.scoped_graph_for(&input, &scope)?
            };
            let selection = select_chain_with_penalties(
                &graph,
                self.formats,
                &satisfaction,
                budget,
                options,
                self.services.flat().selection_penalties(),
            )?;

            match &selection.chain {
                Some(chain) => {
                    // Any chain through a non-expanded shard scores at
                    // most that shard's bound; strictly below the
                    // winner means it cannot even tie, so the winner
                    // stands as the flat optimum.
                    let need: Vec<u32> = (0..shard_count as u32)
                        .filter(|&s| {
                            !expanded[s as usize] && shard_bound[s as usize] >= chain.satisfaction
                        })
                        .collect();
                    if need.is_empty() {
                        let plan = AdaptationPlan::from_chain(&graph, self.formats, chain)?;
                        return Ok(TwoLevelComposition {
                            composition: StoredComposition {
                                graph,
                                plan: Some(plan),
                                selection,
                            },
                            expanded_shards: collect_expanded(&expanded),
                            rounds,
                            full_expansion,
                        });
                    }
                    for s in need {
                        expanded[s as usize] = true;
                    }
                }
                None => {
                    if all {
                        // The flat search failed too: return its
                        // outcome verbatim.
                        return Ok(TwoLevelComposition {
                            composition: StoredComposition {
                                graph,
                                plan: None,
                                selection,
                            },
                            expanded_shards: collect_expanded(&expanded),
                            rounds,
                            full_expansion,
                        });
                    }
                    // The seed subgraph was too small (the summary
                    // level bounds satisfaction, not feasibility —
                    // budgets, bandwidth and capping can starve it).
                    // Fall back to the flat graph.
                    expanded.iter_mut().for_each(|e| *e = true);
                    full_expansion = true;
                }
            }
        }
    }
}

/// Ascending shard ids flagged in `expanded`.
fn collect_expanded(expanded: &[bool]) -> Vec<u32> {
    expanded
        .iter()
        .enumerate()
        .filter_map(|(s, &e)| e.then_some(s as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composer::Composer;
    use qosc_media::{Axis, AxisDomain, DomainVector, MediaKind, VariantSpec};
    use qosc_netsim::{Node, Topology};
    use qosc_profiles::{
        ContentProfile, ContextProfile, ConversionSpec, DeviceProfile, HardwareCaps,
        NetworkProfile, ServiceSpec, UserProfile,
    };
    use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
    use qosc_services::TranscoderDescriptor;

    struct World {
        formats: FormatRegistry,
        services: ShardedServiceRegistry,
        network: Network,
        sender: NodeId,
        receiver: NodeId,
        profiles: ProfileSet,
    }

    /// Clustered format chains `src -> mid_c -> dst` with per-cluster
    /// quality: cluster 0's services reach 30 fps, cluster 1's only 20,
    /// so the summary level can prove cluster 1 irrelevant.
    fn world(shards: u32) -> World {
        let mut formats = FormatRegistry::new();
        formats.register_abstract("video/src", MediaKind::Video);
        formats.register_abstract("video/dst", MediaKind::Video);
        let mids: Vec<FormatId> = (0..4)
            .map(|c| formats.register_abstract(format!("video/mid{c}"), MediaKind::Video))
            .collect();

        let mut topo = Topology::new();
        let s = topo.add_node(Node::unconstrained("sender"));
        let m = topo.add_node(Node::unconstrained("proxy"));
        let r = topo.add_node(Node::unconstrained("receiver"));
        topo.connect_simple(s, m, 1e9).unwrap();
        topo.connect_simple(m, r, 1e9).unwrap();
        let network = Network::new(topo);

        let mut services = ShardedServiceRegistry::new(shards);
        let fps_domain = |fps: f64| {
            DomainVector::new().with(
                Axis::FrameRate,
                AxisDomain::Continuous { min: 1.0, max: fps },
            )
        };
        for (c, _mid) in mids.iter().enumerate() {
            // Cluster quality cap: cluster 0 best, strictly worse after.
            let fps = 30.0 - 5.0 * c as f64;
            let head = ServiceSpec::new(
                format!("head{c}"),
                vec![ConversionSpec::new(
                    "video/src",
                    format!("video/mid{c}"),
                    fps_domain(fps),
                )],
            );
            let tail = ServiceSpec::new(
                format!("tail{c}"),
                vec![ConversionSpec::new(
                    format!("video/mid{c}"),
                    "video/dst",
                    fps_domain(fps),
                )],
            );
            for spec in [head, tail] {
                services
                    .register_static(TranscoderDescriptor::resolve(&spec, &formats, m).unwrap());
            }
        }

        let mut user = UserProfile::demo("u");
        user.satisfaction = SatisfactionProfile::new().with(AxisPreference::new(
            Axis::FrameRate,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 30.0,
            },
        ));
        let content = ContentProfile::new(
            "clip",
            vec![VariantSpec {
                format: "video/src".to_string(),
                offered: fps_domain(30.0),
            }],
        );
        let device = DeviceProfile::new(
            "screen",
            vec!["video/dst".to_string()],
            HardwareCaps::desktop(),
        );
        let profiles = ProfileSet {
            user,
            content,
            device,
            context: ContextProfile::default(),
            network: NetworkProfile::lan(),
        };
        World {
            formats,
            services,
            network,
            sender: s,
            receiver: r,
            profiles,
        }
    }

    fn flat_plan(w: &World) -> Option<AdaptationPlan> {
        let composer = Composer {
            formats: &w.formats,
            services: w.services.flat(),
            network: &w.network,
        };
        composer
            .compose(&w.profiles, w.sender, w.receiver, &SelectOptions::default())
            .unwrap()
            .plan
    }

    #[test]
    fn two_level_matches_flat_and_skips_losing_shards() {
        for shards in [1u32, 2, 4, 8] {
            let w = world(shards);
            let store = GraphStore::new().with_verification(true);
            let composer = ShardedComposer {
                formats: &w.formats,
                services: &w.services,
                network: &w.network,
            };
            let two = composer
                .compose_with_store(
                    &store,
                    &w.profiles,
                    w.sender,
                    w.receiver,
                    &SelectOptions::default(),
                )
                .unwrap();
            let flat = flat_plan(&w).expect("cluster 0 chain exists");
            assert_eq!(
                two.composition.plan.as_ref(),
                Some(&flat),
                "{shards} shards: plans must be bitwise identical"
            );
            assert!(
                !two.full_expansion,
                "{shards} shards: bounds must prove the winner"
            );
            if shards >= 4 {
                // The losing clusters' shards must never be expanded:
                // their hull tops score strictly below the winner.
                assert!(
                    (two.expanded_shards.len() as u32) < shards,
                    "{shards} shards: expanded {:?}",
                    two.expanded_shards
                );
            }
        }
    }

    #[test]
    fn infeasible_requests_replay_the_flat_failure() {
        let mut w = world(4);
        // A device that decodes a format nobody produces.
        w.profiles.device = DeviceProfile::new(
            "odd",
            vec!["video/mid3".to_string()],
            HardwareCaps::desktop(),
        );
        // mid3 is reachable (head3 produces it), so this still
        // exercises a real search; ask for the impossible instead by
        // deregistering the only producer.
        let head3 = w
            .services
            .flat()
            .live_services()
            .find(|(_, d)| d.name == "head3")
            .map(|(id, _)| id)
            .unwrap();
        w.services.deregister(head3).unwrap();

        let store = GraphStore::new().with_verification(true);
        let composer = ShardedComposer {
            formats: &w.formats,
            services: &w.services,
            network: &w.network,
        };
        let two = composer
            .compose_with_store(
                &store,
                &w.profiles,
                w.sender,
                w.receiver,
                &SelectOptions::default(),
            )
            .unwrap();
        assert!(two.composition.plan.is_none());

        let flat = Composer {
            formats: &w.formats,
            services: w.services.flat(),
            network: &w.network,
        }
        .compose(&w.profiles, w.sender, w.receiver, &SelectOptions::default())
        .unwrap();
        assert!(flat.plan.is_none());
        assert_eq!(
            format!("{:?}", two.composition.selection.failure),
            format!("{:?}", flat.selection.failure),
            "failures replay the flat outcome"
        );
    }

    #[test]
    fn churn_in_unexpanded_shards_keeps_the_scoped_graph_warm() {
        let w = world(8);
        let store = GraphStore::new().with_verification(true);
        let composer = ShardedComposer {
            formats: &w.formats,
            services: &w.services,
            network: &w.network,
        };
        let opts = SelectOptions::default();
        let first = composer
            .compose_with_store(&store, &w.profiles, w.sender, w.receiver, &opts)
            .unwrap();
        assert!(!first.expanded_shards.is_empty());
        let baseline = store.stats();

        // Same request again: every scoped graph is a reuse.
        let again = composer
            .compose_with_store(&store, &w.profiles, w.sender, w.receiver, &opts)
            .unwrap();
        assert_eq!(again.composition.plan, first.composition.plan);
        let stats = store.stats();
        assert_eq!(
            stats.rebuilds, baseline.rebuilds,
            "no new builds: {stats:?}"
        );
        assert_eq!(stats.deltas, baseline.deltas, "no replays: {stats:?}");
        assert!(stats.reuses > baseline.reuses, "{stats:?}");
    }
}
