//! Executable adaptation plans.
//!
//! A plan is the output of the composer: the selected chain rendered as a
//! sequence of concrete stages (which service, on which node, converting
//! what to what, at which configuration) that the streaming pipeline in
//! `qosc-pipeline` can execute.

use crate::graph::{AdaptationGraph, VertexKind};
use crate::select::SelectedChain;
use crate::Result;
use qosc_media::{FormatId, FormatRegistry, ParamVector};
use qosc_netsim::NodeId;
use qosc_services::ServiceId;

/// One stage of an adaptation plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// Display name of the stage (`"sender"`, `"T7"`, `"receiver"`).
    pub name: String,
    /// Registry id of the service (`None` for the endpoints).
    pub service: Option<ServiceId>,
    /// Node the stage runs on.
    pub host: NodeId,
    /// Format the stage emits.
    pub output_format: FormatId,
    /// Configured output parameters.
    pub params: ParamVector,
    /// Bits per second the stage's output requires (its format's bitrate
    /// model evaluated at `params`).
    pub output_bps: f64,
    /// Bits per second crossing the hop *into* this stage: the upstream
    /// stage's output format evaluated at this stage's configuration
    /// (Equa. 2 constrains the edge into a service by the service's own
    /// chosen parameters). Zero for the sender.
    pub input_bps: f64,
    /// Satisfaction label at this stage.
    pub satisfaction: f64,
    /// Accumulated cost up to and including this stage.
    pub accumulated_cost: f64,
}

/// The executable plan for one composition.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationPlan {
    /// Stages from sender to receiver.
    pub steps: Vec<PlanStep>,
    /// Predicted end-to-end user satisfaction.
    pub predicted_satisfaction: f64,
    /// Total predicted cost per second of streaming.
    pub total_cost: f64,
}

impl AdaptationPlan {
    /// Materialize a plan from a selected chain.
    pub fn from_chain(
        graph: &AdaptationGraph,
        formats: &FormatRegistry,
        chain: &SelectedChain,
    ) -> Result<AdaptationPlan> {
        let mut steps = Vec::with_capacity(chain.steps.len());
        for (i, step) in chain.steps.iter().enumerate() {
            let vertex = graph.vertex(step.vertex)?;
            let service = match vertex.kind {
                VertexKind::Transcoder(id) => Some(id),
                _ => None,
            };
            let output_bps = formats
                .spec(step.output_format)?
                .bitrate
                .bits_per_second(&step.params);
            let input_bps = match i {
                0 => 0.0,
                _ => formats
                    .spec(chain.steps[i - 1].output_format)?
                    .bitrate
                    .bits_per_second(&step.params),
            };
            steps.push(PlanStep {
                name: step.name.clone(),
                service,
                host: vertex.host,
                output_format: step.output_format,
                params: step.params,
                output_bps,
                input_bps,
                satisfaction: step.satisfaction,
                accumulated_cost: step.accumulated_cost,
            });
        }
        Ok(AdaptationPlan {
            predicted_satisfaction: chain.satisfaction,
            total_cost: chain.total_cost,
            steps,
        })
    }

    /// Number of trans-coding stages (excludes sender and receiver).
    pub fn transcoder_count(&self) -> usize {
        self.steps.iter().filter(|s| s.service.is_some()).count()
    }

    /// Render the plan as a human-readable multi-line summary.
    pub fn describe(&self, formats: &FormatRegistry) -> String {
        let mut out = format!(
            "adaptation plan: {} stage(s), predicted satisfaction {:.3}, cost {:.4}/s\n",
            self.steps.len(),
            self.predicted_satisfaction,
            self.total_cost
        );
        for (i, step) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "  {i}. {} → {} {} @ {:.0} bit/s (sat {:.3})\n",
                step.name,
                formats.name(step.output_format),
                step.params,
                step.output_bps,
                step.satisfaction,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build::build;
    use crate::graph::BuildInput;
    use crate::select::{select_chain, SelectOptions};
    use qosc_media::{
        Axis, AxisDomain, BitrateModel, ContentVariant, DomainVector, FormatSpec, MediaKind,
    };
    use qosc_netsim::{Network, Node, Topology};
    use qosc_profiles::{ConversionSpec, ServiceSpec};
    use qosc_satisfaction::SatisfactionProfile;
    use qosc_services::{ServiceRegistry, TranscoderDescriptor};

    #[test]
    fn plan_reflects_chain() {
        let mut formats = FormatRegistry::new();
        let linear = BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        let fa = formats.register(FormatSpec::new("A", MediaKind::Video, linear));
        let fb = formats.register(FormatSpec::new("B", MediaKind::Video, linear));
        let mut topo = Topology::new();
        let s = topo.add_node(Node::unconstrained("s"));
        let m = topo.add_node(Node::unconstrained("m"));
        let r = topo.add_node(Node::unconstrained("r"));
        topo.connect_simple(s, m, 1e9).unwrap();
        topo.connect_simple(m, r, 1e9).unwrap();
        let network = Network::new(topo);
        let mut services = ServiceRegistry::new();
        let domain = DomainVector::new().with(
            Axis::FrameRate,
            AxisDomain::Continuous {
                min: 0.0,
                max: 25.0,
            },
        );
        let spec = ServiceSpec::new("T", vec![ConversionSpec::new("A", "B", domain.clone())]);
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, m).unwrap());
        let variants = vec![ContentVariant::new(fa, domain)];
        let graph = build(&BuildInput {
            formats: &formats,
            services: &services,
            network: &network,
            variants: &variants,
            sender_host: s,
            receiver_host: r,
            decoders: &[fb],
            receiver_caps: ParamVector::new(),
        })
        .unwrap();
        let profile = SatisfactionProfile::paper_table1();
        let chain = select_chain(
            &graph,
            &formats,
            &profile,
            f64::INFINITY,
            &SelectOptions::default(),
        )
        .unwrap()
        .chain
        .unwrap();
        let plan = AdaptationPlan::from_chain(&graph, &formats, &chain).unwrap();
        assert_eq!(plan.steps.len(), 3);
        assert_eq!(plan.transcoder_count(), 1);
        assert!(plan.steps[0].service.is_none());
        assert!(plan.steps[1].service.is_some());
        assert_eq!(plan.steps[1].output_bps, 25_000.0);
        assert_eq!(plan.steps[0].input_bps, 0.0);
        assert_eq!(plan.steps[1].input_bps, 25_000.0);
        assert_eq!(plan.steps[2].input_bps, 25_000.0);
        assert_eq!(plan.predicted_satisfaction, chain.satisfaction);
        let text = plan.describe(&formats);
        assert!(text.contains("T"));
        assert!(text.contains("adaptation plan"));
    }
}
