//! Incremental adaptation-graph store.
//!
//! Every compose used to rebuild the Section 4.2 graph from a fresh
//! registry snapshot. Under steady traffic the registry barely changes
//! between requests, so the rebuild is almost always reproducing the
//! graph it produced last time. The store keeps built graphs keyed by
//! their resolved build inputs (sender, receiver class, offered
//! variants, decoders, hardware caps) and stamps each with the
//! `ServiceRegistry::epoch()` and `Network::version()` it was built
//! against:
//!
//! * same epoch + version → return the shared graph as-is (`reuses`);
//! * registry moved a little → replay the event tail as **delta
//!   updates** (add/remove service vertices, unwire/rewire quarantined
//!   ones) against a clone of the stored graph (`deltas`);
//! * registry moved a lot, or the network changed → fall back to a
//!   fresh `build()` (`rebuilds`).
//!
//! Deltas must be *indistinguishable* from a fresh build: selection
//! walks adjacency lists in listing order and its tie-breaks are part
//! of the committed scorecards, so every insertion computes the
//! canonical position a fresh build would have produced (sources in
//! vertex order, formats in first-appearance order, targets in
//! registration order with the receiver last). Edge *ids* may differ —
//! nothing outside the graph stores one. A verification mode (on by
//! default in debug builds) asserts structural equivalence against a
//! fresh build after every delta; `graphs_equivalent` is also exported
//! for the property tests.

use crate::graph::build::{self, BuildInput};
use crate::graph::model::{AdaptationGraph, Edge, Vertex, VertexConversion, VertexId, VertexKind};
use crate::Result;
use parking_lot::RwLock;
use qosc_media::{AxisDomain, DomainVector, FormatId};
use qosc_netsim::{Network, NodeId, PathAnnotation};
use qosc_services::{RegistryEvent, ServiceId, ServiceRegistry, ShardedServiceRegistry};
use qosc_telemetry::{
    Event as TelemetryEvent, EventKind as TelemetryEventKind, MetricsRegistry, TelemetrySink,
    REQUEST_NONE,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Above this many net vertex/edge-set changes the delta path gives up
/// and rebuilds — replaying a large tail costs more than one build.
pub const DEFAULT_DELTA_THRESHOLD: usize = 16;

/// The registry state a stored graph was synchronized against.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RegistryStamp {
    /// Flat path: one registry-wide epoch.
    Flat(u64),
    /// Scoped path: one epoch per expanded shard, in shard order —
    /// mutations confined to non-expanded shards leave every listed
    /// epoch (and therefore the stored graph) untouched.
    Sharded(Vec<(u32, u64)>),
}

/// A stored graph plus the world state it reflects.
struct StoreEntry {
    graph: Arc<AdaptationGraph>,
    stamp: RegistryStamp,
    network_version: u64,
    /// In-scope live services in vertex order (vertex index = 2 +
    /// position); the flag records whether the service was *available*
    /// (wired with in-edges) when the graph was last synchronized.
    services: Vec<(ServiceId, bool)>,
}

/// Scope context for the sharded two-level path: which shards are
/// expanded and the per-service include flags derived from them.
pub struct GraphScope<'a> {
    sharded: &'a ShardedServiceRegistry,
    expanded: &'a [bool],
    filter: Vec<bool>,
}

impl<'a> GraphScope<'a> {
    /// Scope covering the shards flagged in `expanded` (indexed by
    /// shard id).
    pub fn new(sharded: &'a ShardedServiceRegistry, expanded: &'a [bool]) -> GraphScope<'a> {
        GraphScope {
            sharded,
            expanded,
            filter: sharded.scope_filter(expanded),
        }
    }

    /// Per-service include flags.
    pub fn filter(&self) -> &[bool] {
        &self.filter
    }

    /// Epochs of the expanded shards, in shard order.
    fn stamp(&self) -> RegistryStamp {
        RegistryStamp::Sharded(
            (0..self.sharded.shard_count())
                .filter(|&s| self.expanded.get(s as usize).copied().unwrap_or(false))
                .map(|s| (s, self.sharded.shard_epoch(s)))
                .collect(),
        )
    }

    /// A non-zero key perturbation separating this scope's entries
    /// from the flat entry (and from other scopes) under the same
    /// build inputs.
    fn key_salt(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for (index, &flag) in self.expanded.iter().enumerate() {
            if flag {
                for byte in (index as u64).to_le_bytes() {
                    hash ^= u64::from(byte);
                    hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
        }
        hash | 1
    }
}

/// Bulk single-source Dijkstra tables shared across delta applications,
/// valid for exactly one `Network::version()`.
struct AnnotationCache {
    network_version: u64,
    tables: HashMap<usize, Arc<Vec<Option<PathAnnotation>>>>,
}

/// Counters describing how the store served graph requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphStoreStats {
    /// Full `build()` runs (cold keys, stale network, oversized tails).
    pub rebuilds: u64,
    /// Event-tail replays against a stored graph.
    pub deltas: u64,
    /// Net vertex/edge-set changes applied across all delta replays.
    pub delta_ops: u64,
    /// Same-epoch, same-version hits returning the shared graph.
    pub reuses: u64,
}

/// Net effect of the event tail on one stored graph.
#[derive(Default)]
struct DeltaPlan {
    /// Present in the stored graph, no longer live: drop the vertex.
    removals: Vec<ServiceId>,
    /// Live, not yet in the stored graph: append the vertex and wire it.
    additions: Vec<ServiceId>,
    /// Wired but now quarantined: drop the in-edges, keep the vertex.
    unwires: Vec<ServiceId>,
    /// Unwired but available again: rebuild the in-edges.
    rewires: Vec<ServiceId>,
}

impl DeltaPlan {
    fn op_count(&self) -> usize {
        self.removals.len() + self.additions.len() + self.unwires.len() + self.rewires.len()
    }
}

/// A delta-updated graph plus its refreshed `(service, available)`
/// roster; `None` when a stored invariant no longer holds and the
/// caller must rebuild from scratch.
type DeltaOutcome = Option<(AdaptationGraph, Vec<(ServiceId, bool)>)>;

/// Epoch-stamped incremental graph store. Shared by reference across
/// engine workers; all interior mutability is lock- or atomic-based.
pub struct GraphStore {
    entries: RwLock<HashMap<u64, StoreEntry>>,
    annotations: RwLock<AnnotationCache>,
    delta_threshold: usize,
    verify_deltas: bool,
    rebuilds: AtomicU64,
    deltas: AtomicU64,
    delta_ops: AtomicU64,
    reuses: AtomicU64,
}

impl Default for GraphStore {
    fn default() -> GraphStore {
        GraphStore::new()
    }
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphStore")
            .field("graphs", &self.entries.read().len())
            .field("delta_threshold", &self.delta_threshold)
            .field("verify_deltas", &self.verify_deltas)
            .field("stats", &self.stats())
            .finish()
    }
}

impl GraphStore {
    /// A store with the default delta threshold; delta verification is
    /// on in debug builds (so the test suite proves delta == rebuild on
    /// every replay) and off in release builds.
    pub fn new() -> GraphStore {
        GraphStore {
            entries: RwLock::new(HashMap::new()),
            annotations: RwLock::new(AnnotationCache {
                network_version: 0,
                tables: HashMap::new(),
            }),
            delta_threshold: DEFAULT_DELTA_THRESHOLD,
            verify_deltas: cfg!(debug_assertions),
            rebuilds: AtomicU64::new(0),
            deltas: AtomicU64::new(0),
            delta_ops: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
        }
    }

    /// Override the rebuild fallback threshold.
    pub fn with_delta_threshold(mut self, threshold: usize) -> GraphStore {
        self.delta_threshold = threshold;
        self
    }

    /// Force delta verification on or off regardless of build profile.
    pub fn with_verification(mut self, verify: bool) -> GraphStore {
        self.verify_deltas = verify;
        self
    }

    /// Counter snapshot.
    pub fn stats(&self) -> GraphStoreStats {
        GraphStoreStats {
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            deltas: self.deltas.load(Ordering::Relaxed),
            delta_ops: self.delta_ops.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
        }
    }

    /// Mirror the counters into a metrics registry.
    pub fn record_metrics(&self, registry: &MetricsRegistry) {
        let stats = self.stats();
        registry
            .counter("qosc_graph_rebuilds_total")
            .store(stats.rebuilds);
        registry
            .counter("qosc_graph_deltas_total")
            .store(stats.deltas);
        registry
            .counter("qosc_graph_delta_ops_total")
            .store(stats.delta_ops);
        registry
            .counter("qosc_graph_reuses_total")
            .store(stats.reuses);
    }

    /// Emit a deterministic summary of the store's work into a
    /// telemetry sink: one `graph_rebuilt` and one `graph_delta` event
    /// carrying the final counters, at virtual time 0 with
    /// [`REQUEST_NONE`]. Deliberately *not* called from traced request
    /// paths — which request triggers a build is a worker race, and
    /// the flight-recorder log must stay byte-identical across worker
    /// counts — so callers (scorecard bins, audits) record the summary
    /// once after the fact, like `ServiceRegistry::record_telemetry`.
    ///
    /// [`REQUEST_NONE`]: qosc_telemetry::REQUEST_NONE
    pub fn record_telemetry<S: TelemetrySink>(&self, sink: &S) {
        if !sink.enabled() {
            return;
        }
        let stats = self.stats();
        let events = [
            TelemetryEventKind::GraphRebuilt {
                total: stats.rebuilds,
            },
            TelemetryEventKind::GraphDelta {
                ops: stats.delta_ops,
                total: stats.deltas,
            },
        ];
        for (index, kind) in events.into_iter().enumerate() {
            sink.record(TelemetryEvent {
                virtual_time_us: 0,
                request_id: REQUEST_NONE,
                span: 0,
                seq: index as u32,
                kind,
            });
        }
    }

    /// Number of distinct graphs currently stored.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the store holds no graphs yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The graph for `input`, reused, delta-updated, or rebuilt.
    pub fn graph_for(&self, input: &BuildInput<'_>) -> Result<Arc<AdaptationGraph>> {
        self.graph_for_inner(input, None)
    }

    /// The graph for `input` restricted to `scope`'s expanded shards —
    /// the two-level composer's workhorse. Entries are keyed per scope
    /// and stamped with the expanded shards' epochs only, so churn in a
    /// non-expanded shard neither invalidates the entry nor costs a
    /// replay: revalidation is O(expanded shards), not O(registry).
    pub fn scoped_graph_for(
        &self,
        input: &BuildInput<'_>,
        scope: &GraphScope<'_>,
    ) -> Result<Arc<AdaptationGraph>> {
        self.graph_for_inner(input, Some(scope))
    }

    fn graph_for_inner(
        &self,
        input: &BuildInput<'_>,
        scope: Option<&GraphScope<'_>>,
    ) -> Result<Arc<AdaptationGraph>> {
        let key = graph_key(input) ^ scope.map_or(0, GraphScope::key_salt);
        let stamp = match scope {
            None => RegistryStamp::Flat(input.services.epoch()),
            Some(scope) => scope.stamp(),
        };
        let version = input.network.version();
        let filter = scope.map(GraphScope::filter);

        // Fast path: the stored graph is current.
        {
            let guard = self.entries.read();
            if let Some(entry) = guard.get(&key) {
                if entry.stamp == stamp && entry.network_version == version {
                    self.reuses.fetch_add(1, Ordering::Relaxed);
                    return Ok(entry.graph.clone());
                }
            }
        }

        // Snapshot the stale entry (if any) outside the lock.
        let snapshot = {
            let guard = self.entries.read();
            guard.get(&key).map(|entry| {
                (
                    entry.graph.clone(),
                    entry.stamp.clone(),
                    entry.network_version,
                    entry.services.clone(),
                )
            })
        };

        if let Some((graph, stored_stamp, stored_version, services)) = snapshot {
            // Epochs only advance (they count events); a changed
            // network invalidates every edge annotation, so only
            // registry movement is delta-eligible. A compacted tail
            // (`None`) means the events this entry missed are gone —
            // fall through to the rebuild path.
            let tail = if stored_version == version {
                stamped_tail(&stored_stamp, input, scope)
            } else {
                None
            };
            if let Some(tail) = tail {
                let plan = plan_delta(&services, &tail, input.services);
                if plan.op_count() <= self.delta_threshold {
                    if let Some((updated, updated_services)) =
                        self.apply_delta(&graph, &services, &plan, input, filter)?
                    {
                        if self.verify_deltas {
                            let fresh = build::build_filtered(input, filter)?;
                            assert!(
                                graphs_equivalent(&updated, &fresh),
                                "graph delta diverged from fresh build \
                                 ({stored_stamp:?} -> {stamp:?}, {} ops)",
                                plan.op_count()
                            );
                        }
                        let arc = Arc::new(updated);
                        self.entries.write().insert(
                            key,
                            StoreEntry {
                                graph: arc.clone(),
                                stamp,
                                network_version: version,
                                services: updated_services,
                            },
                        );
                        self.deltas.fetch_add(1, Ordering::Relaxed);
                        self.delta_ops
                            .fetch_add(plan.op_count() as u64, Ordering::Relaxed);
                        return Ok(arc);
                    }
                }
            }
        }

        // Cold key, compacted tail, or delta not applicable: rebuild.
        let graph = build::build_filtered(input, filter)?;
        let services: Vec<(ServiceId, bool)> = input
            .services
            .live_services()
            .filter(|&(id, _)| filter.is_none_or(|f| f.get(id.index()).copied().unwrap_or(false)))
            .map(|(id, _)| (id, input.services.is_available(id)))
            .collect();
        let arc = Arc::new(graph);
        self.entries.write().insert(
            key,
            StoreEntry {
                graph: arc.clone(),
                stamp,
                network_version: version,
                services,
            },
        );
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        Ok(arc)
    }

    /// The bulk annotation table for paths out of `from`, shared across
    /// delta applications while the network version holds still.
    fn annotation_table(
        &self,
        network: &Network,
        from: NodeId,
    ) -> Arc<Vec<Option<PathAnnotation>>> {
        let version = network.version();
        {
            let guard = self.annotations.read();
            if guard.network_version == version {
                if let Some(table) = guard.tables.get(&from.index()) {
                    return table.clone();
                }
            }
        }
        let mut guard = self.annotations.write();
        if guard.network_version != version {
            guard.tables.clear();
            guard.network_version = version;
        }
        if let Some(table) = guard.tables.get(&from.index()) {
            return table.clone();
        }
        // Mirrors build(): an unroutable source host yields an empty
        // table, which simply produces no edges.
        let table = Arc::new(network.path_annotations_from(from).unwrap_or_default());
        guard.tables.insert(from.index(), table.clone());
        table
    }

    /// Apply `plan` to a clone of `graph`. Returns `None` when a stored
    /// invariant does not hold (the caller then rebuilds). With a
    /// `scope`, out-of-scope services looked up through the registry's
    /// format index are expected absences and are skipped rather than
    /// treated as broken invariants.
    fn apply_delta(
        &self,
        graph: &AdaptationGraph,
        services: &[(ServiceId, bool)],
        plan: &DeltaPlan,
        input: &BuildInput<'_>,
        scope: Option<&[bool]>,
    ) -> Result<DeltaOutcome> {
        // Invariants a fresh build establishes and deltas preserve.
        if graph.vertex_count() != 2 + services.len()
            || graph.sender() != Some(VertexId::from_index(0))
            || graph.receiver() != Some(VertexId::from_index(1))
        {
            return Ok(None);
        }

        let mut graph = graph.clone();
        let mut services: Vec<(ServiceId, bool)> = services.to_vec();

        // Phase A: one compaction pass removes dead vertices (and their
        // incident edges) and the in-edges of every vertex whose
        // in-list must be emptied (quarantined, or about to be rewired
        // from scratch).
        if !plan.removals.is_empty() || !plan.unwires.is_empty() || !plan.rewires.is_empty() {
            let mut kill = vec![false; graph.vertex_count()];
            let mut drop_in = vec![false; graph.vertex_count()];
            for id in &plan.removals {
                match vertex_of(&services, *id) {
                    Some(v) => kill[v.index()] = true,
                    None => return Ok(None),
                }
            }
            for id in plan.unwires.iter().chain(&plan.rewires) {
                match vertex_of(&services, *id) {
                    Some(v) => drop_in[v.index()] = true,
                    None => return Ok(None),
                }
            }
            graph.retain_canonical(|v| !kill[v.index()], |e: &Edge| !drop_in[e.to.index()]);
            services.retain(|(id, _)| !plan.removals.contains(id));
        }

        // Phase B: append new service vertices, ascending id — new ids
        // are larger than every stored one, so appending lands them in
        // registration order, exactly where a fresh build puts them.
        let mut additions = plan.additions.clone();
        additions.sort_by_key(|id| id.index());
        for &id in &additions {
            let descriptor = input.services.get(id)?;
            let vertex = graph.add_vertex(Vertex {
                kind: VertexKind::Transcoder(id),
                name: descriptor.name.clone(),
                host: descriptor.host,
                conversions: descriptor
                    .conversions
                    .iter()
                    .map(|c| VertexConversion {
                        input: c.input,
                        output: c.output,
                        output_domain: c.output_domain.clone(),
                    })
                    .collect(),
                price_per_second: descriptor.price.per_second,
                price_per_mbit: descriptor.price.per_mbit,
            });
            services.push((id, input.services.is_available(id)));
            if vertex.index() != 1 + services.len() {
                return Ok(None);
            }
        }
        if services
            .windows(2)
            .any(|pair| pair[0].0.index() >= pair[1].0.index())
        {
            return Ok(None);
        }

        // Vertices whose in-lists are rebuilt from scratch: reinstated
        // services plus new vertices that are available. (A new vertex
        // that is already quarantined gets out-edges only, exactly as a
        // fresh build would give it.)
        let mut rebuild_in: Vec<VertexId> = Vec::new();
        for id in &plan.rewires {
            match vertex_of(&services, *id) {
                Some(v) => rebuild_in.push(v),
                None => return Ok(None),
            }
        }
        for &id in &additions {
            if input.services.is_available(id) {
                match vertex_of(&services, id) {
                    Some(v) => rebuild_in.push(v),
                    None => return Ok(None),
                }
            }
        }
        rebuild_in.sort_by_key(|v| v.index());
        let mut in_rebuild_set = vec![false; graph.vertex_count()];
        for v in &rebuild_in {
            in_rebuild_set[v.index()] = true;
        }

        let receiver = VertexId::from_index(1);

        // Phase C1: out-edges of new vertices, skipping targets whose
        // in-lists are rebuilt below (those edges are generated there).
        // Generation follows builder order — formats in
        // first-appearance order, accepting services in registration
        // order, receiver last — so appending to the new vertex's empty
        // out-list is canonical.
        for &id in &additions {
            let source = match vertex_of(&services, id) {
                Some(v) => v,
                None => return Ok(None),
            };
            let from_host = graph.vertex(source)?.host;
            let annotations = self.annotation_table(input.network, from_host);
            let outputs = graph.vertex(source)?.output_formats();
            for format in outputs {
                for target_id in input.services.accepting(format) {
                    if let Some(filter) = scope {
                        if !filter.get(target_id.index()).copied().unwrap_or(false) {
                            continue;
                        }
                    }
                    let target = match vertex_of(&services, target_id) {
                        Some(v) => v,
                        None => return Ok(None),
                    };
                    if target == source || in_rebuild_set[target.index()] {
                        continue;
                    }
                    let to_host = graph.vertex(target)?.host;
                    if let Some(a) = annotations.get(to_host.index()).copied().flatten() {
                        let out_pos = graph.out_edges(source).len();
                        let in_pos = canonical_in_pos(&graph, target, source, out_pos);
                        graph.insert_edge_at(
                            Edge {
                                from: source,
                                to: target,
                                format,
                                available_bps: a.available_bps,
                                delay_us: a.delay_us,
                                price_flat: a.price_flat,
                                price_per_mbit: a.price_per_mbit,
                            },
                            out_pos,
                            in_pos,
                        );
                    }
                }
                if input.decoders.contains(&format) {
                    if let Some(a) = annotations
                        .get(input.receiver_host.index())
                        .copied()
                        .flatten()
                    {
                        let out_pos = graph.out_edges(source).len();
                        let in_pos = canonical_in_pos(&graph, receiver, source, out_pos);
                        graph.insert_edge_at(
                            Edge {
                                from: source,
                                to: receiver,
                                format,
                                available_bps: a.available_bps,
                                delay_us: a.delay_us,
                                price_flat: a.price_flat,
                                price_per_mbit: a.price_per_mbit,
                            },
                            out_pos,
                            in_pos,
                        );
                    }
                }
            }
        }

        // Phase C2: rebuild emptied in-lists. Sources are walked in
        // vertex order and formats in each source's first-appearance
        // order, which is exactly the builder's generation order for
        // this target — so the in-list fills back up by appending,
        // while each edge is spliced into its source's out-list at the
        // canonical position.
        for &target in &rebuild_in {
            if !graph.in_edges(target).is_empty() {
                return Ok(None);
            }
            let to_host = graph.vertex(target)?.host;
            let source_count = graph.vertex_count();
            for source_index in 0..source_count {
                if source_index == 1 || source_index == target.index() {
                    continue; // the receiver has no out-edges
                }
                let source = VertexId::from_index(source_index);
                let outputs = graph.vertex(source)?.output_formats();
                let from_host = graph.vertex(source)?.host;
                let annotations = self.annotation_table(input.network, from_host);
                let annotation = annotations.get(to_host.index()).copied().flatten();
                for (rank, &format) in outputs.iter().enumerate() {
                    if !graph.vertex(target)?.accepts(format) {
                        continue;
                    }
                    if let Some(a) = annotation {
                        let out_pos = canonical_out_pos(&graph, source, &outputs, rank, target);
                        let in_pos = graph.in_edges(target).len();
                        graph.insert_edge_at(
                            Edge {
                                from: source,
                                to: target,
                                format,
                                available_bps: a.available_bps,
                                delay_us: a.delay_us,
                                price_flat: a.price_flat,
                                price_per_mbit: a.price_per_mbit,
                            },
                            out_pos,
                            in_pos,
                        );
                    }
                }
            }
        }

        // Re-stamp availability for the surviving services.
        for (id, wired) in services.iter_mut() {
            *wired = input.services.is_available(*id);
        }

        Ok(Some((graph, services)))
    }
}

/// Vertex index of service `id` given the live-service list (vertex
/// index = 2 + list position; sender is 0, receiver is 1).
fn vertex_of(services: &[(ServiceId, bool)], id: ServiceId) -> Option<VertexId> {
    services
        .iter()
        .position(|&(s, _)| s == id)
        .map(|p| VertexId::from_index(2 + p))
}

/// The concatenated event tail a stored stamp misses, or `None` when
/// any needed tail was compacted away (the registry's or a shard's log
/// no longer reaches back to the stamp) or the stamp shape does not
/// match the request — both force the rebuild fallback.
fn stamped_tail(
    stored: &RegistryStamp,
    input: &BuildInput<'_>,
    scope: Option<&GraphScope<'_>>,
) -> Option<Vec<RegistryEvent>> {
    match (stored, scope) {
        (RegistryStamp::Flat(epoch), None) => {
            input.services.events_since(*epoch).map(<[_]>::to_vec)
        }
        (RegistryStamp::Sharded(stamps), Some(scope)) => {
            // `plan_delta` classifies net effects off current registry
            // state, so cross-shard concatenation order is irrelevant.
            let mut tail = Vec::new();
            for &(shard, epoch) in stamps {
                tail.extend_from_slice(scope.sharded.shard_events_since(shard, epoch)?);
            }
            Some(tail)
        }
        _ => None,
    }
}

/// Classify the event tail into net vertex/edge-set changes against the
/// stored state. Events only tell us *which* services moved; the net
/// effect is read off the registry's current state, so a service that
/// (say) was quarantined and reinstated within the tail is a no-op.
fn plan_delta(
    services: &[(ServiceId, bool)],
    tail: &[RegistryEvent],
    registry: &ServiceRegistry,
) -> DeltaPlan {
    let mut changed: Vec<ServiceId> = Vec::new();
    for event in tail {
        let id = match event {
            RegistryEvent::Registered(id)
            | RegistryEvent::Renewed(id)
            | RegistryEvent::Expired(id)
            | RegistryEvent::Deregistered(id)
            | RegistryEvent::Quarantined(id)
            | RegistryEvent::Reinstated(id)
            // Probation moves selection *penalties*, not graph
            // structure: the availability re-stamp below confirms the
            // vertex set is unchanged, while the epoch bump that
            // carried this event already forces cached selections to
            // recompute against the new penalty view.
            | RegistryEvent::Probated(id)
            | RegistryEvent::ProbationCleared(id) => *id,
        };
        if !changed.contains(&id) {
            changed.push(id);
        }
    }

    let mut plan = DeltaPlan::default();
    for id in changed {
        let stored = services.iter().find(|&&(s, _)| s == id);
        let live = registry.is_live(id);
        let available = registry.is_available(id);
        match stored {
            Some(&(_, wired)) => {
                if !live {
                    plan.removals.push(id);
                } else if wired && !available {
                    plan.unwires.push(id);
                } else if !wired && available {
                    plan.rewires.push(id);
                }
            }
            None => {
                if live {
                    plan.additions.push(id);
                }
            }
        }
    }
    plan
}

/// Canonical position for a new edge `source -> target` carrying the
/// `rank`-th output format of `source`, within `source`'s out-list.
///
/// Builder listing order per source: format segments in
/// first-appearance order; within a segment, service targets ascending
/// by vertex index (= registration order), then the receiver.
fn canonical_out_pos(
    graph: &AdaptationGraph,
    source: VertexId,
    outputs: &[FormatId],
    rank: usize,
    target: VertexId,
) -> usize {
    let receiver = graph.receiver();
    let key_of = |edge: &Edge| -> (usize, bool, usize) {
        let edge_rank = outputs
            .iter()
            .position(|&f| f == edge.format)
            .unwrap_or(usize::MAX);
        (edge_rank, Some(edge.to) == receiver, edge.to.index())
    };
    let new_key = (rank, Some(target) == receiver, target.index());
    let list = graph.out_edges(source);
    for (pos, &edge_id) in list.iter().enumerate() {
        let edge = graph.edge(edge_id).expect("listed edge exists");
        if key_of(edge) > new_key {
            return pos;
        }
    }
    list.len()
}

/// Canonical position for a new edge `source -> target` within
/// `target`'s in-list, where the edge will sit at `new_out_pos` of
/// `source`'s out-list.
///
/// Builder listing order per target: sources ascending by vertex index;
/// edges from the same source in that source's out-list order.
fn canonical_in_pos(
    graph: &AdaptationGraph,
    target: VertexId,
    source: VertexId,
    new_out_pos: usize,
) -> usize {
    let new_key = (source.index(), new_out_pos);
    let list = graph.in_edges(target);
    for (pos, &edge_id) in list.iter().enumerate() {
        let edge = graph.edge(edge_id).expect("listed edge exists");
        let out_pos = graph
            .out_edges(edge.from)
            .iter()
            .position(|&e| e == edge_id)
            .expect("edge listed by its source");
        // Same-source edges at or past the insertion point shift by
        // one once the new edge goes in.
        let effective = if edge.from == source && out_pos >= new_out_pos {
            out_pos + 1
        } else {
            out_pos
        };
        if (edge.from.index(), effective) > new_key {
            return pos;
        }
    }
    list.len()
}

/// Structural equivalence: identical vertices (kind, name, host,
/// conversions, prices), endpoints, receiver caps, and per-vertex
/// adjacency lists resolved to edge payloads. Edge *numbering* is
/// deliberately not compared — selection never observes it.
pub fn graphs_equivalent(a: &AdaptationGraph, b: &AdaptationGraph) -> bool {
    if a.vertex_count() != b.vertex_count()
        || a.edge_count() != b.edge_count()
        || a.sender() != b.sender()
        || a.receiver() != b.receiver()
        || a.receiver_caps() != b.receiver_caps()
    {
        return false;
    }
    let resolve = |graph: &AdaptationGraph, list: &[crate::graph::model::EdgeId]| -> Vec<Edge> {
        list.iter()
            .map(|&e| graph.edge(e).expect("listed edge exists").clone())
            .collect()
    };
    for vertex in a.vertex_ids() {
        let (va, vb) = match (a.vertex(vertex), b.vertex(vertex)) {
            (Ok(va), Ok(vb)) => (va, vb),
            _ => return false,
        };
        if va != vb {
            return false;
        }
        if resolve(a, a.out_edges(vertex)) != resolve(b, b.out_edges(vertex)) {
            return false;
        }
        if resolve(a, a.in_edges(vertex)) != resolve(b, b.in_edges(vertex)) {
            return false;
        }
    }
    true
}

/// Hash the resolved build inputs a graph depends on. Two requests with
/// the same sender host, receiver host, offered variants, decoders and
/// hardware caps share a graph — notably every degradation rung that
/// only rewrites the *user* profile maps to the same key.
fn graph_key(input: &BuildInput<'_>) -> u64 {
    let mut hasher = DefaultHasher::new();
    input.sender_host.index().hash(&mut hasher);
    input.receiver_host.index().hash(&mut hasher);
    input.variants.len().hash(&mut hasher);
    for variant in input.variants {
        variant.format.index().hash(&mut hasher);
        hash_domain_vector(&variant.offered, &mut hasher);
    }
    input.decoders.len().hash(&mut hasher);
    for decoder in input.decoders {
        decoder.index().hash(&mut hasher);
    }
    for (axis, value) in input.receiver_caps.iter() {
        axis.index().hash(&mut hasher);
        value.to_bits().hash(&mut hasher);
    }
    hasher.finish()
}

fn hash_domain_vector(domain: &DomainVector, hasher: &mut DefaultHasher) {
    for (axis, axis_domain) in domain.iter() {
        axis.index().hash(hasher);
        match axis_domain {
            AxisDomain::Continuous { min, max } => {
                0u8.hash(hasher);
                min.to_bits().hash(hasher);
                max.to_bits().hash(hasher);
            }
            AxisDomain::Discrete(values) => {
                1u8.hash(hasher);
                values.len().hash(hasher);
                for value in values {
                    value.to_bits().hash(hasher);
                }
            }
            AxisDomain::Fixed(value) => {
                2u8.hash(hasher);
                value.to_bits().hash(hasher);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::{ContentVariant, FormatRegistry, MediaKind, ParamVector};
    use qosc_netsim::{Node, SimTime, Topology};
    use qosc_profiles::{ConversionSpec, ServiceSpec};
    use qosc_services::{QuarantineConfig, TranscoderDescriptor};

    struct Scenario {
        formats: FormatRegistry,
        services: ServiceRegistry,
        network: Network,
        variants: Vec<ContentVariant>,
        sender: NodeId,
        middle: NodeId,
        receiver: NodeId,
        decoders: Vec<FormatId>,
    }

    impl Scenario {
        fn input(&self) -> BuildInput<'_> {
            BuildInput {
                formats: &self.formats,
                services: &self.services,
                network: &self.network,
                variants: &self.variants,
                sender_host: self.sender,
                receiver_host: self.receiver,
                decoders: &self.decoders,
                receiver_caps: ParamVector::new(),
            }
        }
    }

    /// `sender -> {A->B transcoders on m} -> receiver`, with a chain
    /// `A->C->B` pair so multi-hop paths and multiple formats exist.
    fn scenario(transcoders: usize) -> Scenario {
        let mut formats = FormatRegistry::new();
        let fa = formats.register_abstract("A", MediaKind::Video);
        let fb = formats.register_abstract("B", MediaKind::Video);
        let _fc = formats.register_abstract("C", MediaKind::Video);

        let mut topo = Topology::new();
        let s = topo.add_node(Node::unconstrained("s"));
        let m = topo.add_node(Node::unconstrained("m"));
        let r = topo.add_node(Node::unconstrained("r"));
        topo.connect_simple(s, m, 1e9).unwrap();
        topo.connect_simple(m, r, 1e9).unwrap();
        let network = Network::new(topo);

        let mut services = ServiceRegistry::new();
        services.set_quarantine_config(QuarantineConfig {
            failure_threshold: 1,
            cooldown_us: 1_000_000,
        });
        for i in 0..transcoders {
            let spec = ServiceSpec::new(
                format!("T{i}"),
                vec![
                    ConversionSpec::new("A", "B", DomainVector::new()),
                    ConversionSpec::new("A", "C", DomainVector::new()),
                    ConversionSpec::new("C", "B", DomainVector::new()),
                ],
            );
            let descriptor = TranscoderDescriptor::resolve(&spec, &formats, m).unwrap();
            services.register(descriptor, SimTime::ZERO, 10_000_000);
        }

        let variants = vec![ContentVariant::new(fa, DomainVector::new())];
        Scenario {
            formats,
            services,
            network,
            variants,
            sender: s,
            middle: m,
            receiver: r,
            decoders: vec![fb],
        }
    }

    fn register_one(sc: &mut Scenario, name: &str, now: SimTime) -> ServiceId {
        let m = sc.middle;
        let spec = ServiceSpec::new(
            name,
            vec![
                ConversionSpec::new("A", "B", DomainVector::new()),
                ConversionSpec::new("C", "B", DomainVector::new()),
            ],
        );
        let descriptor = TranscoderDescriptor::resolve(&spec, &sc.formats, m).unwrap();
        sc.services.register(descriptor, now, 10_000_000)
    }

    #[test]
    fn same_epoch_requests_share_the_graph() {
        let sc = scenario(4);
        let store = GraphStore::new().with_verification(true);
        let a = store.graph_for(&sc.input()).unwrap();
        let b = store.graph_for(&sc.input()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = store.stats();
        assert_eq!(
            (stats.rebuilds, stats.deltas, stats.reuses),
            (1, 0, 1),
            "{stats:?}"
        );
    }

    #[test]
    fn registration_churn_is_served_by_deltas() {
        let mut sc = scenario(4);
        let store = GraphStore::new().with_verification(true);
        store.graph_for(&sc.input()).unwrap();

        // Register two more services: delta, not rebuild (the internal
        // verification asserts equivalence with a fresh build).
        register_one(&mut sc, "N0", SimTime::ZERO.plus_micros(10));
        register_one(&mut sc, "N1", SimTime::ZERO.plus_micros(20));
        let updated = store.graph_for(&sc.input()).unwrap();
        let fresh = build::build(&sc.input()).unwrap();
        assert!(graphs_equivalent(&updated, &fresh));

        // Renewals move the epoch but change nothing: zero-op delta.
        let renew_id = sc.services.live_services().next().unwrap().0;
        sc.services
            .renew(renew_id, SimTime::ZERO.plus_micros(30), 10_000_000)
            .unwrap();
        let renewed = store.graph_for(&sc.input()).unwrap();
        assert!(graphs_equivalent(&renewed, &fresh));

        let stats = store.stats();
        assert_eq!((stats.rebuilds, stats.deltas), (1, 2), "{stats:?}");
        assert_eq!(stats.delta_ops, 2, "two additions, zero-op renewal");
    }

    #[test]
    fn quarantine_reinstate_and_expiry_deltas_match_fresh_builds() {
        let mut sc = scenario(5);
        let store = GraphStore::new().with_verification(true);
        store.graph_for(&sc.input()).unwrap();

        let ids: Vec<ServiceId> = sc.services.live_services().map(|(id, _)| id).collect();

        // Quarantine one service: its in-edges disappear.
        let t = SimTime::ZERO.plus_micros(100);
        assert!(sc.services.report_failure(ids[1], t).unwrap());
        let quarantined = store.graph_for(&sc.input()).unwrap();
        assert!(graphs_equivalent(
            &quarantined,
            &build::build(&sc.input()).unwrap()
        ));

        // Reinstate it: the in-edges come back, canonically placed.
        let t2 = t.plus_micros(2_000_000);
        assert_eq!(sc.services.release_quarantines(t2), vec![ids[1]]);
        let reinstated = store.graph_for(&sc.input()).unwrap();
        assert!(graphs_equivalent(
            &reinstated,
            &build::build(&sc.input()).unwrap()
        ));

        // Let every lease lapse except one: vertices are compacted.
        for &id in &ids[..4] {
            sc.services.deregister(id).unwrap();
        }
        let shrunk = store.graph_for(&sc.input()).unwrap();
        assert!(graphs_equivalent(
            &shrunk,
            &build::build(&sc.input()).unwrap()
        ));
        assert_eq!(shrunk.vertex_count(), 3, "sender, receiver, one service");

        let stats = store.stats();
        assert_eq!((stats.rebuilds, stats.deltas), (1, 3), "{stats:?}");
    }

    #[test]
    fn network_changes_force_a_rebuild() {
        let mut sc = scenario(3);
        let store = GraphStore::new().with_verification(true);
        store.graph_for(&sc.input()).unwrap();
        sc.network.advance_background();
        store.graph_for(&sc.input()).unwrap();
        let stats = store.stats();
        assert_eq!((stats.rebuilds, stats.deltas), (2, 0), "{stats:?}");
    }

    #[test]
    fn compacted_event_tails_fall_back_to_rebuild() {
        let mut sc = scenario(3);
        let store = GraphStore::new().with_verification(true);
        store.graph_for(&sc.input()).unwrap();

        // Registry moves, then the log the store would replay is
        // compacted away: the store must notice the missing tail and
        // rebuild instead of replaying a hole.
        register_one(&mut sc, "N0", SimTime::ZERO.plus_micros(10));
        sc.services.compact_events_below(sc.services.epoch());
        assert_eq!(sc.services.events_since(0), None, "tail really is gone");

        let updated = store.graph_for(&sc.input()).unwrap();
        assert!(graphs_equivalent(
            &updated,
            &build::build(&sc.input()).unwrap()
        ));
        let stats = store.stats();
        assert_eq!(
            (stats.rebuilds, stats.deltas),
            (2, 0),
            "a compacted tail is a rebuild, never a delta: {stats:?}"
        );

        // Epochs recorded after compaction replay as deltas again.
        register_one(&mut sc, "N1", SimTime::ZERO.plus_micros(20));
        let after = store.graph_for(&sc.input()).unwrap();
        assert!(graphs_equivalent(
            &after,
            &build::build(&sc.input()).unwrap()
        ));
        let stats = store.stats();
        assert_eq!((stats.rebuilds, stats.deltas), (2, 1), "{stats:?}");
    }

    #[test]
    fn scoped_graphs_restamp_only_on_expanded_shard_churn() {
        use qosc_services::ShardedServiceRegistry;

        let mut formats = FormatRegistry::new();
        let fa = formats.register_abstract("A", MediaKind::Video);
        let fb = formats.register_abstract("B", MediaKind::Video);
        formats.register_abstract("C", MediaKind::Video);

        let mut topo = Topology::new();
        let s = topo.add_node(Node::unconstrained("s"));
        let m = topo.add_node(Node::unconstrained("m"));
        let r = topo.add_node(Node::unconstrained("r"));
        topo.connect_simple(s, m, 1e9).unwrap();
        topo.connect_simple(m, r, 1e9).unwrap();
        let network = Network::new(topo);

        let mut sharded = ShardedServiceRegistry::new(4);
        let make = |formats: &FormatRegistry, name: &str, input: &str| {
            let spec = ServiceSpec::new(
                name,
                vec![ConversionSpec::new(input, "B", DomainVector::new())],
            );
            TranscoderDescriptor::resolve(&spec, formats, m).unwrap()
        };
        let a = sharded.register_static(make(&formats, "TA", "A"));
        let c = sharded.register_static(make(&formats, "TC", "C"));
        let (sa, sc_shard) = (sharded.shard_of(a), sharded.shard_of(c));
        assert_ne!(sa, sc_shard, "fixture formats land in distinct shards");

        let variants = vec![ContentVariant::new(fa, DomainVector::new())];
        let decoders = vec![fb];
        macro_rules! input {
            () => {
                BuildInput {
                    formats: &formats,
                    services: sharded.flat(),
                    network: &network,
                    variants: &variants,
                    sender_host: s,
                    receiver_host: r,
                    decoders: &decoders,
                    receiver_caps: ParamVector::new(),
                }
            };
        }

        let store = GraphStore::new().with_verification(true);
        let mut expanded = vec![false; 4];
        expanded[sa as usize] = true;

        // The scoped graph contains only shard `sa`'s service, and is
        // bitwise the filtered fresh build.
        {
            let bi = input!();
            let scope = GraphScope::new(&sharded, &expanded);
            let scoped = store.scoped_graph_for(&bi, &scope).unwrap();
            assert_eq!(scoped.vertex_count(), 3, "sender, receiver, TA only");
            let fresh = build::build_filtered(&bi, Some(scope.filter())).unwrap();
            assert!(graphs_equivalent(&scoped, &fresh));
        }

        // Churn confined to the *other* shard: the scoped entry's
        // stamps are untouched, so the store serves a zero-cost reuse.
        sharded
            .renew(c, SimTime::ZERO.plus_micros(10), 10_000_000)
            .unwrap();
        {
            let bi = input!();
            let scope = GraphScope::new(&sharded, &expanded);
            store.scoped_graph_for(&bi, &scope).unwrap();
        }
        let stats = store.stats();
        assert_eq!(
            (stats.rebuilds, stats.deltas, stats.reuses),
            (1, 0, 1),
            "other-shard churn must be a reuse: {stats:?}"
        );

        // Churn in the expanded shard replays as a delta.
        sharded
            .renew(a, SimTime::ZERO.plus_micros(20), 10_000_000)
            .unwrap();
        {
            let bi = input!();
            let scope = GraphScope::new(&sharded, &expanded);
            store.scoped_graph_for(&bi, &scope).unwrap();
        }
        let stats = store.stats();
        assert_eq!((stats.rebuilds, stats.deltas), (1, 1), "{stats:?}");

        // Compacting the expanded shard's log forces the fallback.
        sharded
            .renew(a, SimTime::ZERO.plus_micros(30), 10_000_000)
            .unwrap();
        sharded.compact_shard_events_below(sa, sharded.shard_epoch(sa));
        {
            let bi = input!();
            let scope = GraphScope::new(&sharded, &expanded);
            store.scoped_graph_for(&bi, &scope).unwrap();
        }
        let stats = store.stats();
        assert_eq!(
            (stats.rebuilds, stats.deltas),
            (2, 1),
            "compacted shard tail is a rebuild: {stats:?}"
        );
    }

    #[test]
    fn oversized_event_tails_fall_back_to_rebuild() {
        let mut sc = scenario(2);
        let store = GraphStore::new()
            .with_verification(true)
            .with_delta_threshold(1);
        store.graph_for(&sc.input()).unwrap();
        register_one(&mut sc, "N0", SimTime::ZERO.plus_micros(10));
        register_one(&mut sc, "N1", SimTime::ZERO.plus_micros(20));
        let updated = store.graph_for(&sc.input()).unwrap();
        assert!(graphs_equivalent(
            &updated,
            &build::build(&sc.input()).unwrap()
        ));
        let stats = store.stats();
        assert_eq!((stats.rebuilds, stats.deltas), (2, 0), "{stats:?}");
    }
}
