//! Graph pruning ("apply some optimization techniques on the graph to
//! remove the extra edges", Section 4).
//!
//! A vertex is useful only if it is forward-reachable from the sender
//! *and* backward-reachable from the receiver through format-compatible
//! state transitions; everything else (like T20 in the paper's Figure-6
//! example, a dead end the greedy search still explores) can be removed
//! without changing the selected chain. The property tests verify that
//! pruning preserves the optimum.

use crate::graph::model::{AdaptationGraph, Edge, VertexId, VertexKind};
use crate::Result;
use std::collections::{HashSet, VecDeque};

/// What pruning removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneStats {
    /// Vertices removed.
    pub vertices_removed: usize,
    /// Edges removed.
    pub edges_removed: usize,
}

/// Prune the graph to the sender→receiver core. Returns the pruned graph
/// and statistics. The relative order of surviving vertices and edges is
/// preserved, so tie-breaking behaves identically on the pruned graph.
pub fn prune(graph: &AdaptationGraph) -> Result<(AdaptationGraph, PruneStats)> {
    let (sender, receiver) = match (graph.sender(), graph.receiver()) {
        (Some(s), Some(r)) => (s, r),
        _ => return Ok((graph.clone(), PruneStats::default())),
    };

    // Forward reachability over (vertex, output format) states.
    let mut forward: HashSet<VertexId> = HashSet::new();
    let mut forward_states: HashSet<(VertexId, qosc_media::FormatId)> = HashSet::new();
    let mut queue: VecDeque<(VertexId, qosc_media::FormatId)> = VecDeque::new();
    forward.insert(sender);
    for conversion in &graph.vertex(sender)?.conversions {
        if forward_states.insert((sender, conversion.output)) {
            queue.push_back((sender, conversion.output));
        }
    }
    while let Some((vertex, format)) = queue.pop_front() {
        for &edge_id in graph.out_edges(vertex) {
            let edge = graph.edge(edge_id)?;
            if edge.format != format {
                continue;
            }
            forward.insert(edge.to);
            for conversion in graph.vertex(edge.to)?.conversions_from(format) {
                if forward_states.insert((edge.to, conversion.output)) {
                    queue.push_back((edge.to, conversion.output));
                }
            }
        }
    }

    // Backward reachability: a vertex is useful if one of its output
    // formats can reach the receiver. Work over states in reverse.
    let mut useful_states: HashSet<(VertexId, qosc_media::FormatId)> = HashSet::new();
    let mut back_queue: VecDeque<VertexId> = VecDeque::new();
    let mut backward: HashSet<VertexId> = HashSet::new();
    backward.insert(receiver);
    back_queue.push_back(receiver);
    // Receiver states: every decoder format.
    for conversion in &graph.vertex(receiver)?.conversions {
        useful_states.insert((receiver, conversion.input));
    }
    while let Some(vertex) = back_queue.pop_front() {
        for &edge_id in graph.in_edges(vertex) {
            let edge = graph.edge(edge_id)?;
            // The upstream vertex must be able to *reach* this edge's
            // format: some conversion of `edge.from` outputs it, and for
            // non-endpoint vertices some input format of that conversion
            // must itself be incoming-compatible. We approximate with
            // output capability (exact per-state backward reachability
            // is computed below against forward states).
            let from = edge.from;
            let outputs_format = graph
                .vertex(from)?
                .conversions
                .iter()
                .any(|c| c.output == edge.format);
            if outputs_format {
                useful_states.insert((from, edge.format));
                if backward.insert(from) {
                    back_queue.push_back(from);
                }
            }
        }
    }

    // Keep vertices on some sender→receiver corridor.
    let keep: Vec<VertexId> = graph
        .vertex_ids()
        .filter(|v| {
            *v == sender
                || *v == receiver
                || (forward.contains(v)
                    && backward.contains(v)
                    && graph
                        .vertex(*v)
                        .map(|vx| {
                            vx.conversions.iter().any(|c| {
                                forward_states.contains(&(*v, c.output))
                                    && useful_states.contains(&(*v, c.output))
                            })
                        })
                        .unwrap_or(false))
        })
        .collect();

    // Rebuild, preserving relative order.
    let mut pruned = AdaptationGraph::new();
    pruned.set_receiver_caps(*graph.receiver_caps());
    let mut remap: Vec<Option<VertexId>> = vec![None; graph.vertex_count()];
    for &old in &keep {
        let vertex = graph.vertex(old)?.clone();
        remap[old.index()] = Some(pruned.add_vertex(vertex));
    }
    let mut edges_kept = 0usize;
    for edge_id in graph.edge_ids() {
        let edge = graph.edge(edge_id)?;
        if let (Some(from), Some(to)) = (remap[edge.from.index()], remap[edge.to.index()]) {
            // Keep only edges whose format is actually deliverable.
            if forward_states.contains(&(edge.from, edge.format)) {
                pruned.add_edge(Edge {
                    from,
                    to,
                    ..edge.clone()
                })?;
                edges_kept += 1;
            }
        }
    }

    let stats = PruneStats {
        vertices_removed: graph.vertex_count() - keep.len(),
        edges_removed: graph.edge_count() - edges_kept,
    };
    Ok((pruned, stats))
}

/// Whether a vertex survives pruning in kind (used by tests).
pub fn is_endpoint(graph: &AdaptationGraph, vertex: VertexId) -> bool {
    graph
        .vertex(vertex)
        .map(|v| matches!(v.kind, VertexKind::Sender | VertexKind::Receiver))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::model::{Vertex, VertexConversion};
    use qosc_media::{DomainVector, FormatRegistry, MediaKind};
    use qosc_netsim::{Node, Topology};

    fn host() -> qosc_netsim::NodeId {
        let mut t = Topology::new();
        t.add_node(Node::unconstrained("h"))
    }

    fn vertex(kind: VertexKind, name: &str, conv: Vec<VertexConversion>) -> Vertex {
        Vertex {
            kind,
            name: name.to_string(),
            host: host(),
            conversions: conv,
            price_per_second: 0.0,
            price_per_mbit: 0.0,
        }
    }

    fn edge(from: VertexId, to: VertexId, format: qosc_media::FormatId) -> Edge {
        Edge {
            from,
            to,
            format,
            available_bps: f64::INFINITY,
            delay_us: 0,
            price_flat: 0.0,
            price_per_mbit: 0.0,
        }
    }

    /// sender →A→ T1 →B→ receiver, plus a dead-end T2 (sender →A→ T2 →C→ ∅)
    /// and an unreachable T3 (∅ →D→ T3 →B→ receiver).
    #[test]
    fn prune_removes_dead_ends_and_unreachables() {
        let mut formats = FormatRegistry::new();
        let fa = formats.register_abstract("A", MediaKind::Video);
        let fb = formats.register_abstract("B", MediaKind::Video);
        let fc = formats.register_abstract("C", MediaKind::Video);
        let fd = formats.register_abstract("D", MediaKind::Video);

        let conv = |i, o| VertexConversion {
            input: i,
            output: o,
            output_domain: DomainVector::new(),
        };
        let mut g = AdaptationGraph::new();
        let s = g.add_vertex(vertex(VertexKind::Sender, "sender", vec![conv(fa, fa)]));
        let r = g.add_vertex(vertex(VertexKind::Receiver, "receiver", vec![conv(fb, fb)]));
        let t1 = g.add_vertex(vertex(
            VertexKind::Transcoder(dummy_service_id(&mut formats)),
            "T1",
            vec![conv(fa, fb)],
        ));
        let t2 = g.add_vertex(vertex(
            VertexKind::Transcoder(dummy_service_id(&mut formats)),
            "T2",
            vec![conv(fa, fc)],
        ));
        let t3 = g.add_vertex(vertex(
            VertexKind::Transcoder(dummy_service_id(&mut formats)),
            "T3",
            vec![conv(fd, fb)],
        ));
        g.add_edge(edge(s, t1, fa)).unwrap();
        g.add_edge(edge(t1, r, fb)).unwrap();
        g.add_edge(edge(s, t2, fa)).unwrap();
        g.add_edge(edge(t3, r, fb)).unwrap();
        let _ = (t2, t3);

        let (pruned, stats) = prune(&g).unwrap();
        assert_eq!(stats.vertices_removed, 2, "T2 dead end + T3 unreachable");
        assert_eq!(pruned.vertex_count(), 3);
        assert!(pruned.vertex_by_name("T1").is_some());
        assert!(pruned.vertex_by_name("T2").is_none());
        assert!(pruned.vertex_by_name("T3").is_none());
        assert_eq!(pruned.edge_count(), 2);
        // Endpoints survive.
        assert!(pruned.sender().is_some());
        assert!(pruned.receiver().is_some());
    }

    /// ServiceId is opaque; tests fabricate distinct ones by registering
    /// placeholder services in a scratch registry.
    fn dummy_service_id(formats: &mut FormatRegistry) -> qosc_services::ServiceId {
        use qosc_profiles::{ConversionSpec, ServiceSpec};
        use qosc_services::{ServiceRegistry, TranscoderDescriptor};
        let f = formats.register_abstract("dummy", MediaKind::Video);
        let _ = f;
        let mut registry = ServiceRegistry::new();
        let spec = ServiceSpec::new(
            "dummy",
            vec![ConversionSpec::new("dummy", "dummy", DomainVector::new())],
        );
        registry.register_static(TranscoderDescriptor::resolve(&spec, formats, host()).unwrap())
    }

    #[test]
    fn prune_keeps_endpoints_even_if_disconnected() {
        let mut formats = FormatRegistry::new();
        let fa = formats.register_abstract("A", MediaKind::Video);
        let fb = formats.register_abstract("B", MediaKind::Video);
        let conv = |i, o| VertexConversion {
            input: i,
            output: o,
            output_domain: DomainVector::new(),
        };
        let mut g = AdaptationGraph::new();
        g.add_vertex(vertex(VertexKind::Sender, "sender", vec![conv(fa, fa)]));
        g.add_vertex(vertex(VertexKind::Receiver, "receiver", vec![conv(fb, fb)]));
        let (pruned, stats) = prune(&g).unwrap();
        assert_eq!(pruned.vertex_count(), 2);
        assert_eq!(stats.vertices_removed, 0);
    }
}
