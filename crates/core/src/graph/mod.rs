//! The directed adaptation graph (Sections 4.2–4.3).

pub mod acyclic;
pub mod build;
pub mod dot;
pub mod model;
pub mod prune;
pub mod store;

pub use build::{build_filtered, BuildInput};
pub use model::{AdaptationGraph, Edge, EdgeId, Vertex, VertexId, VertexKind};
pub use prune::PruneStats;
pub use store::{graphs_equivalent, GraphScope, GraphStore, GraphStoreStats};
