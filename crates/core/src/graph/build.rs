//! Graph construction (Section 4.2).
//!
//! "To construct the adaptation graph, we start with the sender node, and
//! then connect the outgoing edges of the sender with all the input edges
//! of all other vertices that have the same format. The same process is
//! repeated for all vertices."
//!
//! Inputs: the content profile's resolved variants (sender output links),
//! the device profile's resolved decoders (receiver input links), the
//! live services in the registry (intermediate vertices) and the network
//! (edge bandwidth/delay/price annotations, Section 4.3).

use crate::graph::model::{AdaptationGraph, Edge, Vertex, VertexConversion, VertexId, VertexKind};
use crate::{CoreError, Result};
use qosc_media::{ContentVariant, DomainVector, FormatId, FormatRegistry, ParamVector};
use qosc_netsim::{Network, NodeId, PathAnnotation};
use qosc_services::ServiceRegistry;
use std::collections::HashMap;

/// Everything graph construction needs.
pub struct BuildInput<'a> {
    /// The scenario's format registry.
    pub formats: &'a FormatRegistry,
    /// Live trans-coding services (intermediary profiles, resolved).
    pub services: &'a ServiceRegistry,
    /// The network, for edge annotations.
    pub network: &'a Network,
    /// Resolved content variants (sender output links), in listing order.
    pub variants: &'a [ContentVariant],
    /// Node the sender runs on.
    pub sender_host: NodeId,
    /// Node the receiver runs on.
    pub receiver_host: NodeId,
    /// Resolved receiver decoders (receiver input links), listing order.
    pub decoders: &'a [FormatId],
    /// Hardware caps of the receiver device.
    pub receiver_caps: ParamVector,
}

/// Construct the adaptation graph.
///
/// Edge insertion order is deterministic and *is* the listing order the
/// selection algorithm's tie-breaking sees: sources are processed sender
/// first then services in registration order; for each source, output
/// formats in first-appearance order; for each format, accepting services
/// in registration order, then the receiver.
pub fn build(input: &BuildInput<'_>) -> Result<AdaptationGraph> {
    build_filtered(input, None)
}

/// [`build`] restricted to the services whose `scope[id.index()]` flag
/// is set (sender and receiver always included); `None` is exactly
/// [`build`]. Because excluding a service subset preserves the relative
/// order of everything that remains — vertices stay in registration
/// order, edge generation still walks sources in vertex order, formats
/// in first-appearance order, and accepting services in registration
/// order — the restricted graph is bitwise the graph a fresh build
/// would produce had the excluded services never registered. That
/// order-preservation is what lets two-level composition prove its
/// shard-restricted plans identical to flat ones.
pub fn build_filtered(input: &BuildInput<'_>, scope: Option<&[bool]>) -> Result<AdaptationGraph> {
    let in_scope = |id: qosc_services::ServiceId| -> bool {
        scope.is_none_or(|flags| flags.get(id.index()).copied().unwrap_or(false))
    };
    if input.variants.is_empty() {
        return Err(CoreError::DegenerateEndpoints(
            "content profile offers no variants".to_string(),
        ));
    }
    if input.decoders.is_empty() {
        return Err(CoreError::DegenerateEndpoints(
            "device profile lists no decoders".to_string(),
        ));
    }

    let mut graph = AdaptationGraph::new();
    graph.set_receiver_caps(input.receiver_caps);

    // Sender vertex: one pseudo-conversion per variant.
    let sender = graph.add_vertex(Vertex {
        kind: VertexKind::Sender,
        name: "sender".to_string(),
        host: input.sender_host,
        conversions: input
            .variants
            .iter()
            .map(|v| VertexConversion {
                input: v.format,
                output: v.format,
                output_domain: v.offered.clone(),
            })
            .collect(),
        price_per_second: 0.0,
        price_per_mbit: 0.0,
    });

    // Receiver vertex: one identity pseudo-conversion per decoder.
    let receiver = graph.add_vertex(Vertex {
        kind: VertexKind::Receiver,
        name: "receiver".to_string(),
        host: input.receiver_host,
        conversions: input
            .decoders
            .iter()
            .map(|&d| VertexConversion {
                input: d,
                output: d,
                output_domain: DomainVector::new(),
            })
            .collect(),
        price_per_second: 0.0,
        price_per_mbit: 0.0,
    });

    // One vertex per live service, in registration order.
    let mut service_vertices: Vec<(qosc_services::ServiceId, VertexId)> = Vec::new();
    let mut vertex_of: HashMap<qosc_services::ServiceId, VertexId> = HashMap::new();
    for (id, descriptor) in input.services.live_services() {
        if !in_scope(id) {
            continue;
        }
        let vertex = graph.add_vertex(Vertex {
            kind: VertexKind::Transcoder(id),
            name: descriptor.name.clone(),
            host: descriptor.host,
            conversions: descriptor
                .conversions
                .iter()
                .map(|c| VertexConversion {
                    input: c.input,
                    output: c.output,
                    output_domain: c.output_domain.clone(),
                })
                .collect(),
            price_per_second: descriptor.price.per_second,
            price_per_mbit: descriptor.price.per_mbit,
        });
        service_vertices.push((id, vertex));
        vertex_of.insert(id, vertex);
    }

    // Edge annotation: one single-source Dijkstra per distinct source
    // host, yielding the bandwidth/delay/price annotations for every
    // possible target in bulk (the naive per-edge query is a Dijkstra
    // per edge and dominates construction time on dense graphs).
    let mut annotation_tables: HashMap<NodeId, Vec<Option<PathAnnotation>>> = HashMap::new();
    let mut annotate = |from: NodeId, to: NodeId| -> Option<(f64, u64, f64, f64)> {
        let table = annotation_tables.entry(from).or_insert_with(|| {
            input
                .network
                .path_annotations_from(from)
                .unwrap_or_default()
        });
        table
            .get(to.index())
            .copied()
            .flatten()
            .map(|a| (a.available_bps, a.delay_us, a.price_flat, a.price_per_mbit))
    };

    // Connect: sources in vertex order (sender first, then services).
    let mut sources: Vec<VertexId> = Vec::with_capacity(1 + service_vertices.len());
    sources.push(sender);
    sources.extend(service_vertices.iter().map(|&(_, v)| v));

    for &source in &sources {
        let source_vertex = graph.vertex(source)?;
        let from_host = source_vertex.host;
        let outputs = source_vertex.output_formats();
        for format in outputs {
            // Services accepting this format, in registration order
            // (index-backed lookup on the registry; iterator form so the
            // per-(source, format) loop allocates nothing).
            for id in input.services.accepting_iter(format) {
                let Some(&target) = vertex_of.get(&id) else {
                    continue;
                };
                if target == source {
                    continue;
                }
                let to_host = graph.vertex(target)?.host;
                if let Some((available_bps, delay_us, price_flat, price_per_mbit)) =
                    annotate(from_host, to_host)
                {
                    graph.add_edge(Edge {
                        from: source,
                        to: target,
                        format,
                        available_bps,
                        delay_us,
                        price_flat,
                        price_per_mbit,
                    })?;
                }
            }
            // The receiver, if it can decode this format.
            if input.decoders.contains(&format) && source != receiver {
                if let Some((available_bps, delay_us, price_flat, price_per_mbit)) =
                    annotate(from_host, input.receiver_host)
                {
                    graph.add_edge(Edge {
                        from: source,
                        to: receiver,
                        format,
                        available_bps,
                        delay_us,
                        price_flat,
                        price_per_mbit,
                    })?;
                }
            }
        }
    }

    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::{Axis, AxisDomain, MediaKind};
    use qosc_netsim::{Node, Topology};
    use qosc_profiles::{ConversionSpec, ServiceSpec};
    use qosc_services::TranscoderDescriptor;

    /// A linear sender → T → receiver scenario on three nodes.
    fn tiny() -> (
        FormatRegistry,
        ServiceRegistry,
        Network,
        Vec<ContentVariant>,
        NodeId,
        NodeId,
        Vec<FormatId>,
    ) {
        let mut formats = FormatRegistry::new();
        let fa = formats.register_abstract("A", MediaKind::Video);
        let fb = formats.register_abstract("B", MediaKind::Video);

        let mut topo = Topology::new();
        let s = topo.add_node(Node::unconstrained("s"));
        let m = topo.add_node(Node::unconstrained("m"));
        let r = topo.add_node(Node::unconstrained("r"));
        topo.connect_simple(s, m, 1e6).unwrap();
        topo.connect_simple(m, r, 1e6).unwrap();
        let network = Network::new(topo);

        let mut services = ServiceRegistry::new();
        let spec = ServiceSpec::new(
            "T",
            vec![ConversionSpec::new(
                "A",
                "B",
                DomainVector::new().with(
                    Axis::FrameRate,
                    AxisDomain::Continuous {
                        min: 0.0,
                        max: 30.0,
                    },
                ),
            )],
        );
        let descriptor = TranscoderDescriptor::resolve(&spec, &formats, m).unwrap();
        services.register_static(descriptor);

        let variants = vec![ContentVariant::new(
            fa,
            DomainVector::new().with(
                Axis::FrameRate,
                AxisDomain::Continuous {
                    min: 0.0,
                    max: 30.0,
                },
            ),
        )];
        (formats, services, network, variants, s, r, vec![fb])
    }

    #[test]
    fn builds_linear_chain() {
        let (formats, services, network, variants, s, r, decoders) = tiny();
        let graph = build(&BuildInput {
            formats: &formats,
            services: &services,
            network: &network,
            variants: &variants,
            sender_host: s,
            receiver_host: r,
            decoders: &decoders,
            receiver_caps: ParamVector::new(),
        })
        .unwrap();

        assert_eq!(graph.vertex_count(), 3);
        assert_eq!(graph.edge_count(), 2);
        let sender = graph.sender().unwrap();
        let receiver = graph.receiver().unwrap();
        let t = graph.vertex_by_name("T").unwrap();

        let out_s = graph.out_edges(sender);
        assert_eq!(out_s.len(), 1);
        assert_eq!(graph.edge(out_s[0]).unwrap().to, t);
        let out_t = graph.out_edges(t);
        assert_eq!(out_t.len(), 1);
        assert_eq!(graph.edge(out_t[0]).unwrap().to, receiver);
        assert!(
            graph.out_edges(receiver).is_empty(),
            "receiver has only input links"
        );
        assert!(
            graph.in_edges(sender).is_empty(),
            "sender has only output links"
        );
    }

    #[test]
    fn direct_sender_to_receiver_edge_when_decodable() {
        let (formats, services, network, variants, s, r, _) = tiny();
        let fa = formats.lookup("A").unwrap();
        // Receiver can decode the sender's variant directly.
        let graph = build(&BuildInput {
            formats: &formats,
            services: &services,
            network: &network,
            variants: &variants,
            sender_host: s,
            receiver_host: r,
            decoders: &[fa],
            receiver_caps: ParamVector::new(),
        })
        .unwrap();
        let sender = graph.sender().unwrap();
        let receiver = graph.receiver().unwrap();
        assert!(graph
            .out_edges(sender)
            .iter()
            .any(|&e| graph.edge(e).unwrap().to == receiver));
    }

    #[test]
    fn empty_variants_or_decoders_fail() {
        let (formats, services, network, variants, s, r, decoders) = tiny();
        let err = build(&BuildInput {
            formats: &formats,
            services: &services,
            network: &network,
            variants: &[],
            sender_host: s,
            receiver_host: r,
            decoders: &decoders,
            receiver_caps: ParamVector::new(),
        });
        assert!(matches!(err, Err(CoreError::DegenerateEndpoints(_))));
        let err = build(&BuildInput {
            formats: &formats,
            services: &services,
            network: &network,
            variants: &variants,
            sender_host: s,
            receiver_host: r,
            decoders: &[],
            receiver_caps: ParamVector::new(),
        });
        assert!(matches!(err, Err(CoreError::DegenerateEndpoints(_))));
    }

    #[test]
    fn partitioned_host_gets_no_edges() {
        let (formats, services, _, variants, _, _, decoders) = tiny();
        // Rebuild the network with no links at all.
        let mut topo = Topology::new();
        let s = topo.add_node(Node::unconstrained("s"));
        topo.add_node(Node::unconstrained("m"));
        let r = topo.add_node(Node::unconstrained("r"));
        let network = Network::new(topo);
        let graph = build(&BuildInput {
            formats: &formats,
            services: &services,
            network: &network,
            variants: &variants,
            sender_host: s,
            receiver_host: r,
            decoders: &decoders,
            receiver_caps: ParamVector::new(),
        })
        .unwrap();
        assert_eq!(graph.edge_count(), 0, "no route, no edges");
    }

    #[test]
    fn same_host_edges_have_unlimited_bandwidth() {
        let (formats, _, _, variants, _, _, decoders) = tiny();
        // Service co-located with the sender.
        let mut topo = Topology::new();
        let s = topo.add_node(Node::unconstrained("s"));
        let r = topo.add_node(Node::unconstrained("r"));
        topo.connect_simple(s, r, 1e6).unwrap();
        let network = Network::new(topo);
        let mut services = ServiceRegistry::new();
        let spec = ServiceSpec::new(
            "T",
            vec![ConversionSpec::new("A", "B", DomainVector::new())],
        );
        let descriptor = TranscoderDescriptor::resolve(&spec, &formats, s).unwrap();
        services.register_static(descriptor);
        let graph = build(&BuildInput {
            formats: &formats,
            services: &services,
            network: &network,
            variants: &variants,
            sender_host: s,
            receiver_host: r,
            decoders: &decoders,
            receiver_caps: ParamVector::new(),
        })
        .unwrap();
        let sender = graph.sender().unwrap();
        let e = graph.out_edges(sender)[0];
        assert_eq!(graph.edge(e).unwrap().available_bps, f64::INFINITY);
        assert_eq!(graph.edge(e).unwrap().delay_us, 0);
    }
}
