//! Acyclicity and the formats-distinct invariant.
//!
//! "To make sure that the graph is acyclic, the algorithm continuously
//! verifies that all the formats along any path are distinct." —
//! Section 4.2. In our state-based search a vertex is settled at most
//! once per output format, so the *selected* chain is automatically
//! simple; this module provides the checks the paper phrases as graph
//! invariants, for validation and for the exhaustive baseline.

use crate::graph::model::{AdaptationGraph, EdgeId, VertexId};
use crate::Result;
use qosc_media::FormatId;

/// Whether the formats along a chain of edges are pairwise distinct.
pub fn formats_distinct(graph: &AdaptationGraph, edges: &[EdgeId]) -> Result<bool> {
    let mut seen: Vec<FormatId> = Vec::with_capacity(edges.len());
    for &edge_id in edges {
        let format = graph.edge(edge_id)?.format;
        if seen.contains(&format) {
            return Ok(false);
        }
        seen.push(format);
    }
    Ok(true)
}

/// Whether the graph (ignoring formats) contains a directed cycle.
/// The paper's construction aims for a DAG; in-format reducer services
/// (JPEG→JPEG) legitimately create cycles, which the format-distinct
/// rule then excludes from any path.
pub fn has_cycle(graph: &AdaptationGraph) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n = graph.vertex_count();
    let mut marks = vec![Mark::White; n];
    // Iterative DFS with an explicit stack.
    for start in graph.vertex_ids() {
        if marks[start.index()] != Mark::White {
            continue;
        }
        let mut stack: Vec<(VertexId, usize)> = vec![(start, 0)];
        marks[start.index()] = Mark::Grey;
        while let Some(&mut (vertex, ref mut next)) = stack.last_mut() {
            let out = graph.out_edges(vertex);
            if *next < out.len() {
                let edge = out[*next];
                *next += 1;
                let to = graph.edge(edge).expect("edge ids are dense").to;
                match marks[to.index()] {
                    Mark::Grey => return true,
                    Mark::White => {
                        marks[to.index()] = Mark::Grey;
                        stack.push((to, 0));
                    }
                    Mark::Black => {}
                }
            } else {
                marks[vertex.index()] = Mark::Black;
                stack.pop();
            }
        }
    }
    false
}

/// A topological order of the vertices, or `None` if the graph has a
/// cycle. Useful for DAG-only analyses and DOT layout hints.
pub fn topological_order(graph: &AdaptationGraph) -> Option<Vec<VertexId>> {
    let n = graph.vertex_count();
    let mut indegree = vec![0usize; n];
    for edge_id in graph.edge_ids() {
        let edge = graph.edge(edge_id).expect("edge ids are dense");
        indegree[edge.to.index()] += 1;
    }
    let mut queue: std::collections::VecDeque<VertexId> = graph
        .vertex_ids()
        .filter(|v| indegree[v.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(vertex) = queue.pop_front() {
        order.push(vertex);
        for &edge_id in graph.out_edges(vertex) {
            let to = graph.edge(edge_id).expect("edge ids are dense").to;
            indegree[to.index()] -= 1;
            if indegree[to.index()] == 0 {
                queue.push_back(to);
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::model::{Edge, Vertex, VertexKind};
    use qosc_media::{FormatRegistry, MediaKind};
    use qosc_netsim::{Node, Topology};

    fn host() -> qosc_netsim::NodeId {
        let mut t = Topology::new();
        t.add_node(Node::unconstrained("h"))
    }

    fn bare(kind: VertexKind, name: &str) -> Vertex {
        Vertex {
            kind,
            name: name.to_string(),
            host: host(),
            conversions: vec![],
            price_per_second: 0.0,
            price_per_mbit: 0.0,
        }
    }

    fn e(from: VertexId, to: VertexId, format: FormatId) -> Edge {
        Edge {
            from,
            to,
            format,
            available_bps: f64::INFINITY,
            delay_us: 0,
            price_flat: 0.0,
            price_per_mbit: 0.0,
        }
    }

    fn two_formats() -> (FormatId, FormatId) {
        let mut reg = FormatRegistry::new();
        (
            reg.register_abstract("A", MediaKind::Video),
            reg.register_abstract("B", MediaKind::Video),
        )
    }

    #[test]
    fn distinct_formats_detected() {
        let (fa, fb) = two_formats();
        let mut g = AdaptationGraph::new();
        let s = g.add_vertex(bare(VertexKind::Sender, "s"));
        let m = g.add_vertex(bare(VertexKind::Receiver, "m"));
        let r = g.add_vertex(bare(VertexKind::Receiver, "r"));
        let e1 = g.add_edge(e(s, m, fa)).unwrap();
        let e2 = g.add_edge(e(m, r, fb)).unwrap();
        let e3 = g.add_edge(e(m, r, fa)).unwrap();
        assert!(formats_distinct(&g, &[e1, e2]).unwrap());
        assert!(!formats_distinct(&g, &[e1, e3]).unwrap());
        assert!(formats_distinct(&g, &[]).unwrap());
    }

    #[test]
    fn dag_has_no_cycle_and_topo_order() {
        let (fa, fb) = two_formats();
        let mut g = AdaptationGraph::new();
        let s = g.add_vertex(bare(VertexKind::Sender, "s"));
        let m = g.add_vertex(bare(VertexKind::Receiver, "m"));
        let r = g.add_vertex(bare(VertexKind::Receiver, "r"));
        g.add_edge(e(s, m, fa)).unwrap();
        g.add_edge(e(m, r, fb)).unwrap();
        assert!(!has_cycle(&g));
        let order = topological_order(&g).unwrap();
        let pos = |v: VertexId| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(s) < pos(m));
        assert!(pos(m) < pos(r));
    }

    #[test]
    fn cycle_detected() {
        let (fa, fb) = two_formats();
        let mut g = AdaptationGraph::new();
        let a = g.add_vertex(bare(VertexKind::Sender, "a"));
        let b = g.add_vertex(bare(VertexKind::Receiver, "b"));
        g.add_edge(e(a, b, fa)).unwrap();
        g.add_edge(e(b, a, fb)).unwrap();
        assert!(has_cycle(&g));
        assert!(topological_order(&g).is_none());
    }
}
