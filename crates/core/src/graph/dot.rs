//! Graphviz export.
//!
//! Regenerates the paper's graph figures (Figures 2, 3 and 6) as DOT
//! artifacts: vertices labelled with service names, edges labelled with
//! the format they carry — exactly the visual language of the paper.

use crate::graph::model::{AdaptationGraph, VertexKind};
use crate::Result;
use qosc_media::FormatRegistry;

/// Render the graph as a Graphviz `digraph`, optionally highlighting a
/// chain of vertex names (the selected path is drawn bold).
pub fn to_dot(
    graph: &AdaptationGraph,
    formats: &FormatRegistry,
    highlight: &[String],
) -> Result<String> {
    let mut out = String::from("digraph adaptation {\n  rankdir=LR;\n  node [shape=circle];\n");
    for id in graph.vertex_ids() {
        let vertex = graph.vertex(id)?;
        let (shape, style) = match vertex.kind {
            VertexKind::Sender => ("doublecircle", ", style=filled, fillcolor=lightblue"),
            VertexKind::Receiver => ("doublecircle", ", style=filled, fillcolor=lightgreen"),
            VertexKind::Transcoder(_) => ("circle", ""),
        };
        let emphasis = if highlight.contains(&vertex.name) {
            ", penwidth=2.5"
        } else {
            ""
        };
        out.push_str(&format!(
            "  v{} [label=\"{}\", shape={shape}{style}{emphasis}];\n",
            id.index(),
            vertex.name
        ));
    }
    for edge_id in graph.edge_ids() {
        let edge = graph.edge(edge_id)?;
        let from_name = &graph.vertex(edge.from)?.name;
        let to_name = &graph.vertex(edge.to)?.name;
        let on_path = highlight
            .windows(2)
            .any(|w| &w[0] == from_name && &w[1] == to_name);
        let emphasis = if on_path {
            ", penwidth=2.5, color=red"
        } else {
            ""
        };
        out.push_str(&format!(
            "  v{} -> v{} [label=\"{}\"{emphasis}];\n",
            edge.from.index(),
            edge.to.index(),
            formats.name(edge.format)
        ));
    }
    out.push_str("}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::model::{Edge, Vertex, VertexId};
    use qosc_media::MediaKind;
    use qosc_netsim::{Node, Topology};

    #[test]
    fn dot_contains_vertices_edges_and_highlight() {
        let mut formats = FormatRegistry::new();
        let f5 = formats.register_abstract("F5", MediaKind::Video);
        let mut g = AdaptationGraph::new();
        let host = {
            let mut t = Topology::new();
            t.add_node(Node::unconstrained("h"))
        };
        let s = g.add_vertex(Vertex {
            kind: VertexKind::Sender,
            name: "sender".to_string(),
            host,
            conversions: vec![],
            price_per_second: 0.0,
            price_per_mbit: 0.0,
        });
        let r = g.add_vertex(Vertex {
            kind: VertexKind::Receiver,
            name: "receiver".to_string(),
            host,
            conversions: vec![],
            price_per_second: 0.0,
            price_per_mbit: 0.0,
        });
        let _ = g
            .add_edge(Edge {
                from: s,
                to: r,
                format: f5,
                available_bps: 1.0,
                delay_us: 0,
                price_flat: 0.0,
                price_per_mbit: 0.0,
            })
            .unwrap();
        let _ = VertexId(0);
        let dot = to_dot(
            &g,
            &formats,
            &["sender".to_string(), "receiver".to_string()],
        )
        .unwrap();
        assert!(dot.contains("digraph adaptation"));
        assert!(dot.contains("label=\"sender\""));
        assert!(dot.contains("label=\"F5\""));
        assert!(dot.contains("penwidth=2.5, color=red"), "highlighted edge");
    }
}
