//! Graph data model.
//!
//! "Vertices in the graph represent trans-coding services. … The sender
//! node is a special case vertex, with only output links, while the
//! receiver node is another special vertex with only input links. …
//! Edges in the graph represent the network connecting two vertices,
//! where the input link of one vertex matches the output link of another
//! vertex." — Section 4.2.

use crate::{CoreError, Result};
use qosc_media::{DomainVector, FormatId, ParamVector};
use qosc_netsim::NodeId;
use qosc_services::ServiceId;

/// Dense identifier of a vertex within one [`AdaptationGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub(crate) u32);

impl VertexId {
    /// Construct from a dense vertex index (crate-internal: the graph
    /// store computes canonical vertex positions).
    pub(crate) fn from_index(index: usize) -> VertexId {
        VertexId(u32::try_from(index).expect("fewer than 2^32 vertices"))
    }

    /// Raw index (valid only for the graph that produced it).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense identifier of an edge within one [`AdaptationGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Raw index (valid only for the graph that produced it).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a vertex stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VertexKind {
    /// The content source ("a special case vertex, with only output
    /// links").
    Sender,
    /// A trans-coding service, backed by a registry entry.
    Transcoder(ServiceId),
    /// The content sink ("another special vertex with only input links").
    Receiver,
}

/// One conversion capability attached to a vertex: accepting `input`,
/// producing `output` over `output_domain`.
///
/// * Sender: one pseudo-conversion per content variant (`input` equals
///   `output`; the domain is what the sender offers).
/// * Transcoder: the resolved service conversions.
/// * Receiver: one identity pseudo-conversion per decoder (empty domain —
///   the receiver renders what arrives, capped by its hardware).
#[derive(Debug, Clone, PartialEq)]
pub struct VertexConversion {
    /// Accepted input format.
    pub input: FormatId,
    /// Produced output format.
    pub output: FormatId,
    /// Producible output configurations (before upstream capping).
    pub output_domain: DomainVector,
}

/// A graph vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct Vertex {
    /// What the vertex stands for.
    pub kind: VertexKind,
    /// Display name (`"sender"`, `"T7"`, `"receiver"`).
    pub name: String,
    /// The network node the vertex runs on.
    pub host: NodeId,
    /// Conversion capabilities, in advertised listing order.
    pub conversions: Vec<VertexConversion>,
    /// Flat price per second of using this vertex's service.
    pub price_per_second: f64,
    /// Price per megabit of output produced by this vertex's service.
    pub price_per_mbit: f64,
}

impl Vertex {
    /// Conversions accepting `input`, in listing order.
    pub fn conversions_from(&self, input: FormatId) -> impl Iterator<Item = &VertexConversion> {
        self.conversions.iter().filter(move |c| c.input == input)
    }

    /// Whether the vertex accepts `format` on some conversion.
    pub fn accepts(&self, format: FormatId) -> bool {
        self.conversions.iter().any(|c| c.input == format)
    }

    /// Distinct output formats, in first-appearance order.
    pub fn output_formats(&self) -> Vec<FormatId> {
        let mut seen = Vec::new();
        for c in &self.conversions {
            if !seen.contains(&c.output) {
                seen.push(c.output);
            }
        }
        seen
    }
}

/// A graph edge: the network path carrying content in `format` from the
/// output of `from` to the input of `to`, annotated with the constraint
/// data of Section 4.3 (a snapshot taken at build time).
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Producing vertex.
    pub from: VertexId,
    /// Consuming vertex.
    pub to: VertexId,
    /// The format carried.
    pub format: FormatId,
    /// `Bandwidth_AvailableBetween(from, to)` at build time; `+∞` when
    /// the two vertices share a host (Section 4.3).
    pub available_bps: f64,
    /// One-way network delay, microseconds.
    pub delay_us: u64,
    /// Flat transmission price of a session crossing this edge.
    pub price_flat: f64,
    /// Transmission price per megabit carried.
    pub price_per_mbit: f64,
}

/// The directed adaptation graph.
#[derive(Debug, Clone, Default)]
pub struct AdaptationGraph {
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
    /// out[vertex] = outgoing edge ids in insertion (listing) order.
    out: Vec<Vec<EdgeId>>,
    /// in_[vertex] = incoming edge ids in insertion order.
    in_: Vec<Vec<EdgeId>>,
    sender: Option<VertexId>,
    receiver: Option<VertexId>,
    /// Parameter caps the receiver's hardware imposes (device profile).
    receiver_caps: ParamVector,
}

impl AdaptationGraph {
    /// An empty graph.
    pub fn new() -> AdaptationGraph {
        AdaptationGraph::default()
    }

    /// Add a vertex. The first `Sender`/`Receiver` added become *the*
    /// sender/receiver of the graph.
    pub fn add_vertex(&mut self, vertex: Vertex) -> VertexId {
        let id = VertexId(u32::try_from(self.vertices.len()).expect("fewer than 2^32 vertices"));
        match vertex.kind {
            VertexKind::Sender if self.sender.is_none() => self.sender = Some(id),
            VertexKind::Receiver if self.receiver.is_none() => self.receiver = Some(id),
            _ => {}
        }
        self.vertices.push(vertex);
        self.out.push(Vec::new());
        self.in_.push(Vec::new());
        id
    }

    /// Add an edge. Endpoints must exist; duplicate `(from, to, format)`
    /// edges are coalesced (first wins).
    pub fn add_edge(&mut self, edge: Edge) -> Result<EdgeId> {
        self.vertex(edge.from)?;
        self.vertex(edge.to)?;
        if let Some(&existing) = self.out[edge.from.index()].iter().find(|&&e| {
            let known = &self.edges[e.index()];
            known.to == edge.to && known.format == edge.format
        }) {
            return Ok(existing);
        }
        let id = EdgeId(u32::try_from(self.edges.len()).expect("fewer than 2^32 edges"));
        self.out[edge.from.index()].push(id);
        self.in_[edge.to.index()].push(id);
        self.edges.push(edge);
        Ok(id)
    }

    /// The vertex for `id`.
    pub fn vertex(&self, id: VertexId) -> Result<&Vertex> {
        self.vertices
            .get(id.index())
            .ok_or_else(|| CoreError::StaleId(format!("vertex {id:?}")))
    }

    /// The edge for `id`.
    pub fn edge(&self, id: EdgeId) -> Result<&Edge> {
        self.edges
            .get(id.index())
            .ok_or_else(|| CoreError::StaleId(format!("edge {id:?}")))
    }

    /// Outgoing edges of `vertex`, in listing order.
    pub fn out_edges(&self, vertex: VertexId) -> &[EdgeId] {
        self.out
            .get(vertex.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Incoming edges of `vertex`, in listing order.
    pub fn in_edges(&self, vertex: VertexId) -> &[EdgeId] {
        self.in_
            .get(vertex.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The sender vertex.
    pub fn sender(&self) -> Option<VertexId> {
        self.sender
    }

    /// The receiver vertex.
    pub fn receiver(&self) -> Option<VertexId> {
        self.receiver
    }

    /// Hardware caps of the receiver's device.
    pub fn receiver_caps(&self) -> &ParamVector {
        &self.receiver_caps
    }

    /// Set the receiver's hardware caps (done by the builder).
    pub fn set_receiver_caps(&mut self, caps: ParamVector) {
        self.receiver_caps = caps;
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All vertex ids in index order.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// All edge ids in index order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Find a vertex by display name (linear scan).
    pub fn vertex_by_name(&self, name: &str) -> Option<VertexId> {
        self.vertices
            .iter()
            .position(|v| v.name == name)
            .map(|i| VertexId(i as u32))
    }

    // -----------------------------------------------------------------
    // Canonical in-place mutation, used by the incremental graph store
    // (`graph::store`). These operations preserve the structural
    // invariants a fresh `build()` establishes: vertex indices are
    // sender, receiver, then live services in registration order, and
    // every per-vertex adjacency list keeps the builder's listing
    // order. Edge *ids* are renumbered freely — nothing outside the
    // graph stores an `EdgeId`, and selection only ever walks the
    // adjacency lists.
    // -----------------------------------------------------------------

    /// Insert `edge` at position `out_pos` of `from`'s out-list and
    /// `in_pos` of `to`'s in-list (panics if either position is out of
    /// bounds — the store computes both canonically).
    pub(crate) fn insert_edge_at(&mut self, edge: Edge, out_pos: usize, in_pos: usize) -> EdgeId {
        let id = EdgeId(u32::try_from(self.edges.len()).expect("fewer than 2^32 edges"));
        self.out[edge.from.index()].insert(out_pos, id);
        self.in_[edge.to.index()].insert(in_pos, id);
        self.edges.push(edge);
        id
    }

    /// Compact away every vertex failing `keep_vertex` and every edge
    /// failing `keep_edge` (edges incident to a dropped vertex go with
    /// it). Surviving vertices and edges keep their relative order and
    /// are renumbered densely; adjacency lists keep their relative
    /// per-vertex order. Matches what a fresh build over the reduced
    /// input would produce, modulo global edge numbering.
    pub(crate) fn retain_canonical(
        &mut self,
        keep_vertex: impl Fn(VertexId) -> bool,
        keep_edge: impl Fn(&Edge) -> bool,
    ) {
        let mut vertex_map: Vec<Option<u32>> = Vec::with_capacity(self.vertices.len());
        let mut next_vertex = 0u32;
        for index in 0..self.vertices.len() {
            if keep_vertex(VertexId(index as u32)) {
                vertex_map.push(Some(next_vertex));
                next_vertex += 1;
            } else {
                vertex_map.push(None);
            }
        }

        let mut edge_map: Vec<Option<u32>> = Vec::with_capacity(self.edges.len());
        let mut next_edge = 0u32;
        for edge in &self.edges {
            let kept = vertex_map[edge.from.index()].is_some()
                && vertex_map[edge.to.index()].is_some()
                && keep_edge(edge);
            if kept {
                edge_map.push(Some(next_edge));
                next_edge += 1;
            } else {
                edge_map.push(None);
            }
        }

        let old_edges = std::mem::take(&mut self.edges);
        self.edges = old_edges
            .into_iter()
            .enumerate()
            .filter_map(|(index, mut edge)| {
                edge_map[index].map(|_| {
                    edge.from = VertexId(vertex_map[edge.from.index()].expect("endpoint kept"));
                    edge.to = VertexId(vertex_map[edge.to.index()].expect("endpoint kept"));
                    edge
                })
            })
            .collect();

        let remap_list = |list: &Vec<EdgeId>| -> Vec<EdgeId> {
            list.iter()
                .filter_map(|e| edge_map[e.index()].map(EdgeId))
                .collect()
        };
        let old_out = std::mem::take(&mut self.out);
        let old_in = std::mem::take(&mut self.in_);
        let old_vertices = std::mem::take(&mut self.vertices);
        for (index, vertex) in old_vertices.into_iter().enumerate() {
            if vertex_map[index].is_some() {
                self.vertices.push(vertex);
                self.out.push(remap_list(&old_out[index]));
                self.in_.push(remap_list(&old_in[index]));
            }
        }

        self.sender = self
            .sender
            .and_then(|v| vertex_map[v.index()].map(VertexId));
        self.receiver = self
            .receiver
            .and_then(|v| vertex_map[v.index()].map(VertexId));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_netsim::{Node, Topology};

    fn node() -> NodeId {
        let mut t = Topology::new();
        t.add_node(Node::unconstrained("n"))
    }

    fn plain_vertex(kind: VertexKind, name: &str) -> Vertex {
        Vertex {
            kind,
            name: name.to_string(),
            host: node(),
            conversions: Vec::new(),
            price_per_second: 0.0,
            price_per_mbit: 0.0,
        }
    }

    fn plain_edge(from: VertexId, to: VertexId, format: FormatId) -> Edge {
        Edge {
            from,
            to,
            format,
            available_bps: f64::INFINITY,
            delay_us: 0,
            price_flat: 0.0,
            price_per_mbit: 0.0,
        }
    }

    fn format(n: u32) -> FormatId {
        // FormatId construction is private; intern through a registry.
        let mut reg = qosc_media::FormatRegistry::new();
        let mut id = None;
        for i in 0..=n {
            id = Some(reg.register_abstract(format!("F{i}"), qosc_media::MediaKind::Video));
        }
        id.unwrap()
    }

    #[test]
    fn sender_and_receiver_are_first_of_kind() {
        let mut g = AdaptationGraph::new();
        let s = g.add_vertex(plain_vertex(VertexKind::Sender, "sender"));
        let r = g.add_vertex(plain_vertex(VertexKind::Receiver, "receiver"));
        let s2 = g.add_vertex(plain_vertex(VertexKind::Sender, "impostor"));
        assert_eq!(g.sender(), Some(s));
        assert_eq!(g.receiver(), Some(r));
        assert_ne!(g.sender(), Some(s2));
    }

    #[test]
    fn edges_index_both_directions() {
        let mut g = AdaptationGraph::new();
        let a = g.add_vertex(plain_vertex(VertexKind::Sender, "a"));
        let b = g.add_vertex(plain_vertex(VertexKind::Receiver, "b"));
        let f = format(0);
        let e = g.add_edge(plain_edge(a, b, f)).unwrap();
        assert_eq!(g.out_edges(a), &[e]);
        assert_eq!(g.in_edges(b), &[e]);
        assert!(g.out_edges(b).is_empty());
        assert_eq!(g.edge(e).unwrap().format, f);
    }

    #[test]
    fn duplicate_edges_coalesce() {
        let mut g = AdaptationGraph::new();
        let a = g.add_vertex(plain_vertex(VertexKind::Sender, "a"));
        let b = g.add_vertex(plain_vertex(VertexKind::Receiver, "b"));
        let f = format(0);
        let e1 = g.add_edge(plain_edge(a, b, f)).unwrap();
        let e2 = g.add_edge(plain_edge(a, b, f)).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        // Different format → distinct edge.
        let f2 = format(1);
        let e3 = g.add_edge(plain_edge(a, b, f2)).unwrap();
        assert_ne!(e1, e3);
    }

    #[test]
    fn stale_ids_error() {
        let g = AdaptationGraph::new();
        assert!(g.vertex(VertexId(0)).is_err());
        assert!(g.edge(EdgeId(0)).is_err());
    }

    #[test]
    fn vertex_by_name() {
        let mut g = AdaptationGraph::new();
        let a = g.add_vertex(plain_vertex(VertexKind::Sender, "sender"));
        assert_eq!(g.vertex_by_name("sender"), Some(a));
        assert_eq!(g.vertex_by_name("T99"), None);
    }
}
